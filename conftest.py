"""Ensure the in-repo sources are importable even without installation.

Also lets CI (and developers) force a multiprocessing start method for the
whole test session: setting ``MULTIPROCESSING_START_METHOD=spawn`` makes
every ``multiprocessing.Pool`` the portfolio creates use spawn-started
workers, which is how the suite reproduces the macOS/Windows default on
Linux runners (fresh interpreters that must re-import user scenarios).
"""

import multiprocessing
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "src"))

_START_METHOD = os.environ.get("MULTIPROCESSING_START_METHOD")
if _START_METHOD:
    multiprocessing.set_start_method(_START_METHOD, force=True)
