"""Tests for the Service Fabric model case study."""

from repro.core import TestingConfig, run_test
from repro.fabric import CounterService, StreamStageService, build_cscale_test, build_failover_test


def test_counter_service_state_copy():
    service = CounterService()
    service.initialize()
    service.apply(3)
    service.apply(4)
    clone = CounterService()
    clone.set_state(service.get_state())
    assert clone.value == 7 and clone.initialized


def test_stream_stage_transforms_events():
    stage = StreamStageService(multiplier=3)
    stage.initialize()
    assert stage.apply(2) == 6
    assert stage.processed == [6]


def test_uninitialized_service_raises():
    service = CounterService()
    try:
        service.apply(1)
    except AttributeError:
        pass
    else:  # pragma: no cover
        raise AssertionError("expected AttributeError")


def test_promotion_bug_found_by_systematic_testing():
    report = run_test(build_failover_test(True), TestingConfig(iterations=100, max_steps=500, seed=3))
    assert report.bug_found
    assert report.first_bug.kind == "safety"
    assert "promoted to active secondary" in report.first_bug.message


def test_fixed_fabric_model_is_clean():
    for strategy in ("random", "pct"):
        report = run_test(
            build_failover_test(False),
            TestingConfig(iterations=100, max_steps=500, seed=3, strategy=strategy),
        )
        assert not report.bug_found


def test_cscale_initialization_bug_found():
    report = run_test(build_cscale_test(True), TestingConfig(iterations=100, max_steps=500, seed=3))
    assert report.bug_found
    assert report.first_bug.kind == "exception"


def test_cscale_fixed_is_clean():
    report = run_test(build_cscale_test(False), TestingConfig(iterations=100, max_steps=500, seed=3))
    assert not report.bug_found
