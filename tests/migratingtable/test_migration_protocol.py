"""Synchronous tests of the MigratingTable protocol and the migrator."""


from repro.migratingtable import (
    InMemoryChainTable,
    MigratingTable,
    MigratingTableConfig,
    MigratingTableBug,
    Migrator,
    MigratorConfig,
    OpKind,
    PartitionState,
    RowFilter,
    TableOperation,
    VERSION_PROPERTY,
    read_partition_meta,
    write_partition_meta,
)

PK = "P0"


def run(generator):
    return MigratingTable.run_to_completion(generator)


def make_tables(rows=3):
    old, new = InMemoryChainTable("old"), InMemoryChainTable("new")
    for index in range(rows):
        old.seed(PK, f"r{index}", {"value": index, VERSION_PROPERTY: 1}, version=1)
    return old, new


def test_partition_meta_roundtrip():
    _old, new = make_tables()
    assert read_partition_meta(new, PK).state is PartitionState.USE_OLD
    write_partition_meta(new, PK, state=PartitionState.PREFER_NEW, copy_cursor="r1")
    meta = read_partition_meta(new, PK)
    assert meta.state is PartitionState.PREFER_NEW
    assert meta.copy_cursor == "r1"


def test_reads_and_writes_in_use_old_state():
    old, new = make_tables()
    table = MigratingTable(old, new)
    assert run(table.read_row(PK, "r0")).properties == {"value": 0}
    result = run(table.execute(TableOperation(OpKind.REPLACE, PK, "r0", {"value": 9})))
    assert result.ok and result.version == 2
    assert old.get(PK, "r0").properties["value"] == 9
    assert new.get(PK, "r0") is None


def test_full_migration_preserves_content():
    old, new = make_tables()
    table = MigratingTable(old, new)
    migrator = Migrator(old, new, [PK])
    run(migrator.run())
    assert migrator.partition_state(PK) is PartitionState.USE_NEW
    rows = run(table.query_atomic(PK))
    assert [(r.row_key, r.properties["value"], r.version) for r in rows] == [
        ("r0", 0, 1), ("r1", 1, 1), ("r2", 2, 1)
    ]
    assert len(old.query_atomic(PK)) == 0


def test_writes_after_migration_go_to_new_table():
    old, new = make_tables()
    run(Migrator(old, new, [PK]).run())
    table = MigratingTable(old, new)
    result = run(table.execute(TableOperation(OpKind.REPLACE, PK, "r1", {"value": 7})))
    assert result.ok and result.version == 2
    assert new.get(PK, "r1").properties["value"] == 7


def test_delete_in_prefer_new_leaves_tombstone_and_hides_row():
    old, new = make_tables()
    write_partition_meta(new, PK, state=PartitionState.PREFER_NEW)
    table = MigratingTable(old, new)
    assert run(table.execute(TableOperation(OpKind.DELETE, PK, "r0"))).ok
    assert new.get(PK, "r0").is_tombstone()
    assert run(table.read_row(PK, "r0")) is None
    rows = run(table.query_atomic(PK))
    assert "r0" not in [r.row_key for r in rows]


def test_insert_over_tombstone_restores_row():
    old, new = make_tables()
    write_partition_meta(new, PK, state=PartitionState.PREFER_NEW)
    table = MigratingTable(old, new)
    run(table.execute(TableOperation(OpKind.DELETE, PK, "r0")))
    result = run(table.execute(TableOperation(OpKind.INSERT, PK, "r0", {"value": 4})))
    assert result.ok and result.version == 1
    assert run(table.read_row(PK, "r0")).properties == {"value": 4}


def test_etag_conditional_ops_survive_migration():
    old, new = make_tables()
    table = MigratingTable(old, new)
    run(Migrator(old, new, [PK]).run())
    bad = run(table.execute(TableOperation(OpKind.REPLACE, PK, "r0", {"value": 5}, if_match=9)))
    assert not bad.ok
    good = run(table.execute(TableOperation(OpKind.REPLACE, PK, "r0", {"value": 5}, if_match=1)))
    assert good.ok and good.version == 2


def test_query_filter_applied_after_merge():
    old, new = make_tables()
    write_partition_meta(new, PK, state=PartitionState.PREFER_NEW)
    table = MigratingTable(old, new)
    run(table.execute(TableOperation(OpKind.REPLACE, PK, "r0", {"value": 9})))
    rows = run(table.query_atomic(PK, RowFilter("value", "<=", 4)))
    assert [r.row_key for r in rows] == ["r1", "r2"]


def test_streamed_query_equals_atomic_query_without_concurrency():
    old, new = make_tables()
    table = MigratingTable(old, new)
    run(Migrator(old, new, [PK]).run())
    atomic = run(table.query_atomic(PK))
    streamed = run(table.query_streamed(PK))
    assert [(r.row_key, r.version) for r in atomic] == [(r.row_key, r.version) for r in streamed]


def test_migrate_skip_tombstone_state_leaves_phantom_rows():
    old, new = make_tables()
    write_partition_meta(new, PK, state=PartitionState.PREFER_NEW)
    table = MigratingTable(old, new)
    run(table.execute(TableOperation(OpKind.DELETE, PK, "r0")))
    migrator = Migrator(
        old, new, [PK], MigratorConfig(bugs=frozenset({MigratingTableBug.MIGRATE_SKIP_USE_NEW_WITH_TOMBSTONES}))
    )
    run(migrator.run())
    rows = run(table.query_atomic(PK))
    assert "r0" in [r.row_key for r in rows]  # the phantom tombstone row


def test_correct_migrator_cleans_tombstones():
    old, new = make_tables()
    write_partition_meta(new, PK, state=PartitionState.PREFER_NEW)
    table = MigratingTable(old, new)
    run(table.execute(TableOperation(OpKind.DELETE, PK, "r0")))
    run(Migrator(old, new, [PK]).run())
    rows = run(table.query_atomic(PK))
    assert "r0" not in [r.row_key for r in rows]


def test_delete_primary_key_bug_resurrects_row():
    old, new = make_tables()
    buggy = MigratingTable(old, new, MigratingTableConfig(bugs=frozenset({MigratingTableBug.DELETE_PRIMARY_KEY})))
    write_partition_meta(new, PK, state=PartitionState.PREFER_OLD)
    # Copy r0 into the new table first (as the migrator would).
    new.execute(TableOperation(OpKind.UPSERT, PK, "r0", dict(old.get(PK, "r0").properties)))
    assert run(buggy.execute(TableOperation(OpKind.DELETE, PK, "r0"))).ok
    write_partition_meta(new, PK, state=PartitionState.PREFER_NEW)
    assert run(buggy.read_row(PK, "r0")) is not None  # resurrected


def test_correct_delete_in_prefer_old_is_permanent():
    old, new = make_tables()
    table = MigratingTable(old, new)
    write_partition_meta(new, PK, state=PartitionState.PREFER_OLD)
    new.execute(TableOperation(OpKind.UPSERT, PK, "r0", dict(old.get(PK, "r0").properties)))
    run(table.execute(TableOperation(OpKind.DELETE, PK, "r0")))
    write_partition_meta(new, PK, state=PartitionState.PREFER_NEW)
    assert run(table.read_row(PK, "r0")) is None
