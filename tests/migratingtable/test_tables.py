"""Unit tests for the IChainTable data model and reference implementation."""

import pytest

from repro.migratingtable import (
    ErrorCode,
    InMemoryChainTable,
    OpKind,
    RowFilter,
    TableEntity,
    TableOperation,
)


def op(kind, rk="r0", props=None, if_match=None, pk="P"):
    return TableOperation(kind, pk, rk, props or {"value": 1}, if_match)


@pytest.fixture
def table():
    return InMemoryChainTable()


def test_insert_and_get(table):
    result = table.execute(op(OpKind.INSERT))
    assert result.ok and result.version == 1
    assert table.get("P", "r0").properties == {"value": 1}


def test_insert_conflict(table):
    table.execute(op(OpKind.INSERT))
    assert table.execute(op(OpKind.INSERT)).error is ErrorCode.CONFLICT


def test_replace_requires_existing_row(table):
    assert table.execute(op(OpKind.REPLACE)).error is ErrorCode.NOT_FOUND


def test_replace_etag_check(table):
    table.execute(op(OpKind.INSERT))
    assert table.execute(op(OpKind.REPLACE, props={"value": 2}, if_match=5)).error is ErrorCode.ETAG_MISMATCH
    result = table.execute(op(OpKind.REPLACE, props={"value": 2}, if_match=1))
    assert result.ok and result.version == 2


def test_merge_combines_properties(table):
    table.execute(op(OpKind.INSERT, props={"a": 1}))
    table.execute(op(OpKind.MERGE, props={"b": 2}))
    assert table.get("P", "r0").properties == {"a": 1, "b": 2}


def test_upsert_inserts_or_replaces(table):
    assert table.execute(op(OpKind.UPSERT)).version == 1
    assert table.execute(op(OpKind.UPSERT, props={"value": 9})).version == 2


def test_delete_with_and_without_etag(table):
    table.execute(op(OpKind.INSERT))
    assert table.execute(op(OpKind.DELETE, if_match=9)).error is ErrorCode.ETAG_MISMATCH
    assert table.execute(op(OpKind.DELETE, if_match=1)).ok
    assert table.get("P", "r0") is None


def test_query_atomic_sorted_and_filtered(table):
    for index, rk in enumerate(["r2", "r0", "r1"]):
        table.execute(op(OpKind.INSERT, rk=rk, props={"value": index}))
    rows = table.query_atomic("P")
    assert [r.row_key for r in rows] == ["r0", "r1", "r2"]
    filtered = table.query_atomic("P", RowFilter("value", "<=", 1))
    assert [r.row_key for r in filtered] == ["r0", "r2"]


def test_query_only_returns_requested_partition(table):
    table.execute(op(OpKind.INSERT, pk="A"))
    table.execute(op(OpKind.INSERT, pk="B"))
    assert len(table.query_atomic("A")) == 1


def test_execute_batch_atomicity(table):
    table.execute(op(OpKind.INSERT, rk="r0"))
    results = table.execute_batch([
        op(OpKind.INSERT, rk="r1"),
        op(OpKind.INSERT, rk="r0"),  # conflict -> whole batch rolls back
    ])
    assert not all(r.ok for r in results)
    assert table.get("P", "r1") is None


def test_batch_rejects_multiple_partitions(table):
    with pytest.raises(ValueError):
        table.execute_batch([op(OpKind.INSERT, pk="A"), op(OpKind.INSERT, pk="B")])


def test_row_filter_comparisons():
    entity = TableEntity("P", "r", {"value": 5})
    assert RowFilter("value", ">=", 5).matches(entity)
    assert not RowFilter("value", "<", 5).matches(entity)
    assert not RowFilter("missing", "==", 5).matches(entity)


def test_entity_visible_properties_strip_internal_fields():
    entity = TableEntity("P", "r", {"value": 5, "_mt_version": 3, "_tombstone": True})
    assert entity.visible_properties() == {"value": 5}
    assert entity.is_tombstone()
