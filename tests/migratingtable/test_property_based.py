"""Property-based tests: the MigratingTable always agrees with the reference
implementation when operations and migration steps are interleaved arbitrarily
(but deterministically, driven by hypothesis-generated schedules)."""

from hypothesis import given, settings, strategies as st

from repro.migratingtable import (
    InMemoryChainTable,
    MigratingTable,
    Migrator,
    OpKind,
    TableOperation,
    VERSION_PROPERTY,
)

PK = "P"
ROW_KEYS = ["a", "b", "c"]

write_ops = st.tuples(
    st.sampled_from([OpKind.INSERT, OpKind.REPLACE, OpKind.MERGE, OpKind.UPSERT, OpKind.DELETE]),
    st.sampled_from(ROW_KEYS),
    st.integers(min_value=0, max_value=9),
)


@settings(max_examples=60, deadline=None)
@given(
    ops=st.lists(write_ops, min_size=1, max_size=8),
    schedule=st.lists(st.booleans(), min_size=0, max_size=200),
)
def test_migrating_table_matches_reference_under_interleaving(ops, schedule):
    old, new = InMemoryChainTable("old"), InMemoryChainTable("new")
    reference = InMemoryChainTable("reference")
    for index, row_key in enumerate(ROW_KEYS[:2]):
        old.seed(PK, row_key, {"value": index, VERSION_PROPERTY: 1}, version=1)
        reference.seed(PK, row_key, {"value": index}, version=1)

    table = MigratingTable(old, new)
    migrator_gen = Migrator(old, new, [PK]).run()
    migrator_alive = True

    def advance_migrator():
        nonlocal migrator_alive
        if migrator_alive:
            try:
                next(migrator_gen)
            except StopIteration:
                migrator_alive = False

    schedule_iter = iter(schedule)

    def run_interleaved(generator):
        """Drive a MigratingTable generator, interleaving migrator steps."""
        while True:
            try:
                next(generator)
            except StopIteration as stop:
                return stop.value
            if next(schedule_iter, False):
                advance_migrator()

    for kind, row_key, value in ops:
        operation = TableOperation(kind, PK, row_key, {"value": value})
        expected = reference.execute(operation)
        actual = run_interleaved(table.execute(operation))
        assert (expected.ok, expected.error, expected.version) == (
            actual.ok,
            actual.error,
            actual.version,
        )

    # Drain the migrator and compare the final virtual table with the reference.
    while migrator_alive:
        advance_migrator()
    final = MigratingTable.run_to_completion(table.query_atomic(PK))
    expected_rows = reference.query_atomic(PK)
    assert [(r.row_key, r.visible_properties(), r.version) for r in final] == [
        (r.row_key, r.visible_properties(), r.version) for r in expected_rows
    ]
