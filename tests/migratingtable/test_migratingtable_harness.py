"""Systematic-testing integration tests for the MigratingTable harness."""

import pytest

from repro.core import TestingConfig, run_test
from repro.migratingtable import MigratingTableBug
from repro.migratingtable.harness import build_directed_test, build_migration_test


def config(strategy="random", iterations=120, seed=5):
    return TestingConfig(iterations=iterations, max_steps=4000, seed=seed, strategy=strategy)


def test_correct_protocol_passes_specification_check_random():
    assert not run_test(build_migration_test(), config()).bug_found


def test_correct_protocol_passes_specification_check_pct():
    assert not run_test(build_migration_test(), config("pct")).bug_found


def test_correct_protocol_with_two_services_is_clean():
    report = run_test(build_migration_test(num_services=2, operations_per_service=5), config(iterations=40))
    assert not report.bug_found


@pytest.mark.parametrize(
    "bug",
    [
        MigratingTableBug.DELETE_PRIMARY_KEY,
        MigratingTableBug.MIGRATE_SKIP_PREFER_OLD,
        MigratingTableBug.MIGRATE_SKIP_USE_NEW_WITH_TOMBSTONES,
        MigratingTableBug.QUERY_STREAMED_BACK_UP_NEW_STREAM,
    ],
)
def test_default_harness_finds_bug(bug):
    found = False
    for strategy in ("random", "pct"):
        if run_test(build_migration_test([bug]), config(strategy)).bug_found:
            found = True
            break
    assert found, f"{bug.value} not found by the default harness"


@pytest.mark.parametrize(
    "bug",
    [
        MigratingTableBug.QUERY_ATOMIC_FILTER_SHADOWING,
        MigratingTableBug.QUERY_STREAMED_LOCK,
        MigratingTableBug.ENSURE_PARTITION_SWITCHED_FROM_POPULATED,
        MigratingTableBug.INSERT_BEHIND_MIGRATOR,
        MigratingTableBug.DELETE_NO_LEAVE_TOMBSTONES_ETAG,
        MigratingTableBug.TOMBSTONE_OUTPUT_ETAG,
    ],
)
def test_directed_harness_finds_bug(bug):
    found = False
    for strategy in ("random", "pct"):
        if run_test(build_directed_test(bug), config(strategy, iterations=300)).bug_found:
            found = True
            break
    assert found, f"{bug.value} not found even with the directed test case"


def test_directed_harness_finds_rare_streamed_filter_shadowing_bug():
    """The rarest bug of the set: the triggering window (a filtered streamed
    read racing the old-table cleanup) needs a larger execution budget, which
    mirrors how unevenly the Table 2 bugs behaved in the paper."""
    report = run_test(
        build_directed_test(MigratingTableBug.QUERY_STREAMED_FILTER_SHADOWING),
        config("random", iterations=600),
    )
    assert report.bug_found
