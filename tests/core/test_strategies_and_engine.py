"""Tests for scheduling strategies, the engine, traces and replay."""

import pytest

from repro.core import (
    DFSStrategy,
    Event,
    Machine,
    PCTStrategy,
    RandomStrategy,
    ReplayStrategy,
    RoundRobinStrategy,
    ScheduleTrace,
    TestingConfig,
    TestingEngine,
    TraceStep,
    create_strategy,
    on_event,
    run_test,
)
from repro.core.errors import ReplayDivergenceError
from repro.core.ids import MachineId


def ids(n):
    return [MachineId(i, f"M{i}") for i in range(n)]


def test_random_strategy_is_deterministic_per_iteration():
    a, b = RandomStrategy(seed=3), RandomStrategy(seed=3)
    a.prepare_iteration(5)
    b.prepare_iteration(5)
    enabled = ids(4)
    assert [a.next_machine(enabled, i) for i in range(20)] == [
        b.next_machine(enabled, i) for i in range(20)
    ]


def test_random_strategy_varies_across_iterations():
    strategy = RandomStrategy(seed=3)
    strategy.prepare_iteration(0)
    enabled = ids(4)
    first = [strategy.next_machine(enabled, i) for i in range(20)]
    strategy.prepare_iteration(1)
    second = [strategy.next_machine(enabled, i) for i in range(20)]
    assert first != second


def test_pct_strategy_prefers_highest_priority_machine():
    strategy = PCTStrategy(seed=1, priority_switches=0, fair_suffix_start=None)
    strategy.prepare_iteration(0)
    enabled = ids(3)
    choices = {strategy.next_machine(enabled, i) for i in range(10)}
    assert len(choices) == 1


def test_pct_fair_suffix_uses_all_machines():
    strategy = PCTStrategy(seed=1, priority_switches=0, fair_suffix_start=0)
    strategy.prepare_iteration(0)
    enabled = ids(3)
    choices = {strategy.next_machine(enabled, i) for i in range(50)}
    assert len(choices) == 3


def test_round_robin_cycles_through_machines():
    strategy = RoundRobinStrategy()
    strategy.prepare_iteration(0)
    enabled = ids(3)
    picks = [strategy.next_machine(enabled, i).value for i in range(6)]
    assert picks == [0, 1, 2, 0, 1, 2]


def test_dfs_strategy_enumerates_boolean_tree():
    strategy = DFSStrategy()
    requester = MachineId(0, "M")
    seen = set()
    for iteration in range(10):
        strategy.prepare_iteration(iteration)
        if strategy.exhausted:
            break
        seen.add((strategy.next_boolean(requester, 0), strategy.next_boolean(requester, 1)))
    assert seen == {(False, False), (False, True), (True, False), (True, True)}
    assert strategy.exhausted


def test_create_strategy_factory():
    assert isinstance(create_strategy(TestingConfig(strategy="random")), RandomStrategy)
    assert isinstance(create_strategy(TestingConfig(strategy="pct")), PCTStrategy)
    assert isinstance(create_strategy(TestingConfig(strategy="round-robin")), RoundRobinStrategy)
    with pytest.raises(ValueError):
        create_strategy(TestingConfig(strategy="nope"))


def test_config_validation():
    with pytest.raises(ValueError):
        TestingConfig(iterations=0)
    with pytest.raises(ValueError):
        TestingConfig(max_steps=0)


# ---------------------------------------------------------------------------
# engine, trace and replay
# ---------------------------------------------------------------------------
class Token(Event):
    def __init__(self, hops):
        self.hops = hops


class SetPeer(Event):
    def __init__(self, peer):
        self.peer = peer


class RingNode(Machine):
    def on_start(self):
        self.peer = None
        self.received = 0

    @on_event(SetPeer)
    def set_peer(self, event):
        self.peer = event.peer

    @on_event(Token)
    def forward(self, event):
        self.received += 1
        self.assert_that(event.hops < 6, "token travelled too far")
        if self.peer is not None:
            self.send(self.peer, Token(event.hops + 1))


def ring_test(runtime):
    a = runtime.create_machine(RingNode)
    b = runtime.create_machine(RingNode)
    runtime.send_event(a, SetPeer(b))
    runtime.send_event(b, SetPeer(a))
    runtime.send_event(a, Token(0))


def test_engine_finds_bug_and_reports_metrics():
    report = run_test(ring_test, TestingConfig(iterations=5, max_steps=100, seed=1))
    assert report.bug_found
    assert report.first_bug.kind == "safety"
    assert report.time_to_first_bug is not None
    assert report.num_nondeterministic_choices > 0
    assert report.iterations_executed >= 1


def test_engine_replay_reproduces_bug():
    engine = TestingEngine(ring_test, TestingConfig(iterations=5, max_steps=100, seed=1))
    report = engine.run()
    assert report.bug_found
    replayed = engine.replay(report.first_bug.trace)
    assert replayed is not None
    assert replayed.kind == report.first_bug.kind
    assert replayed.message == report.first_bug.message


def test_engine_collects_coverage():
    report = run_test(ring_test, TestingConfig(iterations=3, max_steps=100, seed=1))
    summary = report.coverage.summary()
    assert summary["machine_types"] == 1
    assert summary["events_sent"] > 0


def test_trace_serialization_roundtrip(tmp_path):
    trace = ScheduleTrace()
    trace.add_scheduling_choice(1, "M(1)")
    trace.add_boolean_choice(True, "M(1)")
    trace.add_integer_choice(3, "M(2)")
    trace.log.append("hello")
    path = tmp_path / "trace.json"
    trace.save(str(path))
    loaded = ScheduleTrace.load(str(path))
    assert loaded.steps == trace.steps
    assert loaded.log == ["hello"]
    assert loaded.num_nondeterministic_choices == 3
    assert loaded.num_scheduling_choices == 1
    assert loaded.num_value_choices == 2


def test_replay_divergence_detected():
    trace = ScheduleTrace(steps=[TraceStep("bool", 1)])
    strategy = ReplayStrategy(trace)
    strategy.prepare_iteration(0)
    with pytest.raises(ReplayDivergenceError):
        strategy.next_machine([MachineId(0, "M")], 0)


def test_stop_at_first_bug_false_collects_multiple_bugs():
    config = TestingConfig(iterations=6, max_steps=100, seed=1, stop_at_first_bug=False)
    report = run_test(ring_test, config)
    assert report.iterations_executed == 6
    assert len(report.bugs) >= 1


def test_report_summary_strings():
    report = run_test(ring_test, TestingConfig(iterations=3, max_steps=100, seed=1))
    assert "bug found" in report.summary()
    clean = run_test(lambda rt: None, TestingConfig(iterations=2, max_steps=10))
    assert "no bug found" in clean.summary()


def test_report_summary_survives_missing_timing_fields():
    """A JSON-loaded report with bugs but no timing must not crash."""
    from repro.core.engine import TestReport

    report = run_test(ring_test, TestingConfig(iterations=3, max_steps=100, seed=1))
    assert report.bug_found
    payload = report.to_dict()
    # older writers (and cross-process aggregators) drop the timing fields
    payload.pop("time_to_first_bug", None)
    payload.pop("first_bug_iteration", None)
    loaded = TestReport.from_dict(payload)
    assert loaded.bug_found
    assert "timing unavailable" in loaded.summary()

    import json as json_module

    payload["time_to_first_bug"] = None
    payload["first_bug_iteration"] = None
    via_json = TestReport.from_json(json_module.dumps(payload))
    assert "timing unavailable" in via_json.summary()

    # the normal in-process path is unaffected
    assert "timing unavailable" not in report.summary()


def test_coverage_from_dict_reports_malformed_handled_row():
    from repro.core import CoverageTracker

    with pytest.raises(ValueError, match="coverage handled row 1"):
        CoverageTracker.from_dict(
            {"handled": [["M", "s", "E", 1], ["M", "s", "E"]]}
        )


# ---------------------------------------------------------------------------
# PCT change-point regressions
# ---------------------------------------------------------------------------
def test_pct_change_points_are_distinct():
    """Duplicate draws must not silently waste priority switches."""
    for iteration in range(200):
        strategy = PCTStrategy(seed=13, priority_switches=3, expected_length=4)
        strategy.prepare_iteration(iteration)
        points = strategy._change_points
        assert len(points) == len(set(points)) == 3


def test_pct_change_point_budget_capped_by_expected_length():
    strategy = PCTStrategy(seed=1, priority_switches=10, expected_length=4)
    strategy.prepare_iteration(0)
    assert sorted(strategy._change_points) == [0, 1, 2, 3]


def test_pct_drains_drifted_change_points_in_one_call():
    """Steps shared with value choices can jump past several change points;
    every stale point must be consumed (and demote) at the next scheduling
    point instead of smearing onto arbitrary later steps."""
    strategy = PCTStrategy(seed=2, priority_switches=2, expected_length=100)
    strategy.prepare_iteration(0)
    strategy._change_points = [3, 5]
    enabled = ids(4)
    strategy.next_machine(enabled, 0)  # before any change point
    assert strategy._change_points == [3, 5]
    strategy.next_machine(enabled, 50)  # drifted past both
    assert strategy._change_points == []
    # both demotions happened: two machines now carry sub-zero priorities
    demoted = [m for m in enabled if strategy._priorities.get(m, 1.0) < 0]
    assert len(demoted) == 2


def test_pct_demotion_schedule_regression():
    """Pin the demotion behaviour: after a change point fires, the demoted
    machine stops being scheduled until every other machine is demoted too."""
    strategy = PCTStrategy(seed=4, priority_switches=1, expected_length=1)
    strategy.prepare_iteration(0)
    enabled = ids(3)
    first = strategy.next_machine(enabled, 0)  # change point at step 0 fires
    # the machine holding the highest initial priority was demoted below
    # everything, so it is never chosen again while others are enabled
    later = {strategy.next_machine(enabled, step) for step in range(1, 10)}
    demoted = [m for m, p in strategy._priorities.items() if p < 0]
    assert len(demoted) == 1
    assert demoted[0] not in later
    assert first != demoted[0] or first not in later
