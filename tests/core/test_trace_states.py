"""Per-step state recording in ScheduleTrace (and its JSON compatibility)."""

import json

from repro.core import (
    RandomStrategy,
    ScheduleTrace,
    TestRuntime,
    TestingConfig,
    TestingEngine,
)
from repro.core.trace import SCHEDULE
from repro.examplesys.harness.scenarios import (
    build_replication_test,
    safety_bug_configuration,
)


def _run_seeded(seed=7, iterations=60):
    config = TestingConfig(
        strategy="random", seed=seed, iterations=iterations, max_steps=600
    )
    engine = TestingEngine(
        build_replication_test(safety_bug_configuration(), check_liveness=False), config
    )
    return engine, engine.run()


def test_states_parallel_the_schedule_steps():
    strategy = RandomStrategy(seed=3)
    strategy.prepare_iteration(0)
    runtime = TestRuntime(strategy, TestingConfig(max_steps=600))
    runtime.run(build_replication_test(safety_bug_configuration(), check_liveness=False))
    trace = runtime.trace
    assert len(trace.states) == trace.num_scheduling_choices
    assert all(isinstance(state, str) and state for state in trace.states)
    context = list(trace.schedule_context())
    assert len(context) == len(trace.states)
    assert all(step.kind == SCHEDULE for step, _state in context)
    # The §2.2 machines occupy their declared states.
    assert {"Init", "running"} >= set(trace.states)


def test_bug_trace_round_trips_states_through_json():
    engine, report = _run_seeded()
    assert report.bug_found
    bug = report.first_bug
    assert bug.trace.states, "bug traces must carry per-step states"
    loaded = ScheduleTrace.from_json(bug.trace.to_json())
    assert loaded.states == bug.trace.states
    assert loaded.steps == bug.trace.steps


def test_old_format_traces_without_states_still_load():
    engine, report = _run_seeded()
    payload = json.loads(report.first_bug.trace.to_json())
    assert "states" in payload
    del payload["states"]  # simulate a trace written before states existed
    loaded = ScheduleTrace.from_dict(payload)
    assert loaded.states == []
    assert loaded.steps == report.first_bug.trace.steps
    assert list(loaded.schedule_context()) == []
    # And a bare-steps trace serializes without the key at all.
    assert "states" not in loaded.to_dict()


def test_shrunk_trace_carries_executed_states():
    engine, report = _run_seeded()
    bug = report.first_bug
    result = engine.shrink_bug(bug)
    assert bug.shrunk_trace is not None
    assert len(bug.shrunk_trace.states) == bug.shrunk_trace.num_scheduling_choices
    # The shrunk trace is adopted from an actual execution, so its states are
    # exact for the minimized schedule, not a slice of the original's.
    assert result.trace.states == bug.shrunk_trace.states
