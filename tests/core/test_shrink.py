"""Tests for the counterexample shrinking subsystem (repro.core.shrink)."""

import pytest

from repro.core import (
    Event,
    Machine,
    Portfolio,
    ShrinkStats,
    Shrinker,
    TestReport,
    TestingConfig,
    TestingEngine,
    on_event,
    run_test,
)
from repro.core.runtime import BugInfo
from repro.core.shrink import trace_score
from repro.core.trace import INTEGER, SCHEDULE, TraceStep


# ---------------------------------------------------------------------------
# a small harness whose bug needs a specific interleaving
# ---------------------------------------------------------------------------
class Token(Event):
    def __init__(self, hops):
        self.hops = hops


class SetPeer(Event):
    def __init__(self, peer):
        self.peer = peer


class RingNode(Machine):
    def on_start(self):
        self.peer = None

    @on_event(SetPeer)
    def set_peer(self, event):
        self.peer = event.peer

    @on_event(Token)
    def forward(self, event):
        self.assert_that(event.hops < 6, "token travelled too far")
        if self.peer is not None:
            self.send(self.peer, Token(event.hops + 1))


def ring_test(runtime):
    a = runtime.create_machine(RingNode)
    b = runtime.create_machine(RingNode)
    runtime.send_event(a, SetPeer(b))
    runtime.send_event(b, SetPeer(a))
    runtime.send_event(a, Token(0))


def find_ring_bug(seed=1):
    config = TestingConfig(iterations=10, max_steps=100, seed=seed)
    engine = TestingEngine(ring_test, config)
    report = engine.run()
    assert report.bug_found
    return engine, report.first_bug


# ---------------------------------------------------------------------------
# the shrinker itself
# ---------------------------------------------------------------------------
def test_shrink_reduces_and_stays_replayable():
    engine, bug = find_ring_bug()
    original_length = len(bug.trace.steps)
    result = engine.shrink_bug(bug)
    assert result.stats.original_length == original_length
    assert result.stats.final_length == len(result.trace.steps)
    assert result.stats.final_length <= original_length
    assert result.bug.kind == bug.kind
    # The minimized trace is exact: it replays in *strict* mode.
    replayed = engine.replay(result.trace)
    assert replayed is not None
    assert replayed.kind == bug.kind


def test_shrink_attaches_result_to_bug():
    engine, bug = find_ring_bug()
    result = engine.shrink_bug(bug)
    assert bug.shrunk_trace is result.trace
    assert bug.shrink is result.stats
    assert bug.shrink.replays_run <= bug.shrink.candidates_tried


def test_shrink_is_deterministic():
    engine_a, bug_a = find_ring_bug(seed=2)
    engine_b, bug_b = find_ring_bug(seed=2)
    result_a = engine_a.shrink_bug(bug_a)
    result_b = engine_b.shrink_bug(bug_b)
    assert result_a.trace.steps == result_b.trace.steps
    assert result_a.stats.to_dict() == result_b.stats.to_dict()


def test_shrink_respects_replay_budget():
    engine, bug = find_ring_bug()
    shrinker = Shrinker(ring_test, engine.config, max_replays=3)
    result = shrinker.shrink(bug)
    assert result.stats.replays_run <= 3
    assert result.stats.final_length <= result.stats.original_length


def test_shrink_without_trace_raises():
    shrinker = Shrinker(ring_test, TestingConfig())
    with pytest.raises(ValueError):
        shrinker.shrink(BugInfo(kind="safety", message="m", step=0))


def test_trace_score_orders_by_length_then_value_weight():
    sched = TraceStep(SCHEDULE, 3, "M(3)")
    assert trace_score([sched]) < trace_score([sched, sched])
    heavy = [sched, TraceStep(INTEGER, 7, "M(3)")]
    light = [sched, TraceStep(INTEGER, 0, "M(3)")]
    assert trace_score(light) < trace_score(heavy)
    # schedule values carry machine ids, not magnitudes: no weight
    assert trace_score([TraceStep(SCHEDULE, 9, "M(9)")]) == (1, 0)


def test_shrink_stats_roundtrip():
    stats = ShrinkStats(
        original_length=100,
        final_length=20,
        candidates_tried=42,
        replays_run=40,
        passes_completed=2,
        budget_exhausted=True,
    )
    assert ShrinkStats.from_dict(stats.to_dict()) == stats
    assert stats.reduction == pytest.approx(5.0)
    assert "100 -> 20" in stats.summary()


# ---------------------------------------------------------------------------
# engine / report / portfolio integration
# ---------------------------------------------------------------------------
def test_run_test_shrink_option_attaches_shrunk_traces():
    report = run_test(
        ring_test, TestingConfig(iterations=10, max_steps=100, seed=1), shrink=True
    )
    assert report.bug_found
    bug = report.first_bug
    assert bug.shrunk_trace is not None
    assert bug.shrink is not None
    assert len(bug.shrunk_trace.steps) <= len(bug.trace.steps)


def test_bug_with_shrunk_trace_roundtrips_through_report_json():
    report = run_test(
        ring_test, TestingConfig(iterations=10, max_steps=100, seed=1), shrink=True
    )
    loaded = TestReport.from_json(report.to_json())
    bug = loaded.first_bug
    assert bug.shrunk_trace is not None
    assert bug.shrunk_trace.steps == report.first_bug.shrunk_trace.steps
    assert bug.shrink == report.first_bug.shrink


def test_unreduced_shrink_does_not_serialize_the_trace_twice():
    from repro.core import ScheduleTrace

    trace = ScheduleTrace()
    trace.add_scheduling_choice(0, "M(0)")
    bug = BugInfo(
        kind="safety", message="m", step=1, trace=trace,
        shrunk_trace=trace,
        shrink=ShrinkStats(original_length=1, final_length=1),
    )
    payload = bug.to_dict()
    assert "shrunk_trace" not in payload
    assert payload["shrink"]["final_length"] == 1
    restored = BugInfo.from_dict(payload)
    assert restored.shrunk_trace is restored.trace
    assert restored.shrink == bug.shrink


def test_unshrunk_bug_payload_has_no_shrink_keys():
    report = run_test(ring_test, TestingConfig(iterations=10, max_steps=100, seed=1))
    payload = report.first_bug.to_dict()
    assert "shrunk_trace" not in payload
    assert "shrink" not in payload


def test_portfolio_shrinks_only_the_winning_bug():
    portfolio = Portfolio(
        "examplesys/safety-bug",
        strategies=["random"],
        iterations=100,
        num_shards=2,
        seed=0,
        shrink=True,
    )
    report = portfolio.run()
    assert report.bug_found
    winner = report.winning_result
    assert winner.report.first_bug.shrunk_trace is not None
    assert winner.report.first_bug.shrink is not None
    for result in report.results:
        bug = result.report.first_bug
        if result is not winner and bug is not None:
            assert bug.shrunk_trace is None
    # the summary advertises the shrink
    assert "shrunk" in report.summary()
    # and the shrunk trace survives the portfolio JSON roundtrip
    loaded = type(report).from_json(report.to_json())
    assert loaded.winning_result.report.first_bug.shrunk_trace is not None
