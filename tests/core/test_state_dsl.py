"""State-DSL semantics: defer/ignore disciplines, the state stack, raised
events, and their interplay with the incrementally maintained enabled set."""

import pytest

from repro.core import (
    Event,
    FrameworkError,
    Machine,
    Monitor,
    PCTStrategy,
    RandomStrategy,
    ReplayStrategy,
    RoundRobinStrategy,
    State,
    TestRuntime,
    TestingConfig,
    on_entry,
    on_event,
)
from repro.core.declarations import DEFER, IGNORE, build_spec, resolve_state_name


class Ping(Event):
    pass


class Pong(Event):
    pass


class Nudge(Event):
    pass


class Noise(Event):
    pass


def make_runtime(strategy=None, **config_kwargs):
    config_kwargs.setdefault("max_steps", 200)
    config = TestingConfig(iterations=1, **config_kwargs)
    strategy = strategy or RoundRobinStrategy()
    strategy.prepare_iteration(0)
    return TestRuntime(strategy, config)


# ---------------------------------------------------------------------------
# declaration layer
# ---------------------------------------------------------------------------
class Door(Machine):
    class Closed(State, initial=True):
        deferred = (Pong,)
        ignored = (Noise,)

        @on_event(Ping)
        def open_up(self, event):
            self.goto(Door.Open)

    class Open(State):
        @on_event(Pong)
        def blow_shut(self, event):
            self.goto(Door.Closed)


def test_spec_collects_dsl_states():
    spec = Door.spec()
    assert spec.initial_state == "Closed"
    assert spec.states == {"Closed", "Open"}
    assert spec.deferred == {"Closed": frozenset({Pong})}
    assert spec.ignored == {"Closed": frozenset({Noise})}
    assert spec.handler_for("Closed", Ping) is not None
    assert spec.handler_for("Open", Pong) is not None
    assert spec.handler_for("Open", Ping) is None


def test_context_classification_and_plain_flag():
    spec = Door.spec()
    closed = spec.context_for(("Closed",))
    assert closed.resolve(Pong) is DEFER
    assert closed.resolve(Noise) is IGNORE
    assert closed.dequeuable(Ping) and not closed.dequeuable(Pong)
    assert not closed.plain
    open_ctx = spec.context_for(("Open",))
    assert open_ctx.plain
    assert open_ctx.resolve(Ping) is None  # unhandled, still dequeuable
    assert open_ctx.dequeuable(Ping)


def test_state_name_override_and_resolution():
    class Named(Machine):
        class First(State, initial=True, name="first"):
            pass

    assert Named.spec().initial_state == "first"
    assert resolve_state_name(Named.First) == "first"
    assert resolve_state_name("x") == "x"
    with pytest.raises(TypeError):
        resolve_state_name(42)


def test_state_is_never_instantiated():
    with pytest.raises(TypeError):
        Door.Closed()


def test_conflicting_disciplines_raise():
    with pytest.raises(TypeError, match="deferred and ignored"):
        class Conflicted(Machine):
            class S(State, initial=True):
                deferred = (Ping,)
                ignored = (Ping,)

        build_spec(Conflicted)


def test_handler_for_deferred_event_raises():
    with pytest.raises(TypeError, match="deferred and handled"):
        class Contradictory(Machine):
            class S(State, initial=True):
                deferred = (Ping,)

                @on_event(Ping)
                def handle(self, event):
                    pass

        build_spec(Contradictory)


def test_state_scoped_handler_rejects_state_argument():
    with pytest.raises(TypeError, match="must not pass state="):
        class Wrong(Machine):
            class S(State, initial=True):
                @on_event(Ping, state="elsewhere")
                def handle(self, event):
                    pass

        build_spec(Wrong)


def test_two_initial_states_raise():
    with pytest.raises(TypeError, match="more than one initial state"):
        class Twice(Machine):
            class A(State, initial=True):
                pass

            class B(State, initial=True):
                pass

        build_spec(Twice)


def test_duplicate_state_names_raise():
    with pytest.raises(TypeError, match="duplicate state name"):
        class Clash(Machine):
            class A(State, initial=True, name="same"):
                pass

            class B(State, name="same"):
                pass

        build_spec(Clash)


def test_subclass_spec_is_not_polluted_by_hoisted_handlers():
    class Child(Door):
        pass

    spec = build_spec(Child)
    # The hoisted Door handlers must stay state-scoped in the child's spec,
    # not resurface as wildcard handlers.
    assert spec.handler_for("Open", Ping) is None
    assert spec.initial_state == "Closed"


def test_spec_contents_do_not_depend_on_spec_build_order():
    """Regression: building the subclass spec *first* used to re-register the
    base's freshly hoisted state handlers as wildcard handlers."""

    class FreshBase(Machine):
        class Work(State, initial=True):
            @on_event(Ping)
            def handle(self, event):
                pass

    class FreshDerived(FreshBase):
        pass

    derived_spec = build_spec(FreshDerived)  # before the base's spec exists
    base_spec = build_spec(FreshBase)
    for spec in (derived_spec, base_spec):
        assert spec.handler_for("Work", Ping) is not None
        # Ping must stay scoped to Work, not leak into every state.
        assert spec.handler_for("Elsewhere", Ping) is None


def test_decorated_entry_actions_inside_state_bodies_are_rejected():
    with pytest.raises(TypeError, match="plain on_entry"):
        class Decorated(Machine):
            class S(State, initial=True):
                @on_entry("S")
                def setup(self):
                    pass

        build_spec(Decorated)


def test_plain_helper_methods_inside_state_bodies_are_rejected():
    with pytest.raises(TypeError, match="helper methods"):
        class WithHelper(Machine):
            class S(State, initial=True):
                def helper(self):
                    pass

        build_spec(WithHelper)


def test_nested_states_inside_state_bodies_are_rejected():
    with pytest.raises(TypeError, match="states do not nest"):
        class Nested(Machine):
            class Outer(State, initial=True):
                class Inner(State):
                    pass

        build_spec(Nested)


def test_cross_form_handler_vs_discipline_conflict_is_rejected():
    """A legacy state-scoped handler and a DSL discipline for the same event
    type in the same state must conflict loudly, exactly like the pure-DSL
    spelling."""
    with pytest.raises(TypeError, match="both deferred and handled"):
        class Mixed(Machine):
            @on_event(Ping, state="Hold")
            def legacy_handler(self, event):
                pass

            class Hold(State, initial=True):
                deferred = (Ping,)

        build_spec(Mixed)


def test_subclass_overrides_state_disciplines():
    class RelaxedDoor(Door):
        class Closed(State, initial=True):
            pass

    spec = build_spec(RelaxedDoor)
    assert spec.deferred == {}
    assert spec.ignored == {}


# ---------------------------------------------------------------------------
# defer/ignore semantics and the incremental enabled set
# ---------------------------------------------------------------------------
class DeferTarget(Machine):
    def on_start(self):
        self.handled = []

    class Waiting(State, initial=True):
        deferred = (Ping,)

        @on_event(Nudge)
        def advance(self):
            self.goto(DeferTarget.Open)

    class Open(State):
        @on_event(Ping)
        def got_ping(self, event):
            self.handled.append("ping")


def test_deferred_only_inbox_is_not_enabled_and_reenables_on_transition():
    runtime = make_runtime()
    runtime.run(lambda rt: rt.create_machine(DeferTarget, name="T"))
    target = runtime.machines_of_type(DeferTarget)[0]
    assert runtime.enabled_machine_ids == []

    runtime.send_event(target.id, Ping())
    # The inbox holds only a deferred event: the machine must not be runnable.
    assert runtime.enabled_machine_ids == []
    assert target._inbox

    runtime.send_event(target.id, Nudge())
    # Nudge is dequeuable, so the machine re-enters the enabled set.
    assert runtime.enabled_machine_ids == [target.id]

    runtime._execution_loop()
    # Nudge transitioned to Open, un-deferring Ping, which was then handled.
    assert target.handled == ["ping"]
    assert target.current_state == "Open"
    assert runtime.enabled_machine_ids == []


def test_deferred_events_keep_fifo_order_across_the_transition():
    class Recorder(Machine):
        def on_start(self):
            self.values = []

        class Hold(State, initial=True):
            deferred = (Ping,)

            @on_event(Nudge)
            def advance(self):
                self.goto(Recorder.Play)

        class Play(State):
            @on_event(Ping)
            def record(self, event):
                self.values.append(event.value)

    class Tagged(Ping):
        def __init__(self, value):
            self.value = value

    runtime = make_runtime()
    runtime.run(lambda rt: rt.create_machine(Recorder))
    recorder = runtime.machines_of_type(Recorder)[0]
    for value in (1, 2, 3):
        runtime.send_event(recorder.id, Tagged(value))
    runtime.send_event(recorder.id, Nudge())
    runtime._execution_loop()
    assert recorder.values == [1, 2, 3]


class IgnoreTarget(Machine):
    def on_start(self):
        self.handled = []

    class Init(State, initial=True):
        ignored = (Noise,)

        @on_event(Ping)
        def got_ping(self, event):
            self.handled.append("ping")


def test_ignored_only_inbox_is_not_enabled_and_is_benign_at_quiescence():
    runtime = make_runtime(report_deadlocks=True)

    def entry(rt):
        target = rt.create_machine(IgnoreTarget)
        rt.send_event(target, Noise())

    # Ignored-only backlog: quiescent, and *not* a deadlock.
    assert runtime.run(entry) is None
    target = runtime.machines_of_type(IgnoreTarget)[0]
    assert runtime.enabled_machine_ids == []
    assert list(target._inbox)  # the ignored event just sits there


def test_ignored_events_are_dropped_while_scanning_to_a_dequeuable_event():
    runtime = make_runtime()
    runtime.run(lambda rt: rt.create_machine(IgnoreTarget))
    target = runtime.machines_of_type(IgnoreTarget)[0]
    runtime.send_event(target.id, Noise())
    runtime.send_event(target.id, Noise())
    runtime.send_event(target.id, Ping())
    runtime._execution_loop()
    assert target.handled == ["ping"]
    assert not target._inbox  # the leading ignored events were dropped


def test_deferred_backlog_at_quiescence_is_a_deadlock():
    runtime = make_runtime(report_deadlocks=True)

    def entry(rt):
        target = rt.create_machine(DeferTarget, name="T")
        rt.send_event(target, Ping())

    bug = runtime.run(entry)
    assert bug is not None and bug.kind == "deadlock"
    assert "holds deferred events" in bug.message


# ---------------------------------------------------------------------------
# push/pop state stack
# ---------------------------------------------------------------------------
class Stacker(Machine):
    def on_start(self):
        self.trail = []

    class Base(State, initial=True):
        @on_event(Ping)
        def base_ping(self, event):
            self.trail.append("base-ping")

        @on_event(Nudge)
        def push_up(self):
            self.push_state(Stacker.Pushed)

        def on_entry(self):
            self.trail.append("base-entry")

        def on_exit(self):
            self.trail.append("base-exit")

    class Pushed(State):
        deferred = (Pong,)

        @on_event(Nudge)
        def pop_down(self):
            self.pop_state()

        def on_entry(self):
            self.trail.append("pushed-entry")

        def on_exit(self):
            self.trail.append("pushed-exit")


def test_push_runs_entry_without_exiting_the_paused_state():
    runtime = make_runtime()
    runtime.run(lambda rt: rt.create_machine(Stacker))
    machine = runtime.machines_of_type(Stacker)[0]
    runtime.send_event(machine.id, Nudge())
    runtime._execution_loop()
    assert machine.state_stack == ("Base", "Pushed")
    assert machine.current_state == "Pushed"
    # push: pushed state's entry ran, paused state's exit did NOT.
    assert machine.trail == ["base-entry", "pushed-entry"]


def test_pushed_state_inherits_handlers_and_disciplines_from_the_stack():
    runtime = make_runtime()
    runtime.run(lambda rt: rt.create_machine(Stacker))
    machine = runtime.machines_of_type(Stacker)[0]
    runtime.send_event(machine.id, Nudge())  # push
    runtime._execution_loop()
    # Ping has no handler in Pushed: Base's handler is inherited down the stack.
    runtime.send_event(machine.id, Ping())
    runtime._execution_loop()
    assert machine.trail == ["base-entry", "pushed-entry", "base-ping"]
    # Pong is deferred by the *top* state even though Base says nothing.
    runtime.send_event(machine.id, Pong())
    assert runtime.enabled_machine_ids == []


def test_pop_runs_exit_and_returns_without_reentering():
    runtime = make_runtime()
    runtime.run(lambda rt: rt.create_machine(Stacker))
    machine = runtime.machines_of_type(Stacker)[0]
    runtime.send_event(machine.id, Nudge())  # push
    runtime.send_event(machine.id, Nudge())  # pop (Pushed handles Nudge)
    runtime._execution_loop()
    assert machine.state_stack == ("Base",)
    # pop: popped state's exit ran; Base's entry did NOT re-run.
    assert machine.trail == ["base-entry", "pushed-entry", "pushed-exit"]


def test_initial_state_entry_action_runs_at_machine_start():
    class Starter(Machine):
        def on_start(self, value):
            self.trail = [f"start-{value}"]

        class Home(State, initial=True):
            def on_entry(self):
                # on_start already ran: its fields are available here.
                self.trail.append("home-entry")

    runtime = make_runtime()
    runtime.run(lambda rt: rt.create_machine(Starter, 7))
    machine = runtime.machines_of_type(Starter)[0]
    assert machine.trail == ["start-7", "home-entry"]


def test_initial_entry_is_skipped_when_on_start_transitions_away():
    class Mover(Machine):
        def on_start(self):
            self.trail = []
            self.goto(Mover.Away)

        class Home(State, initial=True):
            def on_entry(self):
                self.trail.append("home-entry")

        class Away(State):
            def on_entry(self):
                self.trail.append("away-entry")

    runtime = make_runtime()
    runtime.run(lambda rt: rt.create_machine(Mover))
    machine = runtime.machines_of_type(Mover)[0]
    # Only the goto target's entry ran; the abandoned initial state's didn't.
    assert machine.trail == ["away-entry"]


def test_initial_entry_runs_once_when_on_start_leaves_and_returns():
    class Bouncer(Machine):
        def on_start(self):
            self.trail = []
            self.goto(Bouncer.Away)
            self.goto(Bouncer.Home)

        class Home(State, initial=True):
            def on_entry(self):
                self.trail.append("home-entry")

        class Away(State):
            def on_entry(self):
                self.trail.append("away-entry")

    runtime = make_runtime()
    runtime.run(lambda rt: rt.create_machine(Bouncer))
    machine = runtime.machines_of_type(Bouncer)[0]
    # The goto back already ran Home's entry; start-up must not run it again.
    assert machine.trail == ["away-entry", "home-entry"]


def test_monitor_initial_entry_action_runs_at_registration():
    class Probe(Monitor):
        entered = False

        class Watch(State, initial=True):
            def on_entry(self):
                self.entered = True

    runtime = make_runtime()
    monitor = runtime.register_monitor(Probe)
    assert monitor.entered is True


def test_pop_on_the_bottom_state_is_a_framework_error():
    class Popper(Machine):
        class Only(State, initial=True):
            @on_event(Ping)
            def pop(self, event):
                self.pop_state()

    runtime = make_runtime()

    def entry(rt):
        machine = rt.create_machine(Popper)
        rt.send_event(machine, Ping())

    with pytest.raises(FrameworkError, match="pop_state on the bottom state"):
        runtime.run(entry)


def test_pop_reveals_previous_disciplines_and_undeferred_events_run():
    runtime = make_runtime()
    runtime.run(lambda rt: rt.create_machine(Stacker))
    machine = runtime.machines_of_type(Stacker)[0]
    runtime.send_event(machine.id, Nudge())  # push
    runtime._execution_loop()
    runtime.send_event(machine.id, Pong())  # deferred by Pushed
    assert runtime.enabled_machine_ids == []
    runtime.send_event(machine.id, Nudge())  # pop
    runtime._execution_loop()
    # After the pop, Pong is no longer deferred; Base has no handler for it,
    # so it is an unhandled-event bug — proving it became dequeuable.
    assert runtime.bug is not None and runtime.bug.kind == "unhandled-event"


# ---------------------------------------------------------------------------
# raised events
# ---------------------------------------------------------------------------
def test_raised_events_dispatch_before_the_inbox():
    class Raiser(Machine):
        def on_start(self):
            self.order = []

        class Init(State, initial=True):
            @on_event(Nudge)
            def trigger(self):
                self.raise_event(Pong())

            @on_event(Pong)
            def high(self, event):
                self.order.append("raised")

            @on_event(Ping)
            def low(self, event):
                self.order.append("inbox")

    runtime = make_runtime()
    runtime.run(lambda rt: rt.create_machine(Raiser))
    machine = runtime.machines_of_type(Raiser)[0]
    runtime.send_event(machine.id, Nudge())
    runtime.send_event(machine.id, Ping())
    runtime._execution_loop()
    # The raised Pong was queued after Ping was already in the inbox, yet it
    # dispatched first.
    assert machine.order == ["raised", "inbox"]


def test_raised_events_bypass_defer_disciplines():
    class RaiseThrough(Machine):
        def on_start(self):
            self.got = []

        @on_event(Pong)
        def wildcard_pong(self, event):
            self.got.append("pong")

        class Hold(State, initial=True):
            deferred = (Pong,)

            @on_event(Nudge)
            def trigger(self):
                self.raise_event(Pong())

    runtime = make_runtime()
    runtime.run(lambda rt: rt.create_machine(RaiseThrough))
    machine = runtime.machines_of_type(RaiseThrough)[0]
    runtime.send_event(machine.id, Pong())  # deferred: not runnable
    assert runtime.enabled_machine_ids == []
    runtime.send_event(machine.id, Nudge())
    runtime._execution_loop()
    # The raised Pong was handled (wildcard) despite the defer discipline;
    # the *sent* Pong stays deferred in the inbox.
    assert machine.got == ["pong"]
    assert list(machine._inbox)


def test_unhandled_raised_event_is_a_bug():
    class BadRaiser(Machine):
        class Init(State, initial=True):
            @on_event(Nudge)
            def trigger(self):
                self.raise_event(Pong())

    runtime = make_runtime()

    def entry(rt):
        machine = rt.create_machine(BadRaiser)
        rt.send_event(machine, Nudge())

    bug = runtime.run(entry)
    assert bug is not None and bug.kind == "unhandled-event"


def test_raise_into_receive_blocked_machine_waits_for_the_receive():
    """A raised event must not wake a machine blocked in Receive (raised
    events are dispatched, never received) — and must drain afterwards."""
    from repro.core import Receive

    class Blocker(Machine):
        def on_start(self):
            self.order = []
            got = yield Receive(Ping)
            self.order.append("received")

        class Init(State, initial=True):
            @on_event(Pong)
            def raised_pong(self, event):
                self.order.append("raised")

    runtime = make_runtime()
    runtime.run(lambda rt: rt.create_machine(Blocker))
    machine = runtime.machines_of_type(Blocker)[0]
    assert machine._pending_receive is not None

    machine.raise_event(Pong())
    # Still blocked: the raised event cannot satisfy the receive.
    assert runtime.enabled_machine_ids == []

    runtime.send_event(machine.id, Ping())
    runtime._execution_loop()
    # The receive completed first, then the raised event dispatched.
    assert machine.order == ["received", "raised"]


def test_raise_event_rejects_non_events():
    class Misuser(Machine):
        class Init(State, initial=True):
            @on_event(Nudge)
            def trigger(self):
                self.raise_event("nope")

    runtime = make_runtime()

    def entry(rt):
        machine = rt.create_machine(Misuser)
        rt.send_event(machine, Nudge())

    with pytest.raises(FrameworkError, match="raise_event expects an Event"):
        runtime.run(entry)


# ---------------------------------------------------------------------------
# goto by State class; DSL monitors
# ---------------------------------------------------------------------------
def test_goto_accepts_state_classes():
    runtime = make_runtime()
    runtime.run(lambda rt: rt.create_machine(Door))
    door = runtime.machines_of_type(Door)[0]
    runtime.send_event(door.id, Ping())
    runtime._execution_loop()
    assert door.current_state == "Open"


def test_monitor_ignored_notifications_are_dropped():
    class Selective(Monitor):
        class Init(State, initial=True):
            ignored = (Noise,)

            @on_event(Ping)
            def on_ping(self, event):
                self.seen = True

    runtime = make_runtime()
    monitor = runtime.register_monitor(Selective)
    monitor.handle(Noise())  # dropped silently, not a FrameworkError
    monitor.handle(Ping())
    assert monitor.seen
    with pytest.raises(FrameworkError, match="no handler"):
        monitor.handle(Pong())


def test_monitor_deferred_declarations_are_rejected():
    class Deferring(Monitor):
        class Init(State, initial=True):
            deferred = (Ping,)

    with pytest.raises(TypeError, match="notified synchronously"):
        Deferring.spec()


def test_monitor_hot_states_via_dsl():
    class Watch(Monitor):
        class Cold(State, initial=True):
            @on_event(Ping)
            def heat(self, event):
                self.goto(Watch.Hot)

        class Hot(State, hot=True):
            @on_event(Pong)
            def cool(self, event):
                self.goto(Watch.Cold)

    assert Watch.is_liveness_monitor()
    runtime = make_runtime()
    monitor = runtime.register_monitor(Watch)
    assert monitor.current_state == "Cold" and not monitor.is_hot
    monitor.handle(Ping())
    assert monitor.current_state == "Hot" and monitor.is_hot
    monitor.handle(Pong())
    assert not monitor.is_hot


# ---------------------------------------------------------------------------
# Table 1 statistics over the new spec
# ---------------------------------------------------------------------------
def test_statistics_count_states_defers_and_ignores():
    from repro.core.statistics import (
        count_deferred_events,
        count_ignored_events,
        count_states,
    )
    from repro.examplesys.harness.flushstore import FlushStoreMachine

    classes = [FlushStoreMachine, Door, Stacker]
    assert count_states(classes) == 2 + 2 + 2
    # Flushing defers Write; Door.Closed defers Pong; Stacker.Pushed defers Pong.
    assert count_deferred_events(classes) == 3
    # Flushing ignores FlushRequest; Door.Closed ignores Noise.
    assert count_ignored_events(classes) == 2


# ---------------------------------------------------------------------------
# enabled-set exactness under random, PCT and strict replay (satellite 3)
# ---------------------------------------------------------------------------
def _checking_strategy(base_cls, *args, **kwargs):
    """A strategy that asserts enabled-set exactness at every choice."""

    class Checking(base_cls):
        runtime = None

        def next_machine(self, enabled, step):
            rt = self.runtime
            expected = [m.id for m in rt._machines.values() if m._has_work()]
            assert sorted(enabled, key=lambda i: i.value) == sorted(
                expected, key=lambda i: i.value
            ), f"enabled snapshot diverged at step {step}"
            for machine in rt._machines.values():
                assert machine._enabled == machine._has_work()
            return super().next_machine(enabled, step)

    return Checking(*args, **kwargs)


def _wedge_entry(rt):
    from repro.examplesys.harness.flushstore import (
        FlushSafetyMonitor,
        FlushStoreMachine,
        WedgingClientMachine,
    )

    rt.register_monitor(FlushSafetyMonitor)
    store = rt.create_machine(FlushStoreMachine, True, name="Store")
    rt.create_machine(WedgingClientMachine, store, name="Client")


@pytest.mark.parametrize("base_cls", [RandomStrategy, PCTStrategy])
def test_enabled_set_stays_exact_with_disciplines(base_cls):
    for iteration in range(10):
        strategy = _checking_strategy(base_cls, seed=iteration)
        strategy.prepare_iteration(iteration)
        runtime = TestRuntime(strategy, TestingConfig(max_steps=300))
        strategy.runtime = runtime
        bug = runtime.run(_wedge_entry)
        # The wedge is deterministic: the store always ends up holding a
        # deferred Write, whatever the schedule.
        assert bug is not None and bug.kind == "deadlock"


def test_strict_replay_reproduces_defer_wedge_bytewise():
    strategy = RandomStrategy(seed=11)
    strategy.prepare_iteration(0)
    runtime = TestRuntime(strategy, TestingConfig(max_steps=300))
    bug = runtime.run(_wedge_entry)
    assert bug is not None and bug.kind == "deadlock"

    replay = _checking_strategy(ReplayStrategy, bug.trace)
    replay.prepare_iteration(0)
    replay_runtime = TestRuntime(replay, TestingConfig(max_steps=300))
    replay.runtime = replay_runtime
    replayed = replay_runtime.run(_wedge_entry)
    assert replayed is not None and replayed.kind == "deadlock"
    assert replay_runtime.trace.steps == bug.trace.steps
    assert replay_runtime.trace.states == bug.trace.states
