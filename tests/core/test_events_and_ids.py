"""Unit tests for events, Receive matching and machine ids."""

import pytest

from repro.core import Event, Halt, MachineId, Receive, TimerTick


class Ping(Event):
    def __init__(self, value):
        self.value = value


class Pong(Event):
    pass


def test_event_repr_includes_fields():
    assert "value=3" in repr(Ping(3))


def test_event_value_equality():
    assert Ping(1) == Ping(1)
    assert Ping(1) != Ping(2)
    assert Ping(1) != Pong()


def test_event_hashable():
    assert len({Ping(1), Ping(1), Ping(2)}) == 2


def test_halt_is_event():
    assert isinstance(Halt(), Event)


def test_timer_tick_carries_name():
    assert TimerTick("sync").timer_name == "sync"


def test_receive_requires_event_types():
    with pytest.raises(ValueError):
        Receive()
    with pytest.raises(TypeError):
        Receive(int)


def test_receive_matches_subclass_and_predicate():
    receive = Receive(Ping, predicate=lambda e: e.value > 1)
    assert not receive.matches(Ping(1))
    assert receive.matches(Ping(2))
    assert not receive.matches(Pong())


def test_machine_id_ordering_and_str():
    a = MachineId(1, "Server", "S")
    b = MachineId(2, "Client")
    assert a < b
    assert str(a) == "S(1)"
    assert str(b) == "Client(2)"


def test_machine_id_equality_ignores_name():
    assert MachineId(1, "Server", "x") == MachineId(1, "Server", "y")
