"""The ``dpor-lite`` strategy: sleep-set pruning soundness and degradation.

Soundness is checked two ways:

* **Exhaustive** (vnext failover, small depth): both ``dfs`` and ``dpor-lite``
  exhaust the bounded schedule space, must find exactly the same bug kinds,
  and the pruned search must enumerate strictly fewer schedules.
* **Cross-validation over every Table-2 scenario**: identical budgets, the
  bug-kind sets must match (this also drives footprint resolution against
  every case-study harness; the MigratingTable spaces are too wide to exhaust
  at CI budgets, so their comparison guards against *spurious* bugs).
"""

import hashlib

import pytest

from repro.analysis import independence_for_scenarios
from repro.core import TestingConfig, TestingEngine, TestRuntime
from repro.core.registry import all_scenarios, get_scenario, load_builtin_scenarios
from repro.core.strategy import create_strategy
from repro.core.strategy.dpor_lite import DporLiteStrategy, _independent, _Touch


def _table2_cases():
    load_builtin_scenarios()
    return all_scenarios(tag="table2")


def _run(case, strategy, table, iterations, max_steps):
    config = case.default_config(
        strategy=strategy,
        iterations=iterations,
        max_steps=max_steps,
        stop_at_first_bug=False,
        max_bugs=None,
        max_log_records=16,
        independence=table,
    )
    return TestingEngine(case.build(), config).run()


# ---------------------------------------------------------------------------
# soundness
# ---------------------------------------------------------------------------
def test_pruned_exhaustive_search_finds_the_same_bugs_with_fewer_schedules():
    load_builtin_scenarios()
    case = get_scenario("vnext/extent-node-liveness")
    table = independence_for_scenarios([case])
    dfs = _run(case, "dfs", None, 20_000, 5)
    pruned = _run(case, "dpor-lite", table, 20_000, 5)
    assert dfs.state_space_exhausted and pruned.state_space_exhausted
    assert dfs.bug_found and pruned.bug_found
    assert {b.kind for b in dfs.bugs} == {b.kind for b in pruned.bugs}
    assert pruned.iterations_executed < dfs.iterations_executed


@pytest.mark.parametrize(
    "case", _table2_cases(), ids=lambda case: case.name.replace("/", "-")
)
def test_cross_validation_identical_bug_sets_on_table2(case):
    table = independence_for_scenarios([case])
    dfs = _run(case, "dfs", None, 600, 6)
    pruned = _run(case, "dpor-lite", table, 600, 6)
    assert {b.kind for b in dfs.bugs} == {b.kind for b in pruned.bugs}


def test_without_a_table_dpor_lite_is_exactly_dfs():
    """No independence facts -> identical schedule enumeration, trace for
    trace, not merely identical bug sets."""
    load_builtin_scenarios()
    case = get_scenario("vnext/extent-node-liveness")

    def digests(strategy_name):
        config = case.default_config(
            strategy=strategy_name, iterations=25, max_steps=6,
            stop_at_first_bug=False, max_bugs=None, max_log_records=16,
        )
        strategy = create_strategy(config)
        out = []
        for iteration in range(config.iterations):
            strategy.prepare_iteration(iteration)
            if strategy.exhausted:
                break
            runtime = TestRuntime(strategy, config)
            runtime.run(case.build())
            out.append(hashlib.sha256(runtime.trace.to_json().encode()).hexdigest())
        return out

    assert digests("dpor-lite") == digests("dfs")


# ---------------------------------------------------------------------------
# table plumbing
# ---------------------------------------------------------------------------
def test_unsupported_table_version_disables_pruning():
    strategy = DporLiteStrategy(independence={"version": 99, "machines": {}})
    assert strategy._table is None
    strategy = DporLiteStrategy(independence=None)
    assert strategy._table is None
    strategy = DporLiteStrategy(independence={"version": 1, "machines": {}})
    assert strategy._table == {}


def test_from_config_reads_the_independence_field():
    config = TestingConfig(
        strategy="dpor-lite", independence={"version": 1, "machines": {}}
    )
    strategy = create_strategy(config)
    assert isinstance(strategy, DporLiteStrategy)
    assert strategy._table == {}


# ---------------------------------------------------------------------------
# the conflict predicate
# ---------------------------------------------------------------------------
def _touch(writes=(), reads=(), inst_classes=(), classes=(), monitors=(), creates=False):
    return _Touch(
        writes=frozenset(writes),
        reads=frozenset(reads),
        inst_classes=frozenset(inst_classes),
        classes=frozenset(classes),
        monitors=frozenset(monitors),
        creates=creates,
    )


def test_disjoint_footprints_commute():
    a = _touch(writes={1}, inst_classes={"m.A"})
    b = _touch(writes={2}, inst_classes={"m.B"})
    assert _independent(a, b) and _independent(b, a)


def test_shared_write_is_a_conflict():
    a = _touch(writes={1, 3})
    b = _touch(writes={3})
    assert not _independent(a, b)


def test_read_read_overlap_commutes():
    # only sends (writes) change an inbox; two queries cannot observe each
    # other — this is the precision the v2 field-level table buys
    a = _touch(writes={1}, reads={3})
    b = _touch(writes={2}, reads={3})
    assert _independent(a, b) and _independent(b, a)


def test_write_against_read_is_a_conflict_both_ways():
    writer = _touch(writes={3})
    reader = _touch(writes={1}, reads={3})
    assert not _independent(writer, reader)
    assert not _independent(reader, writer)


def test_shared_monitor_is_a_conflict():
    a = _touch(writes={1}, monitors={"m.Mon"})
    b = _touch(writes={2}, monitors={"m.Mon"})
    assert not _independent(a, b)


def test_two_creators_conflict_on_id_allocation_order():
    a = _touch(writes={1}, creates=True)
    b = _touch(writes={2}, creates=True)
    assert not _independent(a, b)
    # a single creator commutes with a non-creator it does not touch
    assert _independent(a, _touch(writes={2}))


def test_fresh_class_conflicts_with_instances_of_the_same_class():
    a = _touch(writes={1}, classes={"m.B"})
    b = _touch(writes={2}, inst_classes={"m.B"})
    assert not _independent(a, b)
    assert not _independent(b, a)
    assert _independent(a, _touch(writes={2}, inst_classes={"m.C"}))
