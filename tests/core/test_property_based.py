"""Property-based tests (hypothesis) for core invariants."""

import pytest
from hypothesis import assume, given, settings, strategies as st

from repro.core import (
    Event,
    Machine,
    ScheduleTrace,
    TestingConfig,
    TestingEngine,
    get_scenario,
    on_event,
)
from repro.core.strategy.pct_strategy import PCTStrategy
from repro.core.strategy.random_strategy import RandomStrategy
from repro.core.ids import MachineId


class Work(Event):
    def __init__(self, remaining):
        self.remaining = remaining


class Worker(Machine):
    @on_event(Work)
    def work(self, event):
        if event.remaining > 0:
            self.send(self.id, Work(event.remaining - 1))


def chain_test(runtime):
    worker = runtime.create_machine(Worker)
    runtime.send_event(worker, Work(5))


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_same_seed_same_trace(seed):
    """Determinism: identical configuration => identical first-execution trace."""
    def run_once():
        engine = TestingEngine(
            chain_test, TestingConfig(iterations=1, max_steps=100, seed=seed)
        )
        engine.strategy.prepare_iteration(0)
        from repro.core import TestRuntime

        runtime = TestRuntime(engine.strategy, engine.config)
        runtime.run(chain_test)
        return [ (s.kind, s.value) for s in runtime.trace ]

    assert run_once() == run_once()


@settings(max_examples=30, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=1000),
    num_machines=st.integers(min_value=1, max_value=8),
    steps=st.integers(min_value=1, max_value=50),
)
def test_random_strategy_always_picks_enabled_machine(seed, num_machines, steps):
    strategy = RandomStrategy(seed)
    strategy.prepare_iteration(0)
    enabled = [MachineId(i, f"M{i}") for i in range(num_machines)]
    for step in range(steps):
        assert strategy.next_machine(enabled, step) in enabled


@settings(max_examples=30, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=1000),
    num_machines=st.integers(min_value=1, max_value=8),
    switches=st.integers(min_value=0, max_value=5),
)
def test_pct_strategy_always_picks_enabled_machine(seed, num_machines, switches):
    strategy = PCTStrategy(seed, priority_switches=switches, expected_length=50)
    strategy.prepare_iteration(0)
    enabled = [MachineId(i, f"M{i}") for i in range(num_machines)]
    for step in range(50):
        assert strategy.next_machine(enabled, step) in enabled


@settings(max_examples=25, deadline=None)
@given(
    bools=st.lists(st.booleans(), max_size=10),
    ints=st.lists(st.integers(min_value=0, max_value=100), max_size=10),
)
def test_trace_json_roundtrip(bools, ints):
    trace = ScheduleTrace()
    for value in bools:
        trace.add_boolean_choice(value, "m")
    for value in ints:
        trace.add_integer_choice(value, "m")
    assert ScheduleTrace.from_json(trace.to_json()).steps == trace.steps


# ---------------------------------------------------------------------------
# shrinking invariants
# ---------------------------------------------------------------------------
@settings(max_examples=8, deadline=None)
@given(seed=st.integers(min_value=0, max_value=200))
def test_shrunk_trace_replays_same_bug_and_is_never_longer(seed):
    """For randomly found examplesys bugs: same bug class, never longer."""
    testcase = get_scenario("examplesys/safety-bug")
    config = testcase.default_config(
        seed=seed, strategy="random", iterations=60, shrink_max_replays=120
    )
    engine = TestingEngine(testcase.build(), config)
    report = engine.run()
    assume(report.bug_found)
    bug = report.first_bug
    result = engine.shrink_bug(bug)
    assert len(result.trace.steps) <= len(bug.trace.steps)
    assert result.bug.kind == bug.kind
    # the shrunk trace is exact: strict replay reproduces the same bug class
    replayed = engine.replay(result.trace)
    assert replayed is not None
    assert replayed.kind == bug.kind


@pytest.mark.parametrize(
    "scenario_name, strategy, seed, iterations",
    [
        ("examplesys/safety-bug", "random", 0, 100),
        ("vnext/extent-node-liveness", "pct", 0, 40),
    ],
)
def test_shrunk_scenario_bugs_keep_their_bug_class(scenario_name, strategy, seed, iterations):
    """Seeded runs across the examplesys and vnext case studies."""
    testcase = get_scenario(scenario_name)
    config = testcase.default_config(
        seed=seed, strategy=strategy, iterations=iterations, shrink_max_replays=40
    )
    engine = TestingEngine(testcase.build(), config)
    report = engine.run()
    assert report.bug_found
    bug = report.first_bug
    result = engine.shrink_bug(bug)
    assert len(result.trace.steps) <= len(bug.trace.steps)
    assert result.bug.kind == bug.kind == testcase.expected_bug_kind
    replayed = engine.replay(result.trace)
    assert replayed is not None and replayed.kind == bug.kind
