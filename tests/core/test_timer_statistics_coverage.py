"""Tests for the modeled timer, harness statistics and coverage tracking."""

from repro.core import (
    CoverageTracker,
    Machine,
    StopTimer,
    TestingConfig,
    TimerMachine,
    TimerTick,
    on_event,
    run_test,
)
from repro.core.statistics import (
    HarnessDescription,
    count_action_handlers,
    count_source_lines,
    count_state_transitions,
)


class TickCounter(Machine):
    def on_start(self, bounded):
        self.ticks = 0
        self.timer = self.create(
            TimerMachine, self.id, timer_name="t", max_ticks=10 if bounded else None
        )

    @on_event(TimerTick)
    def count(self, event):
        self.ticks += 1
        if self.ticks >= 3:
            self.send(self.timer, StopTimer())


def test_bounded_timer_terminates_and_delivers_ticks():
    report = run_test(
        lambda rt: rt.create_machine(TickCounter, True),
        TestingConfig(iterations=5, max_steps=200, seed=2),
    )
    assert not report.bug_found


def test_timer_never_floods_target():
    """At most one outstanding tick per timer sits in the target's inbox."""
    from repro.core import RoundRobinStrategy, TestRuntime

    strategy = RoundRobinStrategy()
    strategy.prepare_iteration(0)
    runtime = TestRuntime(strategy, TestingConfig(iterations=1, max_steps=100))
    runtime.run(lambda rt: rt.create_machine(TickCounter, False))
    counter = runtime.machines_of_type(TickCounter)[0]
    pending = runtime.count_pending_events(counter.id, TimerTick)
    assert pending <= 1


def test_count_source_lines_ignores_comments():
    import repro.core.ids as ids_module

    loc = count_source_lines([ids_module])
    assert 0 < loc < 100


def test_statistics_from_machine_classes():
    from repro.examplesys.harness.machines import ServerMachine, StorageNodeMachine
    from repro.examplesys.harness.monitors import AckLivenessMonitor

    classes = [ServerMachine, StorageNodeMachine, AckLivenessMonitor]
    assert count_action_handlers(classes) > 0
    assert count_state_transitions(classes) > 0


def test_harness_description_compute():
    import repro.examplesys.server as server_module
    from repro.examplesys.harness.machines import ServerMachine

    stats = HarnessDescription(
        name="example",
        system_modules=[server_module],
        harness_modules=[server_module],
        machine_classes=[ServerMachine],
        bugs_found=2,
    ).compute()
    assert stats.system_loc > 0
    assert stats.num_machines == 1
    assert stats.as_row()["bugs"] == 2


def test_coverage_tracker_merge_and_summary():
    a = CoverageTracker()
    a.record_machine("M")
    a.record_event("E")
    a.record_handled("M", "s", "E")
    a.record_transition("M", "s", "t")
    a.record_monitor_state("Mon", "hot")
    b = CoverageTracker()
    b.record_machine("M")
    b.record_transition("M", "t", "s")
    a.merge(b)
    summary = a.summary()
    assert summary["machines_created"] == 2
    assert summary["transitions"] == 2
    assert a.distinct_handled_tuples == 1
