"""Stateful search: fingerprint dedupe prunes DFS without losing bugs."""

from repro.analysis import independence_for_classes
from repro.analysis.extract import discover_classes
from repro.core import DFSStrategy, TestingConfig, TestingEngine
from repro.core.strategy import DporLiteStrategy, create_strategy
from repro.vnext.harness.scenarios import build_failover_test

MAX_STEPS = 5


def _exhaust(strategy_name, stateful=False, independence=None, max_steps=MAX_STEPS):
    config = TestingConfig(
        iterations=1_000_000,
        max_steps=max_steps,
        stop_at_first_bug=False,
        max_bugs=None,
        max_log_records=16,
        strategy=strategy_name,
        stateful=stateful,
        independence=independence,
    )
    engine = TestingEngine(build_failover_test(fixed=False, num_nodes=1), config)
    report = engine.run()
    assert report.state_space_exhausted
    return report, engine.strategy


def test_stateful_dfs_explores_fewer_schedules_same_bugs():
    plain, _ = _exhaust("dfs")
    pruned, strategy = _exhaust("dfs", stateful=True)
    assert pruned.iterations_executed < plain.iterations_executed
    assert {b.kind for b in pruned.bugs} == {b.kind for b in plain.bugs}
    assert strategy.pruned_schedules > 0


def test_stateful_dfs_composes_with_dpor_lite():
    table = independence_for_classes(
        discover_classes(lambda: build_failover_test(fixed=False, num_nodes=1))
    )
    # depth 6: deep enough that dedupe prunes beyond what sleep sets catch
    sleep_only, _ = _exhaust("dpor-lite", independence=table, max_steps=6)
    composed, _ = _exhaust("dpor-lite", stateful=True, independence=table, max_steps=6)
    assert composed.iterations_executed < sleep_only.iterations_executed
    assert {b.kind for b in composed.bugs} == {b.kind for b in sleep_only.bugs}


def test_stateful_off_by_default_and_identical_to_plain_dfs():
    plain, plain_strategy = _exhaust("dfs")
    assert not plain_strategy.wants_fingerprints
    assert plain_strategy.pruned_schedules == 0
    off, _ = _exhaust("dfs", stateful=False)
    assert off.iterations_executed == plain.iterations_executed


def test_stateful_search_is_deterministic():
    a, _ = _exhaust("dfs", stateful=True)
    b, _ = _exhaust("dfs", stateful=True)
    assert a.iterations_executed == b.iterations_executed
    assert sorted(fp for fp in a.coverage.fingerprints) == sorted(
        fp for fp in b.coverage.fingerprints
    )


def test_from_config_threads_stateful_flag():
    config = TestingConfig(strategy="dfs", stateful=True)
    strategy = create_strategy(config)
    assert isinstance(strategy, DFSStrategy)
    assert strategy.wants_fingerprints

    config = TestingConfig(strategy="dpor-lite", stateful=True)
    strategy = create_strategy(config)
    assert isinstance(strategy, DporLiteStrategy)
    assert strategy.wants_fingerprints

    extra = TestingConfig(strategy="dfs", extra={"dfs": {"stateful": True}})
    assert create_strategy(extra).wants_fingerprints
