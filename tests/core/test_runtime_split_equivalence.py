"""Kernel/controller split: byte-identical ScheduleTrace JSON vs. pre-split.

The layered-runtime refactor (shared :class:`RuntimeKernel` + the serialized
:class:`TestRuntime` controller) must be invisible to testing mode.  In the
same spirit as ``tests/examplesys/test_dsl_compat.py``, the seeded
examplesys scenarios are explored under every built-in strategy and each
execution's full trace JSON (schedules, controlled choices, per-step states,
materialized logs of buggy executions) is compared byte-for-byte — via
SHA-256 digests recorded from the *pre-split* monolithic runtime — together
with the bug verdicts.  A second sweep cross-checks the post-split runtime
against :class:`~repro.core._baseline.BaselineRuntime` (the seed reference,
which predates per-step state recording, hence the steps/log comparison).
"""

import hashlib
import json
import os

import pytest

from repro.core import TestRuntime
from repro.core._baseline import BaselineRuntime
from repro.core.registry import get_scenario
from repro.core.strategy import create_strategy

ALL_STRATEGIES = ["random", "pct", "round-robin", "dfs"]
SCENARIOS = ["examplesys/safety-bug", "examplesys/fixed"]

#: SHA-256 digests of every trace JSON the pre-split runtime produced for
#: the sweep below, generated at the refactor boundary (commit before the
#: runtime package split) with the identical seeds/configs.
_GOLDENS_PATH = os.path.join(os.path.dirname(__file__), "data", "runtime_split_goldens.json")


def _explore(runtime_cls, scenario_name, strategy_name, iterations=5):
    testcase = get_scenario(scenario_name)
    config = testcase.default_config(
        strategy=strategy_name, seed=29, iterations=iterations,
        max_steps=300, stop_at_first_bug=False, max_bugs=3,
    )
    strategy = create_strategy(config)
    traces, bugs, logs = [], [], []
    for iteration in range(iterations):
        strategy.prepare_iteration(iteration)
        if strategy.exhausted:
            break
        runtime = runtime_cls(strategy, config)
        bug = runtime.run(testcase.build())
        traces.append(runtime.trace)
        bugs.append(None if bug is None else [bug.kind, bug.message, bug.step])
        logs.append(runtime.execution_log)
    return traces, bugs, logs


@pytest.mark.parametrize("strategy_name", ALL_STRATEGIES)
@pytest.mark.parametrize("scenario_name", SCENARIOS)
def test_trace_json_byte_identical_to_pre_split_runtime(scenario_name, strategy_name):
    with open(_GOLDENS_PATH) as handle:
        goldens = json.load(handle)[f"{scenario_name}|{strategy_name}"]
    traces, bugs, _ = _explore(TestRuntime, scenario_name, strategy_name)
    digests = [
        hashlib.sha256(trace.to_json().encode()).hexdigest() for trace in traces
    ]
    assert digests == goldens["trace_sha256"], (
        "post-split trace JSON diverged from the pre-split runtime's output"
    )
    assert bugs == goldens["bugs"]


@pytest.mark.parametrize("strategy_name", ALL_STRATEGIES)
@pytest.mark.parametrize("scenario_name", SCENARIOS)
def test_split_runtime_matches_seed_reference(scenario_name, strategy_name):
    new_traces, new_bugs, new_logs = _explore(TestRuntime, scenario_name, strategy_name)
    seed_traces, seed_bugs, seed_logs = _explore(BaselineRuntime, scenario_name, strategy_name)
    assert [list(t.steps) for t in new_traces] == [list(t.steps) for t in seed_traces]
    assert new_bugs == seed_bugs
    assert new_logs == seed_logs
