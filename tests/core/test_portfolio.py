"""Tests for report serialization and the parallel portfolio engine."""

import random

import pytest

from repro.core import (
    Portfolio,
    PortfolioReport,
    TestReport,
    TestingConfig,
    merge_results,
    replay_trace,
    run_scenario,
)


def _timing_free(payload):
    """Strip run metadata (wall clock, pool size) so that two runs of the
    same seeds compare equal on results alone."""
    if isinstance(payload, dict):
        return {
            key: _timing_free(value)
            for key, value in payload.items()
            if key not in ("elapsed_seconds", "time_to_first_bug", "num_workers")
        }
    if isinstance(payload, list):
        return [_timing_free(entry) for entry in payload]
    return payload


# ---------------------------------------------------------------------------
# TestReport JSON round-trip
# ---------------------------------------------------------------------------
def test_report_json_round_trip_equals_original():
    report = run_scenario(
        "examplesys/safety-bug", TestingConfig(iterations=150, max_steps=600, seed=7)
    )
    assert report.bug_found
    restored = TestReport.from_json(report.to_json())
    assert restored == report
    assert restored.first_bug.trace.steps == report.first_bug.trace.steps
    assert restored.coverage.summary() == report.coverage.summary()


def test_report_round_trip_without_bug():
    report = run_scenario(
        "examplesys/fixed", TestingConfig(iterations=5, max_steps=200, seed=1)
    )
    assert not report.bug_found
    assert TestReport.from_dict(report.to_dict()) == report


# ---------------------------------------------------------------------------
# portfolio
# ---------------------------------------------------------------------------
def test_portfolio_job_enumeration_is_deterministic():
    portfolio = Portfolio(
        "examplesys/safety-bug", strategies=["random", "pct"], iterations=100,
        num_shards=4, seed=3,
    )
    jobs = portfolio.jobs()
    assert [job.index for job in jobs] == list(range(8))
    assert [job.strategy for job in jobs] == ["random"] * 4 + ["pct"] * 4
    assert [job.seed for job in jobs] == [3, 4, 5, 6] * 2
    # The shard budgets sum to the requested total for each strategy.
    assert sum(job.config.iterations for job in jobs if job.strategy == "random") == 100
    assert portfolio.jobs() == jobs


def test_portfolio_merge_is_deterministic_for_fixed_seeds():
    def run_once(workers):
        return Portfolio(
            "examplesys/safety-bug",
            strategies=["random", "pct"],
            iterations=120,
            num_shards=2,
            num_workers=workers,
            seed=7,
        ).run()

    serial = run_once(1)
    parallel = run_once(2)
    assert serial.bug_found and parallel.bug_found
    # Same seeds => identical merged results, no matter how many workers ran
    # them or in which order they finished (only wall times may differ).
    assert _timing_free(serial.to_dict()) == _timing_free(parallel.to_dict())
    assert serial.winning_result.job.index == parallel.winning_result.job.index


def test_merge_results_orders_by_job_index_regardless_of_arrival():
    portfolio = Portfolio(
        "examplesys/safety-bug", strategies=["random"], iterations=20, num_shards=3, seed=1
    )
    jobs = portfolio.jobs()
    reports = [
        TestReport(strategy=job.strategy, iterations_requested=job.config.iterations)
        for job in jobs
    ]
    shuffled = list(zip(jobs, reports))
    random.Random(0).shuffle(shuffled)
    merged = merge_results([job for job, _ in shuffled], [rep for _, rep in shuffled])
    assert [result.job.index for result in merged] == [0, 1, 2]


def test_merge_results_length_mismatch_raises():
    portfolio = Portfolio("examplesys/safety-bug", strategies=["random"], iterations=10)
    jobs = portfolio.jobs()
    with pytest.raises(ValueError, match="reports"):
        merge_results(jobs, [])


def test_portfolio_report_json_round_trip_and_replay():
    report = Portfolio(
        "examplesys/safety-bug",
        strategies=["random", "pct"],
        iterations=150,
        num_workers=2,
        seed=7,
    ).run()
    assert report.bug_found
    restored = PortfolioReport.from_json(report.to_json())
    assert restored.to_dict() == report.to_dict()
    # The serialized trace replays deterministically against the scenario,
    # reconstructed by name as a fresh process would.
    bug = restored.first_bug
    winner = restored.winning_result
    replayed = replay_trace(restored.scenario, bug.trace, winner.job.config)
    assert replayed is not None
    assert replayed.kind == bug.kind
    assert replayed.message == bug.message


def test_portfolio_rejects_empty_strategy_list():
    with pytest.raises(ValueError, match="at least one strategy"):
        Portfolio("examplesys/safety-bug", strategies=[])


def test_portfolio_budget_smaller_than_shard_count():
    # iterations < num_shards must not produce zero-iteration jobs or
    # overspend; surplus shards are dropped.
    portfolio = Portfolio(
        "examplesys/safety-bug", strategies=["random"], iterations=3, num_shards=4
    )
    jobs = portfolio.jobs()
    assert len(jobs) == 3
    assert all(job.config.iterations == 1 for job in jobs)
    assert sum(job.config.iterations for job in jobs) == 3


def test_portfolio_budget_splits_remainder_across_shards():
    jobs = Portfolio(
        "examplesys/safety-bug", strategies=["random"], iterations=10, num_shards=3
    ).jobs()
    assert [job.config.iterations for job in jobs] == [4, 3, 3]


def test_run_scenario_rejects_config_plus_overrides():
    with pytest.raises(ValueError, match="not both"):
        run_scenario("examplesys/fixed", TestingConfig(iterations=1), seed=5)


# ---------------------------------------------------------------------------
# stop_on_first_bug (early cancellation)
# ---------------------------------------------------------------------------
def test_serial_stop_on_first_bug_cancels_later_jobs_in_index_order():
    portfolio = Portfolio(
        "examplesys/safety-bug",
        strategies=["random", "pct"],
        iterations=400,
        num_shards=2,
        seed=3,
        stop_on_first_bug=True,
    )
    report = portfolio.run()
    assert report.bug_found
    winner = report.winning_result
    assert winner is not None
    assert winner.report.bug_found
    # serial execution walks jobs in index order: everything before the
    # winner ran bug-free to completion, everything after was cancelled
    for result in report.results:
        if result.job.index < winner.job.index:
            assert result.report.iterations_executed >= 1
            assert not result.report.bug_found
        elif result.job.index > winner.job.index:
            assert result.report.iterations_executed == 0
            assert result.report.iterations_requested == result.job.config.iterations
    # job numbering is intact despite the cancellations
    assert [result.job.index for result in report.results] == list(range(4))


def test_pool_stop_on_first_bug_terminates_remaining_jobs():
    portfolio = Portfolio(
        "examplesys/safety-bug",
        strategies=["random"],
        iterations=800,
        num_shards=4,
        num_workers=2,
        seed=3,
        stop_on_first_bug=True,
    )
    report = portfolio.run()
    assert report.bug_found
    # every job appears exactly once, in index order, completed or cancelled
    assert [result.job.index for result in report.results] == list(range(4))
    # the winner is a job that actually completed, never a placeholder
    assert report.winning_result.report.iterations_executed >= 1
    cancelled = [r for r in report.results if r.report.iterations_executed == 0]
    for result in cancelled:
        assert not result.report.bug_found


def test_stop_on_first_bug_defaults_off_and_runs_everything():
    portfolio = Portfolio(
        "examplesys/safety-bug",
        strategies=["random"],
        iterations=40,
        num_shards=2,
        seed=3,
    )
    report = portfolio.run()
    assert all(result.report.iterations_executed >= 1 for result in report.results)
