"""Regression tests for strict vs. tolerant (guided) trace replay.

Strict mode must fail loudly — a clear :class:`FrameworkError` subclass —
on divergent, truncated or corrupted traces; tolerant mode must complete the
execution with a deterministic default fallback instead.
"""

import pytest

from repro.core import (
    Event,
    FrameworkError,
    Machine,
    ReplayDivergenceError,
    ReplayStrategy,
    ScheduleTrace,
    TestRuntime,
    TestingConfig,
    TestingEngine,
    TraceStep,
    on_event,
)
from repro.core.ids import MachineId
from repro.core.trace import BOOLEAN, INTEGER, SCHEDULE


class Ping(Event):
    pass


class Pong(Machine):
    @on_event(Ping)
    def ping(self, event):
        if self.random():
            self.send(self.id, Ping())


def pong_test(runtime):
    target = runtime.create_machine(Pong)
    runtime.send_event(target, Ping())


def recorded_bugfree_trace(seed=3):
    engine = TestingEngine(pong_test, TestingConfig(iterations=1, max_steps=50, seed=seed))
    engine.strategy.prepare_iteration(0)
    runtime = TestRuntime(engine.strategy, engine.config)
    assert runtime.run(pong_test) is None
    return runtime.trace


def run_with(strategy, config=None):
    strategy.prepare_iteration(0)
    runtime = TestRuntime(strategy, config or TestingConfig(max_steps=50))
    runtime.run(pong_test)
    return runtime


# ---------------------------------------------------------------------------
# strict mode: clear framework errors
# ---------------------------------------------------------------------------
def test_strict_replay_of_truncated_trace_raises_framework_error():
    trace = recorded_bugfree_trace()
    truncated = ScheduleTrace(steps=trace.steps[: len(trace.steps) // 2])
    with pytest.raises(ReplayDivergenceError) as excinfo:
        run_with(ReplayStrategy(truncated))
    assert isinstance(excinfo.value, FrameworkError)
    assert "trace exhausted" in str(excinfo.value)


def test_strict_replay_of_corrupted_kind_names_the_step():
    trace = recorded_bugfree_trace()
    # swap the first schedule step for a boolean: a kind mismatch at step 0
    corrupted = ScheduleTrace(steps=[TraceStep(BOOLEAN, 1, "M(0)")] + trace.steps[1:])
    with pytest.raises(ReplayDivergenceError) as excinfo:
        run_with(ReplayStrategy(corrupted))
    assert "step 0" in str(excinfo.value)
    assert "'bool'" in str(excinfo.value)


def test_strict_replay_of_unknown_machine_raises():
    trace = recorded_bugfree_trace()
    corrupted = ScheduleTrace(steps=[TraceStep(SCHEDULE, 999, "Ghost(999)")] + trace.steps[1:])
    with pytest.raises(ReplayDivergenceError) as excinfo:
        run_with(ReplayStrategy(corrupted))
    assert "not enabled" in str(excinfo.value)


def test_strict_replay_of_out_of_range_integer_raises():
    strategy = ReplayStrategy(ScheduleTrace(steps=[TraceStep(INTEGER, 7, "M(0)")]))
    strategy.prepare_iteration(0)
    with pytest.raises(ReplayDivergenceError):
        strategy.next_integer(MachineId(0, "M"), max_value=3, step=0)


# ---------------------------------------------------------------------------
# tolerant mode: deterministic fallback
# ---------------------------------------------------------------------------
def test_tolerant_replay_of_truncated_trace_completes_deterministically():
    trace = recorded_bugfree_trace()
    truncated = ScheduleTrace(steps=trace.steps[: len(trace.steps) // 2])

    first = run_with(ReplayStrategy(truncated, tolerant=True))
    second = run_with(ReplayStrategy(truncated, tolerant=True))
    assert first.trace.steps == second.trace.steps
    assert first.bug is None


def test_tolerant_replay_marks_divergence_once():
    trace = recorded_bugfree_trace()
    truncated = ScheduleTrace(steps=trace.steps[:1])
    strategy = ReplayStrategy(truncated, tolerant=True)
    run_with(strategy)
    assert strategy.diverged
    assert strategy.divergence_step is not None
    assert strategy.fallback_picks >= 1
    assert strategy.steps_followed == 1


def test_tolerant_replay_of_empty_trace_is_pure_default_schedule():
    strategy = ReplayStrategy(ScheduleTrace(), tolerant=True)
    runtime = run_with(strategy)
    assert strategy.diverged
    assert strategy.divergence_step == 0
    # default picks: lowest-id machine, False booleans — so the recorded
    # execution of a second empty-trace replay is byte-identical
    again = run_with(ReplayStrategy(ScheduleTrace(), tolerant=True))
    assert runtime.trace.steps == again.trace.steps


def test_tolerant_replay_of_corrupted_trace_does_not_crash():
    trace = recorded_bugfree_trace()
    corrupted = ScheduleTrace(
        steps=[TraceStep(INTEGER, 3, "M(0)")] + trace.steps[1:]
    )
    strategy = ReplayStrategy(corrupted, tolerant=True)
    runtime = run_with(strategy)
    assert strategy.diverged
    assert runtime.trace.steps  # the run completed and recorded an execution


def test_tolerant_replay_resynchronizes_after_local_divergence():
    """Steps after an infeasible pick keep guiding the execution."""
    trace = recorded_bugfree_trace()
    # Prepend a bogus schedule step: tolerant replay must fall back once,
    # then follow the original trace again.
    padded = ScheduleTrace(steps=[TraceStep(SCHEDULE, 999, "Ghost(999)")] + trace.steps)
    strategy = ReplayStrategy(padded, tolerant=True)
    run_with(strategy)
    assert strategy.diverged
    assert strategy.steps_followed > 1


def test_tolerant_full_trace_replay_matches_strict():
    trace = recorded_bugfree_trace()
    strict = run_with(ReplayStrategy(trace))
    tolerant_strategy = ReplayStrategy(trace, tolerant=True)
    tolerant = run_with(tolerant_strategy)
    assert strict.trace.steps == tolerant.trace.steps
    assert not tolerant_strategy.diverged


# ---------------------------------------------------------------------------
# trace deserialization validation
# ---------------------------------------------------------------------------
def test_from_json_rejects_unknown_kind_with_step_index():
    trace = ScheduleTrace(
        steps=[TraceStep(SCHEDULE, 0, "M(0)"), TraceStep("bogus", 1, "M(0)")]
    )
    text = trace.to_json()
    with pytest.raises(ValueError) as excinfo:
        ScheduleTrace.from_json(text)
    assert "step 1" in str(excinfo.value)
    assert "bogus" in str(excinfo.value)


def test_from_json_accepts_all_valid_kinds():
    trace = ScheduleTrace()
    trace.add_scheduling_choice(0, "M(0)")
    trace.add_boolean_choice(True, "M(0)")
    trace.add_integer_choice(2, "M(0)")
    assert ScheduleTrace.from_json(trace.to_json()).steps == trace.steps
