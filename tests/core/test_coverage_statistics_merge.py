"""Merge/aggregation paths of coverage tracking and harness statistics.

The portfolio engine merges per-worker reports; these tests pin down the
coverage-map merge semantics (empty, disjoint, overlapping) and the
aggregation of statistics across jobs that previously only had smoke
coverage.
"""

from repro.core import (
    CoverageTracker,
    Portfolio,
    aggregate_statistics,
)
from repro.core.statistics import HarnessStatistics


def make_tracker(machines=(), events=(), handled=(), transitions=(), monitor_states=()):
    tracker = CoverageTracker()
    for name in machines:
        tracker.record_machine(name)
    for name in events:
        tracker.record_event(name)
    for triple in handled:
        tracker.record_handled(*triple)
    for triple in transitions:
        tracker.record_transition(*triple)
    for pair in monitor_states:
        tracker.record_monitor_state(*pair)
    return tracker


# ---------------------------------------------------------------------------
# CoverageTracker.merge
# ---------------------------------------------------------------------------
def test_merge_empty_into_empty():
    a = CoverageTracker()
    a.merge(CoverageTracker())
    assert a.summary() == {
        "machine_types": 0,
        "machines_created": 0,
        "event_types": 0,
        "events_sent": 0,
        "handled_tuples": 0,
        "transitions": 0,
        "monitor_states": 0,
        "fingerprints": 0,
    }


def test_merge_empty_into_populated_is_identity():
    a = make_tracker(machines=["M", "M"], events=["E"], transitions=[("M", "s", "t")])
    before = a.to_dict()
    a.merge(CoverageTracker())
    assert a.to_dict() == before


def test_merge_disjoint_maps_unions_everything():
    a = make_tracker(
        machines=["A"], events=["EA"],
        handled=[("A", "s", "EA")], transitions=[("A", "s", "t")],
        monitor_states=[("MonA", "hot")],
    )
    b = make_tracker(
        machines=["B"], events=["EB"],
        handled=[("B", "s", "EB")], transitions=[("B", "s", "t")],
        monitor_states=[("MonB", "cold")],
    )
    a.merge(b)
    assert a.machines == {"A": 1, "B": 1}
    assert a.events == {"EA": 1, "EB": 1}
    assert a.distinct_handled_tuples == 2
    assert a.distinct_transitions == 2
    assert len(a.monitor_states) == 2


def test_merge_overlapping_maps_adds_counts_and_unions_sets():
    a = make_tracker(
        machines=["M", "M"], events=["E"],
        handled=[("M", "s", "E"), ("M", "s", "E")],
        transitions=[("M", "s", "t")],
    )
    b = make_tracker(
        machines=["M"], events=["E", "E"],
        handled=[("M", "s", "E")],
        transitions=[("M", "s", "t"), ("M", "t", "s")],
    )
    a.merge(b)
    assert a.machines["M"] == 3
    assert a.events["E"] == 3
    assert a.handled[("M", "s", "E")] == 3
    # transitions are a set: the shared edge is not double counted
    assert a.distinct_transitions == 2


def test_merge_roundtrips_through_json_safe_dict():
    a = make_tracker(machines=["M"], handled=[("M", "s", "E")],
                     transitions=[("M", "s", "t")], monitor_states=[("Mon", "hot")])
    b = make_tracker(machines=["M"], events=["E"])
    a.merge(b)
    restored = CoverageTracker.from_dict(a.to_dict())
    assert restored.to_dict() == a.to_dict()
    assert restored.summary() == a.summary()


# ---------------------------------------------------------------------------
# aggregation across portfolio workers
# ---------------------------------------------------------------------------
def test_portfolio_merged_coverage_aggregates_all_jobs():
    portfolio = Portfolio(
        "examplesys/safety-bug",
        strategies=["random", "round-robin"],
        iterations=20,
        num_shards=2,
        seed=3,
    )
    report = portfolio.run()
    merged = report.merged_coverage
    per_job_totals = [
        sum(result.report.coverage.machines.values()) for result in report.results
    ]
    assert sum(merged.machines.values()) == sum(per_job_totals)
    # every per-job transition shows up in the merged set
    for result in report.results:
        assert result.report.coverage.transitions <= merged.transitions
    # merging is idempotent on the report (a fresh tracker every call)
    assert report.merged_coverage.to_dict() == merged.to_dict()


def test_aggregate_statistics_sums_rows():
    rows = [
        HarnessStatistics(
            name="a", system_loc=100, harness_loc=50, num_machines=3,
            num_state_transitions=7, num_action_handlers=9, bugs_found=1,
        ),
        HarnessStatistics(
            name="b", system_loc=10, harness_loc=5, num_machines=1,
            num_state_transitions=2, num_action_handlers=4, bugs_found=0,
        ),
    ]
    total = aggregate_statistics(rows)
    assert total["system"] == "a+b"
    assert total["system_loc"] == 110
    assert total["harness_loc"] == 55
    assert total["machines"] == 4
    assert total["state_transitions"] == 9
    assert total["action_handlers"] == 13
    assert total["bugs"] == 1


def test_aggregate_statistics_of_single_row_matches_as_row():
    row = HarnessStatistics(
        name="solo", system_loc=1, harness_loc=2, num_machines=3,
        num_state_transitions=4, num_action_handlers=5, bugs_found=6,
    )
    assert aggregate_statistics([row]) == row.as_row()
