"""Tests for the concurrent :class:`ProductionRuntime`.

The contract under test is the kernel/controller split's payoff: the same
machine programs the testing controller explores run unmodified on real
concurrency — per-machine mailbox tasks, thread-safe external sends, locked
monitors, real randomness and wall-clock timers — with the same
specification checks (safety assertions, liveness-at-shutdown, deadlocks)
still enforced.
"""

import threading

import pytest

from repro.core import (
    Event,
    Machine,
    Monitor,
    ProductionRuntime,
    Receive,
    State,
    TestingConfig,
    TimerMachine,
    TimerTick,
    on_event,
    run_test,
)
from repro.core.errors import FrameworkError
from repro.examplesys.harness.service import (
    LoadClient,
    ServiceFrontEnd,
    build_service_test,
)


# ---------------------------------------------------------------------------
# soak: the examplesys service under concurrent load
# ---------------------------------------------------------------------------
def test_service_soak_concurrent_clients_clean():
    """8 concurrent clients drive the service with zero monitor violations."""
    runtime = ProductionRuntime(tick_interval=0.002)
    bug = runtime.run(build_service_test(num_clients=8, num_requests=40), timeout=120)
    assert bug is None, f"production soak found: {bug}"
    # Genuine concurrency: at least 8 machines dispatched events beyond
    # their StartEvent (host, front end, nodes and clients all trade real
    # traffic; a bare "dispatched anything" tally would be vacuous since
    # every machine dispatches its start).
    assert runtime.active_machine_count() >= 8
    clients = runtime.machines_of_type(LoadClient)
    assert len(clients) == 8
    assert all(len(client.acked) == 40 for client in clients)
    frontend = runtime.machines_of_type(ServiceFrontEnd)[0]
    assert frontend.completed == 8 * 40
    assert runtime.step_count > 8 * 40  # every request costs several dispatches


def test_same_service_harness_runs_under_the_testing_runtime():
    """The identical harness classes stay clean under systematic testing."""
    report = run_test(
        build_service_test(),
        TestingConfig(iterations=25, max_steps=3000, seed=11, strategy="random"),
    )
    assert report.bugs == []
    assert report.iterations_executed == 25


# ---------------------------------------------------------------------------
# thread-safe external sends
# ---------------------------------------------------------------------------
class _Work(Event):
    def __init__(self, value):
        self.value = value


class _Collector(Machine):
    def on_start(self):
        self.seen = []

    @on_event(_Work)
    def on_work(self, event):
        self.seen.append(event.value)


def test_post_event_is_thread_safe():
    ids = {}

    def entry(runtime):
        ids["collector"] = runtime.create_machine(_Collector, name="Collector")

    runtime = ProductionRuntime()
    runtime.start(entry)

    def pump(thread_index):
        for i in range(200):
            runtime.post_event(ids["collector"], _Work((thread_index, i)))

    threads = [threading.Thread(target=pump, args=(t,)) for t in range(4)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert runtime.join(timeout=30), "system should quiesce after the load drains"
    bug = runtime.shutdown()
    assert bug is None
    collector = runtime.machines_of_type(_Collector)[0]
    assert len(collector.seen) == 4 * 200
    # Per-thread FIFO ordering survives the hop onto the event loop.
    for t in range(4):
        per_thread = [i for (who, i) in collector.seen if who == t]
        assert per_thread == sorted(per_thread)


# ---------------------------------------------------------------------------
# specification checks still fire in production mode
# ---------------------------------------------------------------------------
class _Trigger(Event):
    pass


class _Asserter(Machine):
    @on_event(_Trigger)
    def boom(self):
        self.assert_that(False, "production assertion")


def test_safety_assertion_reported_as_bug():
    def entry(runtime):
        target = runtime.create_machine(_Asserter)
        runtime.send_event(target, _Trigger())

    bug = ProductionRuntime().run(entry, timeout=30)
    assert bug is not None
    assert bug.kind == "safety"
    assert "production assertion" in bug.message
    assert bug.log, "production bugs carry the materialized execution log"


class _BadEntryMonitor(Monitor):
    class Bad(State, initial=True):
        def on_entry(self):
            self.assert_that(False, "entry boom")


def test_bug_raised_by_entry_point_is_recorded_not_raised():
    """Same contract as TestRuntime.run: entry-time violations are bugs."""

    def entry(runtime):
        runtime.register_monitor(_BadEntryMonitor)

    bug = ProductionRuntime().run(entry, timeout=10)
    assert bug is not None
    assert bug.kind == "safety"
    assert "entry boom" in bug.message


class _NotifyPing(Event):
    pass


class _HotMonitor(Monitor):
    class Waiting(State, initial=True, hot=True):
        @on_event(_NotifyPing)
        def never(self):
            pass


class _IdleStarter(Machine):
    def on_start(self):
        pass


def test_hot_liveness_monitor_reported_at_shutdown():
    def entry(runtime):
        runtime.register_monitor(_HotMonitor)
        runtime.create_machine(_IdleStarter)

    bug = ProductionRuntime().run(entry, timeout=30)
    assert bug is not None
    assert bug.kind == "liveness"
    assert "_HotMonitor" in bug.message


class _NeverSent(Event):
    pass


class _ForeverBlocked(Machine):
    def on_start(self):
        yield Receive(_NeverSent)


def test_blocked_receive_reported_as_deadlock_at_quiescence():
    def entry(runtime):
        runtime.create_machine(_ForeverBlocked)

    bug = ProductionRuntime().run(entry, timeout=30)
    assert bug is not None
    assert bug.kind == "deadlock"
    assert "blocked in receive" in bug.message


class _Crasher(Machine):
    @on_event(_Trigger)
    def die(self):
        raise RuntimeError("handler exploded")


def test_unexpected_exception_reported_as_bug():
    def entry(runtime):
        target = runtime.create_machine(_Crasher)
        runtime.send_event(target, _Trigger())

    bug = ProductionRuntime().run(entry, timeout=30)
    assert bug is not None
    assert bug.kind == "exception"
    assert "handler exploded" in bug.message


# ---------------------------------------------------------------------------
# wall-clock timers
# ---------------------------------------------------------------------------
class _TickCounter(Machine):
    def on_start(self, max_ticks):
        self.ticks = 0
        self.timer = self.create(
            TimerMachine, self.id, always_fire=True, max_ticks=max_ticks
        )

    @on_event(TimerTick)
    def on_tick(self):
        self.ticks += 1


def test_wall_clock_timer_delivers_real_ticks_and_honors_max_ticks():
    def entry(runtime):
        runtime.create_machine(_TickCounter, 5)

    runtime = ProductionRuntime(tick_interval=0.001)
    bug = runtime.run(entry, timeout=30)
    assert bug is None
    counter = runtime.machines_of_type(_TickCounter)[0]
    # The timer task ends after max_ticks rounds, which is what lets the
    # system quiesce at all; at least one real tick must have landed and
    # the bound must hold.
    assert 1 <= counter.ticks <= 5


# ---------------------------------------------------------------------------
# lifecycle misuse
# ---------------------------------------------------------------------------
def test_create_machine_before_start_is_a_framework_error():
    with pytest.raises(FrameworkError, match="requires a started runtime"):
        ProductionRuntime().create_machine(_IdleStarter)


def test_shutdown_without_join_applies_bound_rules_not_quiescence():
    """Machines merely in flight at shutdown are not spurious deadlocks."""

    def entry(runtime):
        runtime.create_machine(_ForeverBlocked)

    runtime = ProductionRuntime()
    runtime.start(entry)
    bug = runtime.shutdown()  # no join: cut off at an arbitrary point
    assert runtime.termination_reason == "bound"
    assert bug is None, "a cut-off run must not be judged by quiescence rules"


def test_start_twice_is_a_framework_error():
    runtime = ProductionRuntime()
    runtime.start(lambda rt: rt.create_machine(_IdleStarter))
    try:
        with pytest.raises(FrameworkError, match="only be called once"):
            runtime.start(lambda rt: None)
    finally:
        runtime.join(timeout=10)
        assert runtime.shutdown() is None


def test_external_send_after_shutdown_is_a_framework_error():
    ids = {}

    def entry(runtime):
        ids["target"] = runtime.create_machine(_Collector, name="Collector")

    runtime = ProductionRuntime()
    runtime.start(entry)
    runtime.join(timeout=10)
    assert runtime.shutdown() is None
    # Both external-send entry points reject cleanly instead of touching the
    # closed event loop.
    with pytest.raises(FrameworkError, match="not-yet-shut-down"):
        runtime.post_event(ids["target"], _Work(1))
    with pytest.raises(FrameworkError, match="not-yet-shut-down"):
        runtime.send_event(ids["target"], _Work(2))


def test_production_runtime_exposes_no_schedule_trace():
    runtime = ProductionRuntime()
    assert not hasattr(runtime, "trace")
    assert not hasattr(runtime, "strategy")
