"""Prefix-partitioned parallel search: claims, stealing, fingerprint gossip.

The load-bearing properties:

* claim partitioning is *complete and disjoint* — driving the subtree claims
  of an exported frontier by hand enumerates exactly the schedules the
  serial search runs, each once;
* the parallel driver finds the same bug kinds and the same distinct-state
  fingerprint set as the serial search (the sets, not just the counts);
* the shared visited set composes across processes under the ``spawn``
  start method and is invariant under ``PYTHONHASHSEED``;
* ``num_workers=1`` is trace-for-trace the serial engine.
"""

import os
import subprocess
import sys

import pytest

from repro.core import (
    ParallelExplorer,
    ParallelReport,
    SubtreeClaim,
    TestingConfig,
    TestingEngine,
    explore_scenario,
    get_scenario,
    load_builtin_scenarios,
)
from repro.core.fingerprint import merge_visited
from repro.core.strategy.dfs_strategy import DFSStrategy

SCENARIO = "vnext/failover-1node"
#: shallow bound: big enough to need several claims, small enough for tests
MAX_STEPS = 5


def _config(**overrides) -> TestingConfig:
    base = dict(
        iterations=1_000_000,
        max_steps=MAX_STEPS,
        stop_at_first_bug=False,
        max_bugs=None,
        max_log_records=8,
        strategy="dfs",
    )
    base.update(overrides)
    return TestingConfig(**base)


def _testcase():
    load_builtin_scenarios()
    return get_scenario(SCENARIO)


def _schedule_digests(report) -> list:
    """One digest per recorded bug trace (used as an execution identity)."""
    return sorted(
        tuple((step.kind, step.value, step.label) for step in bug.trace.steps)
        for bug in report.bugs
        if bug.trace is not None
    )


# ---------------------------------------------------------------------------
# claim mechanics (no processes)
# ---------------------------------------------------------------------------
def test_claim_round_trip_and_ordering():
    claim = SubtreeClaim(((3, 1), (2, 0), (4, 2)))
    assert SubtreeClaim.from_dict(claim.to_dict()) == claim
    assert claim.indices == (1, 0, 2)
    assert claim.depth == 3
    # parent sorts before its own sub-claims, siblings sort left to right
    assert SubtreeClaim(((3, 1),)).indices < claim.indices
    assert claim.indices < SubtreeClaim(((3, 2),)).indices


def test_set_claim_rejects_started_search_and_bad_paths():
    strategy = DFSStrategy()
    with pytest.raises(ValueError):
        strategy.set_claim([(2, 5)])
    strategy = DFSStrategy()
    strategy.set_claim([(2, 1)])
    with pytest.raises(ValueError):
        strategy.set_claim([(2, 0)])


def test_manual_claim_partition_covers_serial_space_exactly():
    """Exhausting every claim of an exported frontier = the serial search.

    Runs the serial DFS to completion, then re-runs it as: explore a few
    schedules, export the frontier, exhaust each sub-claim independently
    (recursing on claims that re-split).  The multiset of executed schedules
    must match the serial run's exactly — proof the partition is complete
    and disjoint, independent of any multiprocessing machinery.
    """
    testcase = _testcase()
    config = _config()
    serial = TestingEngine(testcase.build(), config).run()
    assert serial.state_space_exhausted

    executed = []
    budget_config = _config(iterations=7)
    claims = [()]
    while claims:
        claim = claims.pop()
        engine = TestingEngine(testcase.build(), budget_config)
        outcome = engine.explore_claim(claim)
        executed.append(outcome.report)
        assert not outcome.covered  # stateless search never abandons
        claims.extend(outcome.frontier)

    total = sum(report.iterations_executed for report in executed)
    assert total == serial.iterations_executed
    serial_schedules = _schedule_digests(serial)
    claimed_schedules = sorted(
        digest for report in executed for digest in _schedule_digests(report)
    )
    assert claimed_schedules == serial_schedules


def test_covered_claim_is_abandoned():
    """A claim whose prefix state another search exhausted ends immediately."""
    testcase = _testcase()
    # Fully explore serially (stateful) to harvest a complete visited set.
    first = TestingEngine(testcase.build(), _config(stateful=True))
    outcome_full = first.explore_claim((), visited={})
    assert outcome_full.exhausted
    assert outcome_full.visited_delta  # post-order entries were recorded

    # Re-exploring any non-root claim with that visited set must hit a
    # covered state on the frozen prefix and abandon without fanning out.
    # Build a real claim path from a budget-limited search's frontier.
    scout = TestingEngine(testcase.build(), _config(stateful=True, iterations=2))
    scouted = scout.explore_claim((), visited={})
    assert scouted.frontier, "scout budget should not exhaust the space"
    claim = scouted.frontier[-1]

    worker = TestingEngine(testcase.build(), _config(stateful=True))
    outcome = worker.explore_claim(claim, visited=outcome_full.visited_delta)
    assert outcome.covered
    assert not outcome.frontier
    assert outcome.report.iterations_executed == 1  # one walk-out execution


def test_merge_visited_max_merges():
    target = {1: 3, 2: 5}
    assert merge_visited(target, {1: 4, 2: 2, 3: 1}) == 2
    assert target == {1: 4, 2: 5, 3: 1}
    assert merge_visited(target, {1: 4}) == 0


# ---------------------------------------------------------------------------
# parallel driver (processes)
# ---------------------------------------------------------------------------
def test_single_worker_is_trace_identical_to_serial():
    testcase = _testcase()
    config = _config(strategy="dpor-lite", stateful=True)
    serial = TestingEngine(testcase.build(), config).run()
    parallel = ParallelExplorer(
        testcase, strategy="dpor-lite", num_workers=1, config=config
    ).run()
    assert parallel.state_space_exhausted
    assert len(parallel.results) == 1
    report = parallel.results[0].report
    assert report.iterations_executed == serial.iterations_executed
    assert [bug.to_dict() for bug in report.bugs] == [bug.to_dict() for bug in serial.bugs]
    assert report.coverage.fingerprint_digest() == serial.coverage.fingerprint_digest()


@pytest.mark.parametrize("stateful", [False, True])
def test_parallel_matches_serial_space(stateful):
    testcase = _testcase()
    config = _config(stateful=stateful, fingerprints=True)
    serial = TestingEngine(testcase.build(), config).run()
    parallel = ParallelExplorer(
        testcase, strategy="dfs", num_workers=2, config=config, claim_iterations=9
    ).run()
    assert parallel.state_space_exhausted
    assert {bug.kind for bug in parallel.bugs} == {bug.kind for bug in serial.bugs}
    assert parallel.merged_coverage.fingerprints == serial.coverage.fingerprints
    if not stateful:
        # without dedupe the partition is exact: same schedules, each once
        assert parallel.total_iterations == serial.iterations_executed


def test_parallel_spawn_shares_fingerprints_across_processes():
    """spawn workers (fresh interpreters) still dedupe against each other and
    produce exactly the serial distinct-state set."""
    testcase = _testcase()
    config = _config(strategy="dpor-lite", stateful=True, fingerprints=True)
    serial = TestingEngine(testcase.build(), config).run()
    parallel = ParallelExplorer(
        SCENARIO,
        strategy="dpor-lite",
        num_workers=2,
        config=config,
        claim_iterations=9,
        start_method="spawn",
    ).run()
    assert parallel.state_space_exhausted
    assert parallel.merged_coverage.fingerprints == serial.coverage.fingerprints
    assert {bug.kind for bug in parallel.bugs} == {bug.kind for bug in serial.bugs}
    # gossip engaged: parallel redundancy stays within a small factor
    assert parallel.total_iterations <= 2 * serial.iterations_executed


def test_parallel_fingerprint_digest_invariant_under_hashseed():
    """The merged distinct-state set is a pure function of the program: a
    fresh interpreter with a different PYTHONHASHSEED, running the parallel
    search under spawn, reports the same digest."""
    testcase = _testcase()
    config = _config(strategy="dpor-lite", stateful=True, fingerprints=True)
    local = ParallelExplorer(
        testcase, strategy="dpor-lite", num_workers=2, config=config, claim_iterations=9
    ).run()
    digest = local.merged_coverage.fingerprint_digest()

    script = (
        "import sys; sys.path.insert(0, sys.argv[1])\n"
        "import tests.core.test_parallel as mod\n"
        "from repro.core import ParallelExplorer\n"
        "config = mod._config(strategy='dpor-lite', stateful=True, fingerprints=True)\n"
        "report = ParallelExplorer(mod.SCENARIO, strategy='dpor-lite', num_workers=2,\n"
        "                          config=config, claim_iterations=9,\n"
        "                          start_method='spawn').run()\n"
        "assert report.state_space_exhausted\n"
        "print(report.merged_coverage.fingerprint_digest())\n"
    )
    root = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = "424242"
    env["PYTHONPATH"] = os.path.join(root, "src")
    result = subprocess.run(
        [sys.executable, "-c", script, root],
        capture_output=True,
        text=True,
        env=env,
        check=True,
        timeout=600,
    )
    assert result.stdout.strip() == digest


def test_parallel_stop_on_first_bug_stops_early():
    testcase = _testcase()
    config = _config(strategy="dpor-lite", stateful=True)
    report = ParallelExplorer(
        testcase,
        strategy="dpor-lite",
        num_workers=2,
        config=config,
        claim_iterations=3,
        stop_on_first_bug=True,
    ).run()
    assert report.bug_found
    assert report.winning_result is not None
    # the space was NOT exhausted: claims were cancelled
    assert report.stopped_early
    assert not report.state_space_exhausted


def test_parallel_total_iteration_budget_caps_the_run():
    testcase = _testcase()
    report = ParallelExplorer(
        testcase,
        strategy="dfs",
        num_workers=2,
        config=_config(iterations=30),
        claim_iterations=5,
    ).run()
    # budget plus at most one in-flight claim per worker
    assert 30 <= report.total_iterations <= 30 + 2 * 5
    assert report.stopped_early
    assert not report.state_space_exhausted


def test_parallel_report_round_trip_and_stats():
    testcase = _testcase()
    config = _config(strategy="dpor-lite", stateful=True, fingerprints=True)
    report = ParallelExplorer(
        testcase, strategy="dpor-lite", num_workers=2, config=config, claim_iterations=9
    ).run()
    clone = ParallelReport.from_json(report.to_json())
    assert clone.scenario == report.scenario
    assert clone.state_space_exhausted == report.state_space_exhausted
    assert clone.total_iterations == report.total_iterations
    assert clone.merged_coverage.fingerprint_digest() == report.merged_coverage.fingerprint_digest()
    assert [r.claim for r in clone.results] == [r.claim for r in report.results]
    stats = report.worker_stats()
    assert sum(entry["claims"] for entry in stats) == len(report.results)
    assert sum(entry["executions"] for entry in stats) == report.total_iterations

    # the portfolio repackaging is replayable: job per claim, claim order
    portfolio = report.as_portfolio_report(config)
    assert portfolio.bug_found == report.bug_found
    assert [result.job.index for result in portfolio.results] == list(range(len(report.results)))
    assert portfolio.merged_coverage.fingerprints == report.merged_coverage.fingerprints


def test_parallel_rejects_non_exhaustive_strategies():
    testcase = _testcase()
    with pytest.raises(ValueError, match="subtree claims"):
        ParallelExplorer(testcase, strategy="random", num_workers=2)


def test_explore_scenario_convenience():
    load_builtin_scenarios()
    report = explore_scenario(
        SCENARIO, strategy="dfs", num_workers=1, config=_config()
    )
    assert report.state_space_exhausted
