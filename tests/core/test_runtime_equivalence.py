"""Regression tests for the hot-path runtime overhaul.

The overhaul (lazy structured logging, incremental enabled-set scheduling,
cached handler resolution) must be invisible to every consumer: traces,
found bugs and materialized logs have to match the seed implementation
bit for bit.  ``repro.core._baseline.BaselineRuntime`` pins down the seed
behavior, and these tests run both runtimes side by side.
"""

import pytest

from repro.core import FrameworkError, TestingConfig, TestRuntime
from repro.core._baseline import BaselineRuntime
from repro.core.ids import MachineId
from repro.core.machine import Machine
from repro.core.registry import get_scenario
from repro.core.strategy import create_strategy
from repro.core.strategy.base import SchedulingStrategy
from repro.core.declarations import on_event
from repro.core.events import Event


ALL_STRATEGIES = ["random", "pct", "round-robin", "dfs"]
SCENARIOS = ["examplesys/safety-bug", "examplesys/fixed"]


def _explore(runtime_cls, scenario_name, strategy_name, iterations=5):
    """Run ``iterations`` executions and collect traces/bugs/logs."""
    testcase = get_scenario(scenario_name)
    config = testcase.default_config(
        strategy=strategy_name, seed=11, iterations=iterations,
        max_steps=300, stop_at_first_bug=False, max_bugs=3,
    )
    strategy = create_strategy(config)
    traces, bugs, logs = [], [], []
    for iteration in range(iterations):
        strategy.prepare_iteration(iteration)
        if strategy.exhausted:
            break
        runtime = runtime_cls(strategy, config)
        bug = runtime.run(testcase.build())
        traces.append(list(runtime.trace.steps))
        bugs.append(None if bug is None else (bug.kind, bug.message, bug.step))
        logs.append(runtime.execution_log)
    return traces, bugs, logs


@pytest.mark.parametrize("strategy_name", ALL_STRATEGIES)
@pytest.mark.parametrize("scenario_name", SCENARIOS)
def test_traces_identical_to_seed_implementation(scenario_name, strategy_name):
    """Enabled-set bookkeeping yields byte-identical schedules for every strategy."""
    new_traces, new_bugs, new_logs = _explore(TestRuntime, scenario_name, strategy_name)
    old_traces, old_bugs, old_logs = _explore(BaselineRuntime, scenario_name, strategy_name)
    assert new_traces == old_traces
    assert new_bugs == old_bugs
    assert new_logs == old_logs


def test_replay_trace_identical_across_runtimes():
    """A bug trace recorded by the new runtime replays on the baseline too."""
    testcase = get_scenario("examplesys/safety-bug")
    config = testcase.default_config(strategy="random", seed=7, iterations=50)
    strategy = create_strategy(config)
    bug = None
    for iteration in range(config.iterations):
        strategy.prepare_iteration(iteration)
        runtime = TestRuntime(strategy, config)
        bug = runtime.run(testcase.build())
        if bug is not None:
            break
    assert bug is not None, "the safety-bug scenario should fail within 50 iterations"

    from repro.core.strategy.replay import ReplayStrategy

    for runtime_cls in (TestRuntime, BaselineRuntime):
        replay = ReplayStrategy(bug.trace)
        replay.prepare_iteration(0)
        replayed = runtime_cls(replay, config).run(testcase.build())
        assert replayed is not None
        assert (replayed.kind, replayed.message) == (bug.kind, bug.message)


# ---------------------------------------------------------------------------
# lazy-log semantics
# ---------------------------------------------------------------------------
class _ReprCounting(Event):
    calls = 0

    def __init__(self, payload):
        self.payload = payload

    def __repr__(self):
        type(self).calls += 1
        return f"_ReprCounting({self.payload})"


class _Echo(Machine):
    @on_event(_ReprCounting)
    def on_msg(self, event):
        pass


class _Sender(Machine):
    def on_start(self, peer):
        for index in range(5):
            self.send(peer, _ReprCounting(index))


def _entry(runtime):
    peer = runtime.create_machine(_Echo)
    runtime.create_machine(_Sender, peer)


def test_repr_never_runs_on_bug_free_fast_path():
    _ReprCounting.calls = 0
    config = TestingConfig(strategy="round-robin", seed=0, max_steps=100)
    strategy = create_strategy(config)
    strategy.prepare_iteration(0)
    runtime = TestRuntime(strategy, config)
    assert runtime.run(_entry) is None
    assert _ReprCounting.calls == 0, "repr() must not run when no bug is found"
    # Materializing on demand formats the deferred records.
    log = runtime.execution_log
    assert _ReprCounting.calls > 0
    assert any("_ReprCounting" in line for line in log)


def test_log_ring_buffer_is_bounded():
    config = TestingConfig(strategy="round-robin", seed=0, max_steps=100, max_log_records=4)
    strategy = create_strategy(config)
    strategy.prepare_iteration(0)
    runtime = TestRuntime(strategy, config)
    runtime.run(_entry)
    assert len(runtime.execution_log) == 4  # only the tail survives


def test_trace_log_populated_at_bug_record_time():
    testcase = get_scenario("examplesys/safety-bug")
    config = testcase.default_config(strategy="random", seed=7, iterations=50)
    strategy = create_strategy(config)
    for iteration in range(config.iterations):
        strategy.prepare_iteration(iteration)
        runtime = TestRuntime(strategy, config)
        bug = runtime.run(testcase.build())
        if bug is None:
            # Bug-free executions never materialize their log.
            assert runtime.trace.log == []
            continue
        assert bug.trace.log == bug.log
        assert bug.log, "bug reports carry the materialized execution log"
        # The serialized trace round-trips with its log.
        from repro.core.trace import ScheduleTrace

        loaded = ScheduleTrace.from_json(bug.trace.to_json())
        assert loaded.log == bug.log
        return
    pytest.fail("the safety-bug scenario should fail within 50 iterations")


# ---------------------------------------------------------------------------
# strategy-misbehavior validation
# ---------------------------------------------------------------------------
class _MisbehavingStrategy(SchedulingStrategy):
    """Returns a known-but-disabled machine after the warm-up steps."""

    name = "misbehaving"

    def __init__(self, victim_factory):
        super().__init__(seed=0)
        self._victim_factory = victim_factory

    def next_machine(self, enabled, step):
        victim = self._victim_factory(enabled)
        return victim if victim is not None else enabled[0]

    def next_boolean(self, requester, step):
        return False

    def next_integer(self, requester, max_value, step):
        return 0


class _Idle(Machine):
    def on_start(self):
        pass


def _two_idle_machines(runtime):
    runtime.create_machine(_Idle)
    runtime.create_machine(_Idle)


def test_choosing_disabled_machine_is_framework_error_not_bug():
    """A strategy bug must not be reported as a bug in the system under test."""
    state = {"drained": None}

    def pick(enabled):
        # Once a machine has drained its inbox it drops out of the enabled
        # set; schedule it again anyway.
        if state["drained"] is not None and all(
            mid.value != state["drained"] for mid in enabled
        ):
            return MachineId(state["drained"], "_Idle")
        state["drained"] = enabled[0].value
        return enabled[0]

    runtime = TestRuntime(_MisbehavingStrategy(pick), TestingConfig(max_steps=10))
    with pytest.raises(FrameworkError, match="disabled machine"):
        runtime.run(_two_idle_machines)
    assert runtime.bug is None, "framework errors are not bugs in the tested system"


def test_choosing_unknown_machine_is_framework_error():
    def pick(enabled):
        return MachineId(999, "Ghost")

    runtime = TestRuntime(_MisbehavingStrategy(pick), TestingConfig(max_steps=10))
    with pytest.raises(FrameworkError, match="unknown machine"):
        runtime.run(_two_idle_machines)
    assert runtime.bug is None
