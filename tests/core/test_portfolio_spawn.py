"""Regression tests: portfolios with ``--import``-registered scenarios under
the ``spawn`` start method.

Spawn-started workers are fresh interpreters: they re-import ``repro`` but
know nothing about user modules the parent imported.  The seed
``_execute_job`` only loaded builtins, so ``get_scenario`` raised
``KeyError`` for any user scenario on macOS/Windows (where spawn is the
default).  Jobs now carry their import specs and workers replay them.
"""

import multiprocessing
import os

import pytest

from repro.core.portfolio import Portfolio, PortfolioJob, _execute_job
from repro.core.registry import import_scenario_modules

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
QUICKSTART = os.path.join(REPO_ROOT, "examples", "quickstart.py")


@pytest.fixture()
def quickstart_scenario():
    import_scenario_modules([QUICKSTART])
    return "quickstart/dropped-response"


def test_job_payload_round_trips_imports(quickstart_scenario):
    portfolio = Portfolio(
        quickstart_scenario,
        strategies=["random"],
        iterations=2,
        imports=(QUICKSTART,),
    )
    job = portfolio.jobs()[0]
    assert job.imports == (QUICKSTART,)
    assert PortfolioJob.from_dict(job.to_dict()) == job


def test_worker_entry_point_reimports_user_scenarios(quickstart_scenario):
    """_execute_job resolves a user scenario from its payload alone."""
    portfolio = Portfolio(
        quickstart_scenario,
        strategies=["random"],
        iterations=2,
        seed=5,
        imports=(QUICKSTART,),
    )
    payload = portfolio.jobs()[0].to_dict()
    result = _execute_job(payload)
    assert result["index"] == 0
    assert result["report"]["iterations_executed"] >= 1


def test_spawn_portfolio_runs_imported_scenario(quickstart_scenario):
    """End to end: spawn workers re-import the scenario and match serial results."""
    def build(num_workers):
        return Portfolio(
            quickstart_scenario,
            strategies=["random"],
            iterations=4,
            num_shards=2,
            num_workers=num_workers,
            seed=3,
            imports=(QUICKSTART,),
            start_method="spawn" if num_workers > 1 else None,
        )

    serial = build(1).run()
    spawned = build(2).run()

    def fingerprint(report):
        return [
            (r.job.index, r.job.strategy, r.job.seed,
             r.report.iterations_executed, r.report.bug_found)
            for r in report.results
        ]

    assert fingerprint(spawned) == fingerprint(serial)
    assert spawned.num_workers == 2


def test_spawn_context_available():
    """The platform must offer spawn for the regression above to be meaningful."""
    assert "spawn" in multiprocessing.get_all_start_methods()


def test_spawn_portfolio_merges_fingerprint_coverage_deterministically():
    """State fingerprints survive the worker JSON round-trip and merge to the
    same set whether jobs run serially or in spawned processes."""
    from repro.core import get_scenario

    testcase = get_scenario("examplesys/safety-bug")

    def build(num_workers):
        return Portfolio(
            testcase,
            strategies=["random", "round-robin"],
            iterations=8,
            num_shards=2,
            num_workers=num_workers,
            seed=3,
            config=testcase.default_config(fingerprints=True),
            start_method="spawn" if num_workers > 1 else None,
        )

    serial = build(1).run()
    spawned = build(2).run()

    merged_serial = serial.merged_coverage
    merged_spawned = spawned.merged_coverage
    assert len(merged_serial.fingerprints) > 0
    assert merged_spawned.fingerprints == merged_serial.fingerprints
    # the merged set is exactly the union of the per-job sets
    union = set()
    for result in spawned.results:
        union |= result.report.coverage.fingerprints
    assert merged_spawned.fingerprints == union
    # distinct-state count surfaces in the portfolio summary line
    assert f"{len(merged_spawned.fingerprints)} distinct states" in spawned.summary()
