"""TimerMachine stop semantics under systematic exploration.

:class:`~repro.core.timer.StopTimer` documents that "pending ticks may still
be delivered" after the stop request: a tick the timer already sent (or a
loop round scheduled before the stop is dequeued) can race ahead of or
behind the stop.  These tests pin that contract down with DFS — *both*
interleavings (a tick delivered despite the stop, and the stop winning with
no tick at all) must actually be reachable — and verify that ``max_ticks``
bounds tick delivery in every explored execution.
"""

from repro.core import TestingConfig, TestRuntime, TimerMachine, TimerTick, on_event
from repro.core.machine import Machine
from repro.core.strategy import DFSStrategy
from repro.core.timer import StopTimer


class _StopRacer(Machine):
    """Stops its timer upon the first tick — the §3.3 stop/tick race.

    By the time the ``StopTimer`` request is dequeued by the timer, another
    loop round (already queued ahead of it in the timer's FIFO inbox) may
    have fired a second tick: that tick is then delivered even though the
    timer was asked to stop — the documented "pending ticks may still be
    delivered" behaviour.  Under other interleavings the stop wins and no
    further tick arrives; with enough unlucky controlled choices no tick is
    ever fired at all.
    """

    def on_start(self):
        self.ticks = 0
        self.tick_after_stop = False
        self.timer = self.create(TimerMachine, self.id, max_ticks=3)

    @on_event(TimerTick)
    def on_tick(self):
        self.ticks += 1
        if self.ticks == 1:
            self.send(self.timer, StopTimer())
        # Inspecting the timer instance tells us whether this tick landed
        # after the timer had already processed the StopTimer request.
        timer = self._runtime.machine_instance(self.timer)
        if not timer.active:
            self.tick_after_stop = True


def _explore(entry_cls, max_steps, iterations=4000):
    """DFS-explore the harness, collecting the machine's final observations."""
    strategy = DFSStrategy(seed=0)
    config = TestingConfig(
        max_steps=max_steps,
        iterations=iterations,
        report_deadlocks=False,
    )
    outcomes = []
    exhausted = False
    for iteration in range(iterations):
        strategy.prepare_iteration(iteration)
        if strategy.exhausted:
            exhausted = True
            break
        runtime = TestRuntime(strategy, config)
        bug = runtime.run(lambda rt: rt.create_machine(entry_cls))
        assert bug is None, f"timer harness must be bug-free, got {bug}"
        machine = runtime.machines_of_type(entry_cls)[0]
        outcomes.append(machine)
    return outcomes, exhausted


def test_dfs_reaches_both_stop_interleavings():
    outcomes, exhausted = _explore(_StopRacer, max_steps=20)
    assert exhausted, "the stop-race state space should be fully explorable"
    tick_counts = {machine.ticks for machine in outcomes}
    # The stop can win outright (no tick ever delivered) ...
    assert 0 in tick_counts, "an interleaving with no tick must be reachable"
    # ... and a pending tick can still land (the documented race).
    assert any(machine.ticks > 0 for machine in outcomes), (
        "an interleaving delivering a tick despite StopTimer must be reachable"
    )
    # In particular the strong form: the tick is dispatched *after* the
    # timer already processed the StopTimer request.
    assert any(machine.tick_after_stop for machine in outcomes), (
        "a tick delivered after the stop was processed must be reachable"
    )


def test_max_ticks_bounds_delivery_in_every_interleaving():
    outcomes, exhausted = _explore(_StopRacer, max_steps=20)
    assert exhausted
    # max_ticks bounds loop rounds, so ticks can never exceed it; with the
    # stop racing in, the explored maximum is in fact lower still.
    assert all(machine.ticks <= 3 for machine in outcomes)
    assert max(machine.ticks for machine in outcomes) == 2


class _BoundedAlwaysFire(Machine):
    """Regular periodic timer: max_ticks bounds a tick-per-round timer."""

    def on_start(self):
        self.ticks = 0
        self.timer = self.create(
            TimerMachine, self.id, max_ticks=3, always_fire=True
        )

    @on_event(TimerTick)
    def on_tick(self):
        self.ticks += 1


def test_always_fire_max_ticks_exact_bound():
    outcomes, exhausted = _explore(_BoundedAlwaysFire, max_steps=30)
    assert exhausted
    assert outcomes, "exploration must cover at least one execution"
    assert all(machine.ticks <= 3 for machine in outcomes)
    # With always_fire, some schedule lets the timer use its full budget.
    assert any(machine.ticks == 3 for machine in outcomes)
