"""Execution fingerprinting: stable hashing and the incremental invariant.

The load-bearing property is that the incrementally maintained global
fingerprint (updated in O(1) from the queue hooks plus one ``touch`` per
dispatched step) always equals the value recomputed from scratch by walking
every machine and monitor — checked here at *every scheduling point* of real
harness executions via a delegating strategy.
"""

import subprocess
import sys

from repro.core import TestingConfig, TestingEngine, run_test
from repro.core.fingerprint import FingerprintTracker, stable_hash
from repro.core.ids import MachineId
from repro.core.strategy import RandomStrategy
from repro.examplesys.harness.scenarios import build_replication_test
from repro.vnext.harness.scenarios import build_failover_test


# ---------------------------------------------------------------------------
# stable_hash
# ---------------------------------------------------------------------------
def test_stable_hash_is_deterministic_and_discriminating():
    value, exact = stable_hash((1, "a", 2.5, b"x", None, True))
    again, _ = stable_hash((1, "a", 2.5, b"x", None, True))
    assert value == again
    assert exact
    assert stable_hash((1, "a"))[0] != stable_hash(("a", 1))[0]
    assert stable_hash(1)[0] != stable_hash("1")[0]
    assert stable_hash(True)[0] != stable_hash(1)[0]
    assert stable_hash([1, 2])[0] != stable_hash([2, 1])[0]


def test_stable_hash_canonicalizes_unordered_containers():
    a = {"x": 1, "y": 2}
    b = dict([("y", 2), ("x", 1)])
    assert stable_hash(a)[0] == stable_hash(b)[0]
    assert stable_hash({3, 1, 2})[0] == stable_hash({2, 3, 1})[0]
    # mixed-type dict keys must not raise (sorted by encoded bytes)
    stable_hash({1: "a", "b": 2, None: 3})


def test_stable_hash_handles_cycles():
    cyclic = []
    cyclic.append(cyclic)
    value, exact = stable_hash(cyclic)
    other = []
    other.append(other)
    assert exact
    assert value == stable_hash(other)[0]


def test_stable_hash_machine_id_and_objects():
    assert (
        stable_hash(MachineId(1, "M"))[0]
        == stable_hash(MachineId(1, "M"))[0]
    )
    assert stable_hash(MachineId(1, "M"))[0] != stable_hash(MachineId(2, "M"))[0]

    class Payload:
        def __init__(self, x):
            self.x = x
            self._internal = object()  # underscore attrs are excluded

    assert stable_hash(Payload(1))[0] == stable_hash(Payload(1))[0]
    assert stable_hash(Payload(1))[0] != stable_hash(Payload(2))[0]


def test_stable_hash_flags_unencodable_values_inexact():
    value, exact = stable_hash(lambda: None)
    assert not exact
    # still deterministic: the marker encodes the type
    assert value == stable_hash(lambda: None)[0]
    _, exact = stable_hash({"handle": object()})
    assert not exact


def test_stable_hash_matches_across_interpreters():
    """No PYTHONHASHSEED dependence: a fresh process agrees bit-for-bit."""
    local = stable_hash(("probe", 42, frozenset({"a", "b"}), {"k": (1, 2)}))[0]
    script = (
        "from repro.core.fingerprint import stable_hash\n"
        "print(stable_hash(('probe', 42, frozenset({'a', 'b'}), {'k': (1, 2)}))[0])\n"
    )
    result = subprocess.run(
        [sys.executable, "-c", script],
        capture_output=True,
        text=True,
        check=True,
        timeout=60,
        env={"PYTHONPATH": "src", "PYTHONHASHSEED": "7"},
    )
    assert int(result.stdout.strip()) == local


# ---------------------------------------------------------------------------
# incremental == from-scratch, at every scheduling point of real executions
# ---------------------------------------------------------------------------
class InvariantCheckingStrategy(RandomStrategy):
    """Random scheduling that cross-checks the tracker at every choice."""

    def __init__(self, seed=0):
        super().__init__(seed)
        self._tracked_runtime = None
        self.checks = 0

    def attach_runtime(self, runtime):
        super().attach_runtime(runtime)
        self._tracked_runtime = runtime

    def next_machine(self, enabled, step):
        tracker = self._tracked_runtime._fingerprint
        incremental = tracker.current()
        scratch = tracker.recompute()
        assert incremental.value == scratch.value, (
            f"incremental fingerprint diverged at step {step}"
        )
        assert incremental.exact == scratch.exact
        self.checks += 1
        return super().next_machine(enabled, step)


def _run_with_invariant(entry, iterations=5, max_steps=80):
    config = TestingConfig(
        iterations=iterations,
        max_steps=max_steps,
        fingerprints=True,
        stop_at_first_bug=False,
        max_bugs=None,
    )
    strategy = InvariantCheckingStrategy(seed=11)
    engine = TestingEngine(entry, config, strategy)
    report = engine.run()
    assert strategy.checks > 100, "invariant was barely exercised"
    return report


def test_incremental_fingerprint_matches_recompute_on_failover():
    _run_with_invariant(build_failover_test(fixed=False, num_nodes=2))


def test_incremental_fingerprint_matches_recompute_on_replication():
    # examplesys exercises defer/ignore disciplines, receive and timers —
    # the queue-surgery paths the rolling hashes must track exactly.
    _run_with_invariant(build_replication_test(num_nodes=3, num_requests=2))


def test_fingerprints_flow_into_coverage_and_report():
    config = TestingConfig(iterations=4, max_steps=60, fingerprints=True, seed=2)
    report = run_test(build_replication_test(), config)
    assert len(report.coverage.fingerprints) > 0
    assert report.coverage.summary()["fingerprints"] == len(report.coverage.fingerprints)
    # fingerprinting is strictly opt-in: the plain path records nothing
    plain = run_test(build_replication_test(), TestingConfig(iterations=2, max_steps=60))
    assert plain.coverage.fingerprints == set()


def test_tracker_wants_fingerprints_opt_in():
    """The runtime builds a tracker iff config or strategy asks for one."""
    from repro.core.runtime import TestRuntime

    entry = build_replication_test()
    strategy = RandomStrategy(seed=0)
    strategy.prepare_iteration(0)
    runtime = TestRuntime(strategy, TestingConfig(max_steps=10))
    assert runtime.execution_fingerprint() is None
    runtime.run(entry)

    strategy = RandomStrategy(seed=0)
    strategy.prepare_iteration(0)
    runtime = TestRuntime(strategy, TestingConfig(max_steps=10, fingerprints=True))
    assert isinstance(runtime._fingerprint, FingerprintTracker)
    runtime.run(entry)
    observed = runtime.execution_fingerprint()
    assert observed is not None
    assert observed.value == runtime._fingerprint.recompute().value
