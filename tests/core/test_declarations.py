"""Unit tests for handler declarations and spec building."""

import pytest

from repro.core import Event, Machine, on_entry, on_event, on_exit
from repro.core.declarations import ANY_STATE, build_spec


class Ev1(Event):
    pass


class Ev2(Event):
    pass


class EvSub(Ev1):
    pass


class Stateful(Machine):
    initial_state = "a"

    @on_event(Ev1, state="a")
    def handle_a(self, event):
        pass

    @on_event(Ev1, state="b")
    def handle_b(self):
        pass

    @on_event(Ev2)
    def handle_any(self, event):
        pass

    @on_entry("b")
    def enter_b(self):
        pass

    @on_exit("a")
    def exit_a(self):
        pass


def test_spec_collects_states_and_handlers():
    spec = Stateful.spec()
    assert spec.states == {"a", "b"}
    assert spec.handler_for("a", Ev1).method_name == "handle_a"
    assert spec.handler_for("b", Ev1).method_name == "handle_b"
    assert spec.handler_for("a", Ev2).method_name == "handle_any"
    assert spec.handler_for("zzz", Ev2).method_name == "handle_any"


def test_spec_subclass_event_resolution():
    spec = Stateful.spec()
    assert spec.handler_for("a", EvSub).method_name == "handle_a"


def test_spec_wants_event_detection():
    spec = Stateful.spec()
    assert spec.handler_for("a", Ev1).wants_event is True
    assert spec.handler_for("b", Ev1).wants_event is False


def test_spec_entry_exit_actions():
    spec = Stateful.spec()
    assert spec.entry_actions == {"b": "enter_b"}
    assert spec.exit_actions == {"a": "exit_a"}


def test_action_handler_count():
    assert Stateful.spec().action_handler_count == 5


def test_on_event_requires_types():
    with pytest.raises(TypeError):
        on_event()


def test_inherited_handlers_are_collected():
    class Child(Stateful):
        @on_event(Ev2, state="a")
        def handle_child(self, event):
            pass

    spec = build_spec(Child)
    assert spec.handler_for("a", Ev2).method_name == "handle_child"
    assert spec.handler_for("b", Ev2).method_name == "handle_any"


def test_wildcard_state_constant():
    spec = Stateful.spec()
    assert (ANY_STATE, Ev2) in spec.handlers


class EvDeep(EvSub):
    pass


def test_base_type_resolution_prefers_most_derived_regardless_of_order():
    """Regression: resolution used to depend on handler registration order.

    Two base-class handlers for the same event hierarchy must resolve to the
    handler bound to the *closest* base in the event's MRO, whichever was
    registered first.
    """

    class BaseFirst(Machine):
        @on_event(Ev1)
        def general(self, event):
            pass

        @on_event(EvSub)
        def specific(self, event):
            pass

    class SpecificFirst(Machine):
        @on_event(EvSub)
        def specific(self, event):
            pass

        @on_event(Ev1)
        def general(self, event):
            pass

    for cls in (BaseFirst, SpecificFirst):
        spec = build_spec(cls)
        assert spec.handler_for("init", EvDeep).method_name == "specific"
        assert spec.handler_for("init", EvSub).method_name == "specific"
        assert spec.handler_for("init", Ev1).method_name == "general"


def test_state_handlers_beat_wildcard_handlers_for_base_matches():
    """A state's own handler — however general its event type — wins over a
    machine-wide (wildcard) handler, even one bound to the exact type."""

    class Layered(Machine):
        initial_state = "a"

        @on_event(Ev1, state="a")
        def state_general(self, event):
            pass

        @on_event(EvSub)
        def wildcard_exact(self, event):
            pass

    spec = build_spec(Layered)
    assert spec.handler_for("a", EvSub).method_name == "state_general"
    assert spec.handler_for("b", EvSub).method_name == "wildcard_exact"
