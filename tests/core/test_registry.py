"""Tests for the scenario registry and the pluggable strategy registry."""

import pytest

from repro.core import TestingConfig, all_scenarios, get_scenario, load_builtin_scenarios
from repro.core.registry import TestCase, register, scenario
from repro.core.strategy import (
    PCTStrategy,
    RandomStrategy,
    SchedulingStrategy,
    available_strategies,
    create_strategy,
    register_strategy,
    strategy_class,
)


def _noop_build():
    return lambda runtime: None


# ---------------------------------------------------------------------------
# scenario registry
# ---------------------------------------------------------------------------
def test_duplicate_scenario_registration_raises():
    register(TestCase(name="test-registry/unique", build=_noop_build))
    with pytest.raises(ValueError, match="already registered"):
        register(TestCase(name="test-registry/unique", build=_noop_build))


def test_scenario_decorator_registers_and_returns_factory():
    @scenario("test-registry/decorated", tags=("smoke",), max_steps=42)
    def decorated():
        """One-line description."""
        return _noop_build()

    case = get_scenario("test-registry/decorated")
    assert case is decorated.testcase
    assert case.description == "One-line description."
    assert case.max_steps == 42
    assert case.default_config().max_steps == 42
    assert callable(decorated())


def test_unknown_scenario_error_lists_registered_names():
    with pytest.raises(KeyError) as excinfo:
        get_scenario("no/such/scenario")
    assert "examplesys/safety-bug" in str(excinfo.value)


def test_builtin_scenarios_span_all_four_case_studies():
    load_builtin_scenarios()
    packages = {case.name.split("/")[0] for case in all_scenarios()}
    assert {"examplesys", "vnext", "migratingtable", "fabric"} <= packages
    assert len(all_scenarios()) >= 10


def test_tag_filtering():
    table2 = all_scenarios(tag="table2")
    assert len(table2) == 12
    assert all("table2" in case.tags for case in table2)


# ---------------------------------------------------------------------------
# strategy registry
# ---------------------------------------------------------------------------
def test_builtin_strategies_registered():
    assert {"random", "pct", "round-robin", "dfs"} <= set(available_strategies())
    assert strategy_class("priority") is PCTStrategy  # alias


def test_duplicate_strategy_registration_raises():
    with pytest.raises(ValueError, match="already registered"):
        register_strategy("random")(RandomStrategy)


def test_alias_collision_leaves_registry_untouched():
    class Colliding(RandomStrategy):
        pass

    before = available_strategies()
    with pytest.raises(ValueError, match="already registered"):
        register_strategy("test-registry-new-name", "pct")(Colliding)
    # Nothing was half-registered: the primary name is absent and the
    # advertised strategy set is unchanged.
    assert available_strategies() == before
    with pytest.raises(ValueError, match="unknown strategy"):
        strategy_class("test-registry-new-name")


def test_create_strategy_unknown_name_lists_registered_names():
    with pytest.raises(ValueError) as excinfo:
        create_strategy(TestingConfig(strategy="nope"))
    message = str(excinfo.value)
    for name in ("random", "pct", "dfs", "round-robin"):
        assert name in message


def test_registered_strategy_usable_through_config():
    @register_strategy("test-registry-fifo")
    class FifoStrategy(SchedulingStrategy):
        name = "test-registry-fifo"

        def next_machine(self, enabled, step):
            return enabled[0]

        def next_boolean(self, requester, step):
            return False

        def next_integer(self, requester, max_value, step):
            return 0

    built = create_strategy(TestingConfig(strategy="test-registry-fifo"))
    assert isinstance(built, FifoStrategy)


def test_pct_options_namespace_in_config_extra():
    config = TestingConfig(
        strategy="pct",
        max_steps=1000,
        extra={"pct": {"priority_switches": 7, "fair_suffix": False}},
    )
    built = create_strategy(config)
    assert built.priority_switches == 7
    assert built.fair_suffix_start is None
