"""The coverage-guided ``feedback`` strategy."""

from repro.core import TestingConfig, TestingEngine, run_test
from repro.core.strategy import FeedbackStrategy, available_strategies, create_strategy
from repro.examplesys.harness.scenarios import build_replication_test
from repro.vnext.harness.scenarios import build_failover_test


def test_feedback_is_registered():
    assert "feedback" in available_strategies()
    strategy = create_strategy(TestingConfig(strategy="feedback", seed=5))
    assert isinstance(strategy, FeedbackStrategy)
    assert strategy.seed == 5
    assert strategy.wants_fingerprints  # forces the tracker on


def test_feedback_finds_seeded_bug():
    config = TestingConfig(iterations=300, max_steps=120, strategy="feedback", seed=3)
    report = run_test(build_replication_test(check_liveness=False), config)
    assert report.bug_found
    assert report.strategy == "feedback"
    # the tracker ran, so coverage carries the states the search visited
    assert len(report.coverage.fingerprints) > 0


def test_feedback_is_deterministic():
    def once():
        config = TestingConfig(iterations=40, max_steps=60, strategy="feedback",
                               seed=9, stop_at_first_bug=False, max_bugs=None)
        engine = TestingEngine(build_failover_test(fixed=True, num_nodes=2), config)
        report = engine.run()
        return (
            report.iterations_executed,
            [b.kind for b in report.bugs],
            sorted(report.coverage.fingerprints),
            engine.strategy.novel_states,
        )

    assert once() == once()


def test_feedback_builds_and_replays_a_corpus():
    config = TestingConfig(iterations=25, max_steps=60, strategy="feedback",
                           seed=7, stop_at_first_bug=False, max_bugs=None)
    engine = TestingEngine(build_failover_test(fixed=True, num_nodes=2), config)
    engine.run()
    strategy = engine.strategy
    assert strategy.novel_states > 0
    assert len(strategy._corpus) > 0
    assert strategy.corpus_hits > 0


def test_feedback_bug_traces_replay():
    config = TestingConfig(iterations=300, max_steps=120, strategy="feedback", seed=3)
    entry = build_replication_test(check_liveness=False)
    engine = TestingEngine(entry, config)
    report = engine.run()
    assert report.bug_found
    bug = report.first_bug
    assert bug.trace is not None
    replayed = engine.replay(bug.trace)
    assert replayed is not None
    assert replayed.kind == bug.kind
