"""Behavioural tests of the serialized runtime: dispatch, receive, halting,
monitors, liveness, deadlock detection and unhandled events."""

import pytest

from repro.core import (
    Event,
    FrameworkError,
    Halt,
    Machine,
    Monitor,
    Receive,
    RoundRobinStrategy,
    TestRuntime,
    TestingConfig,
    on_event,
)


class Ping(Event):
    def __init__(self, sender):
        self.sender = sender


class Pong(Event):
    pass


class Note(Event):
    def __init__(self, value=0):
        self.value = value


def make_runtime(**config_kwargs):
    config = TestingConfig(iterations=1, **config_kwargs)
    strategy = RoundRobinStrategy()
    strategy.prepare_iteration(0)
    return TestRuntime(strategy, config)


class Echo(Machine):
    @on_event(Ping)
    def reply(self, event):
        self.send(event.sender, Pong())


class Caller(Machine):
    def on_start(self, echo):
        self.got_pong = False
        self.send(echo, Ping(self.id))
        yield Receive(Pong)
        self.got_pong = True


def test_request_response_with_receive():
    runtime = make_runtime(max_steps=50)

    def entry(rt):
        echo = rt.create_machine(Echo)
        rt.create_machine(Caller, echo)

    assert runtime.run(entry) is None
    caller = runtime.machines_of_type(Caller)[0]
    assert caller.got_pong is True
    assert runtime.termination_reason == "quiescence"


def test_unhandled_event_is_a_bug():
    class Silent(Machine):
        pass

    runtime = make_runtime(max_steps=20)

    def entry(rt):
        target = rt.create_machine(Silent)
        rt.send_event(target, Note())

    bug = runtime.run(entry)
    assert bug is not None and bug.kind == "unhandled-event"


def test_unhandled_event_can_be_ignored():
    class Tolerant(Machine):
        ignore_unhandled_events = True

    runtime = make_runtime(max_steps=20)

    def entry(rt):
        target = rt.create_machine(Tolerant)
        rt.send_event(target, Note())

    assert runtime.run(entry) is None


def test_halt_event_stops_machine_and_drops_messages():
    runtime = make_runtime(max_steps=30)

    def entry(rt):
        echo = rt.create_machine(Echo)
        rt.send_event(echo, Halt())
        rt.send_event(echo, Ping(echo))

    assert runtime.run(entry) is None
    echo = runtime.machines_of_type(Echo)[0]
    assert echo.is_halted


def test_exception_in_handler_is_reported_as_bug():
    class Crasher(Machine):
        @on_event(Note)
        def boom(self, event):
            raise RuntimeError("kaboom")

    runtime = make_runtime(max_steps=20)

    def entry(rt):
        target = rt.create_machine(Crasher)
        rt.send_event(target, Note())

    bug = runtime.run(entry)
    assert bug is not None and bug.kind == "exception"
    assert "kaboom" in bug.message


def test_assertion_failure_is_safety_bug():
    class Checker(Machine):
        @on_event(Note)
        def check(self, event):
            self.assert_that(event.value > 0, "value must be positive")

    runtime = make_runtime(max_steps=20)

    def entry(rt):
        target = rt.create_machine(Checker)
        rt.send_event(target, Note(0))

    bug = runtime.run(entry)
    assert bug is not None and bug.kind == "safety"


def test_state_transitions_run_entry_and_exit_actions():
    from repro.core import on_entry, on_exit

    class Stateful(Machine):
        initial_state = "closed"

        def on_start(self):
            self.events = []
            self.goto("open")

        @on_exit("closed")
        def leaving(self):
            self.events.append("exit-closed")

        @on_entry("open")
        def entering(self):
            self.events.append("enter-open")

    runtime = make_runtime(max_steps=10)
    runtime.run(lambda rt: rt.create_machine(Stateful))
    machine = runtime.machines_of_type(Stateful)[0]
    assert machine.current_state == "open"
    assert machine.events == ["exit-closed", "enter-open"]


def test_monitor_liveness_violation_at_bound():
    class Progress(Event):
        pass

    class LivenessMonitor(Monitor):
        initial_state = "hot"
        hot_states = frozenset({"hot"})

        @on_event(Progress)
        def progressed(self):
            self.goto("cold")

    class Spinner(Machine):
        @on_event(Note)
        def spin(self):
            self.send(self.id, Note())

    runtime = make_runtime(max_steps=25)

    def entry(rt):
        rt.register_monitor(LivenessMonitor)
        spinner = rt.create_machine(Spinner)
        rt.send_event(spinner, Note())

    bug = runtime.run(entry)
    assert bug is not None and bug.kind == "liveness"


def test_monitor_goes_cold_no_violation():
    class Progress(Event):
        pass

    class LivenessMonitor(Monitor):
        initial_state = "hot"
        hot_states = frozenset({"hot"})

        @on_event(Progress)
        def progressed(self):
            self.goto("cold")

    class Worker(Machine):
        @on_event(Note)
        def work(self):
            self.notify_monitor(LivenessMonitor, Progress())

    runtime = make_runtime(max_steps=25)

    def entry(rt):
        rt.register_monitor(LivenessMonitor)
        worker = rt.create_machine(Worker)
        rt.send_event(worker, Note())

    assert runtime.run(entry) is None


def test_deadlock_detection_for_blocked_receive():
    class Waiter(Machine):
        def on_start(self):
            yield Receive(Pong)

    runtime = make_runtime(max_steps=20)
    bug = runtime.run(lambda rt: rt.create_machine(Waiter))
    assert bug is not None and bug.kind == "deadlock"


def test_send_to_unknown_machine_is_framework_error():
    from repro.core import MachineId

    runtime = make_runtime(max_steps=5)
    with pytest.raises(FrameworkError):
        runtime.send_event(MachineId(99, "Ghost"), Note())


def test_notify_unregistered_monitor_is_noop():
    class SomeMonitor(Monitor):
        @on_event(Note)
        def handle(self, event):
            pass

    class Notifier(Machine):
        @on_event(Note)
        def notify(self, event):
            self.notify_monitor(SomeMonitor, Note())

    runtime = make_runtime(max_steps=20)

    def entry(rt):
        target = rt.create_machine(Notifier)
        rt.send_event(target, Note())

    assert runtime.run(entry) is None


def test_count_pending_events():
    runtime = make_runtime(max_steps=5)

    class Sink(Machine):
        ignore_unhandled_events = True

    def entry(rt):
        sink = rt.create_machine(Sink)
        rt.send_event(sink, Note(1))
        rt.send_event(sink, Note(2))
        entry.sink = sink

    runtime.run(entry)
    # After the run the inbox has been drained; check the helper on a fresh runtime.
    runtime2 = make_runtime(max_steps=5)
    sink_id = runtime2.create_machine(Sink)
    runtime2.send_event(sink_id, Note(1))
    runtime2.send_event(sink_id, Note(2))
    assert runtime2.count_pending_events(sink_id, Note) == 2
    assert runtime2.count_pending_events(sink_id, Note, lambda e: e.value == 1) == 1


def test_pause_yield_keeps_machine_runnable():
    class Stepper(Machine):
        def on_start(self, steps):
            self.progress = 0
            for _ in range(steps):
                self.progress += 1
                yield

    runtime = make_runtime(max_steps=50)
    runtime.run(lambda rt: rt.create_machine(Stepper, 5))
    assert runtime.machines_of_type(Stepper)[0].progress == 5
