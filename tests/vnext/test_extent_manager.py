"""Unit tests for the vNext Extent Manager, ExtentCenter and EN store."""

from repro.vnext import (
    ExtentCenter,
    ExtentId,
    ExtentManager,
    ExtentManagerConfig,
    ExtentNodeStore,
    Heartbeat,
    NullNetworkEngine,
    RepairRequest,
    SyncReport,
)


EXTENT = ExtentId(1)


def test_extent_center_add_remove_replicas():
    center = ExtentCenter()
    center.add_replica(EXTENT, 0)
    center.add_replica(EXTENT, 1)
    assert center.replica_count(EXTENT) == 2
    center.remove_replica(EXTENT, 0)
    assert center.locations(EXTENT) == {1}


def test_extent_center_remove_node_returns_affected_extents():
    center = ExtentCenter()
    center.add_replica(EXTENT, 0)
    center.add_replica(ExtentId(2), 0)
    assert sorted(e.value for e in center.remove_node(0)) == [1, 2]
    assert center.replica_count(EXTENT) == 0


def test_extent_center_update_from_sync_adds_and_removes():
    center = ExtentCenter()
    center.add_replica(EXTENT, 0)
    center.add_replica(ExtentId(2), 0)
    center.update_from_sync(0, [EXTENT])
    assert center.locations(EXTENT) == {0}
    assert center.locations(ExtentId(2)) == set()


def make_manager(fixed=False):
    config = ExtentManagerConfig(fix_stale_sync_report=fixed, heartbeat_expiration_ticks=2)
    return ExtentManager(config, NullNetworkEngine())


def test_heartbeat_registers_node():
    manager = make_manager()
    manager.process_message(Heartbeat(3))
    assert manager.is_registered(3)


def test_expiration_removes_silent_nodes_and_their_records():
    manager = make_manager()
    manager.process_heartbeat(0)
    manager.process_sync_report(0, [EXTENT])
    expired = []
    for _ in range(4):
        expired += manager.run_expiration_loop()
    assert expired == [0]
    assert manager.believed_replica_count(EXTENT) == 0


def test_fresh_heartbeats_prevent_expiration():
    manager = make_manager()
    manager.process_heartbeat(0)
    for _ in range(5):
        manager.run_expiration_loop()
        manager.process_heartbeat(0)
    assert manager.is_registered(0)


def test_repair_loop_schedules_repairs_for_under_replicated_extents():
    manager = make_manager()
    for node in (0, 1, 2, 3):
        manager.process_heartbeat(node)
    manager.process_sync_report(0, [EXTENT])
    tasks = manager.run_repair_loop()
    assert len(tasks) == 2
    assert all(task.source_node_id == 0 for task in tasks)
    sent = manager.network.sent
    assert all(isinstance(message, RepairRequest) for _node, message in sent)


def test_repair_loop_skips_fully_replicated_extents():
    manager = make_manager()
    for node in (0, 1, 2):
        manager.process_heartbeat(node)
        manager.process_sync_report(node, [EXTENT])
    assert manager.run_repair_loop() == []


def test_stale_sync_resurrects_records_without_fix():
    manager = make_manager(fixed=False)
    manager.process_heartbeat(0)
    manager.process_sync_report(0, [EXTENT])
    for _ in range(4):
        manager.run_expiration_loop()
    assert manager.believed_replica_count(EXTENT) == 0
    manager.process_sync_report(0, [EXTENT])  # stale report from the dead node
    assert manager.believed_replica_count(EXTENT) == 1


def test_stale_sync_ignored_with_fix():
    manager = make_manager(fixed=True)
    manager.process_heartbeat(0)
    manager.process_sync_report(0, [EXTENT])
    for _ in range(4):
        manager.run_expiration_loop()
    manager.process_sync_report(0, [EXTENT])
    assert manager.believed_replica_count(EXTENT) == 0


def test_extent_node_store_sync_report():
    store = ExtentNodeStore(7)
    store.add_extent(EXTENT)
    report = store.get_sync_report()
    assert isinstance(report, SyncReport)
    assert report.node_id == 7
    assert report.extent_ids == (EXTENT,)
    store.remove_extent(EXTENT)
    assert not store.has_extent(EXTENT)
