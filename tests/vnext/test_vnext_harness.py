"""Integration tests: the vNext harness under systematic testing."""


from repro.core import TestingConfig, TestingEngine, run_test
from repro.vnext.harness import (
    build_failover_test,
    build_replication_scenario_test,
)


def test_liveness_bug_found_in_failover_scenario_random():
    report = run_test(
        build_failover_test(fixed=False),
        TestingConfig(iterations=60, max_steps=3000, seed=11),
    )
    assert report.bug_found
    assert report.first_bug.kind == "liveness"
    assert "RepairMonitor" in report.first_bug.message


def test_liveness_bug_found_in_failover_scenario_pct():
    report = run_test(
        build_failover_test(fixed=False),
        TestingConfig(iterations=60, max_steps=3000, seed=11, strategy="pct"),
    )
    assert report.bug_found
    assert report.first_bug.kind == "liveness"


def test_liveness_bug_execution_is_long():
    """The liveness bug needs far more nondeterministic choices than safety bugs."""
    report = run_test(
        build_failover_test(fixed=False),
        TestingConfig(iterations=60, max_steps=3000, seed=11),
    )
    assert report.num_nondeterministic_choices > 1000


def test_fixed_extent_manager_is_clean():
    report = run_test(
        build_failover_test(fixed=True),
        TestingConfig(iterations=40, max_steps=3000, seed=11),
    )
    assert not report.bug_found


def test_replication_scenario_reaches_full_replication():
    report = run_test(
        build_replication_scenario_test(fixed=True),
        TestingConfig(iterations=30, max_steps=3000, seed=11),
    )
    assert not report.bug_found


def test_vnext_bug_trace_replays():
    engine = TestingEngine(
        build_failover_test(fixed=False),
        TestingConfig(iterations=60, max_steps=3000, seed=11),
    )
    report = engine.run()
    assert report.bug_found
    replayed = engine.replay(report.first_bug.trace)
    assert replayed is not None and replayed.kind == "liveness"
