"""AnalysisReport: deterministic ordering, byte-stable JSON, suppression."""

import json

from repro.analysis import Diagnostic, analyze_classes
from repro.analysis.report import is_suppressed, suppressed_rules

from . import fixtures as fx

_DEFECT_SET = (
    fx.UnhandledSender,
    fx.OrphanState,
    fx.BottomPopper,
    fx.ForeverDeferrer,
    fx.TrappedHotMonitor,
    fx.PayloadAliaser,
)


def test_diagnostics_ordered_by_module_line_rule():
    report = analyze_classes(_DEFECT_SET)
    keys = [(d.module, d.line, d.rule, d.message) for d in report.diagnostics]
    assert keys == sorted(keys)
    # every seeded defect class trips at least one diagnostic
    assert {d.owner for d in report.diagnostics} >= {c.__name__ for c in _DEFECT_SET}


def test_json_output_is_byte_stable_across_runs():
    from repro.analysis import clear_model_cache

    first = analyze_classes(_DEFECT_SET).to_json()
    clear_model_cache()  # force full re-extraction, not a cache echo
    second = analyze_classes(_DEFECT_SET).to_json()
    assert first == second


def test_diagnostics_carry_file_line_anchors():
    report = analyze_classes([fx.UnhandledSender])
    for diagnostic in report.diagnostics:
        payload = diagnostic.to_dict()
        assert payload["anchor"] == f"{payload['file']}:{payload['line']}"
        assert payload["line"] > 0
        assert payload["file"].endswith("fixtures.py")
        assert diagnostic.render().startswith(payload["anchor"])


def test_duplicate_diagnostics_are_deduplicated():
    # Analyzing overlapping class sets twice in one report must not repeat
    # identical findings (scenario sweeps share machines).
    single = analyze_classes([fx.UnhandledSender])
    doubled = analyze_classes([fx.UnhandledSender, fx.DeafReceiver])
    assert len(doubled.diagnostics) == len(single.diagnostics)


# ---------------------------------------------------------------------------
# suppression
# ---------------------------------------------------------------------------
def test_trailing_comment_suppresses_the_anchored_line():
    report = analyze_classes([fx.SuppressedPopper])
    assert [d.rule for d in report.diagnostics] == []
    assert [d.rule for d in report.suppressed] == ["pop-underflow"]


def test_comment_line_above_suppresses_too():
    report = analyze_classes([fx.SuppressedSender])
    assert report.diagnostics == []
    assert [d.rule for d in report.suppressed] == ["unhandled-event"]


def test_suppression_is_rule_specific():
    # the pop-underflow suppression must not hide other rules
    diagnostic = Diagnostic(
        rule="payload-alias",
        severity="warning",
        message="x",
        owner="SuppressedPopper",
        module=fx.__name__,
        file=fx.__file__,
        line=_line_of("self.pop_state()  # repro: ignore[pop-underflow]"),
    )
    assert not is_suppressed(diagnostic)
    assert suppressed_rules(fx.__file__, diagnostic.line) == {"pop-underflow"}


def _line_of(snippet: str) -> int:
    with open(fx.__file__) as handle:
        for number, text in enumerate(handle, start=1):
            if snippet in text:
                return number
    raise AssertionError(f"snippet not found: {snippet!r}")


def test_wildcard_suppression(tmp_path):
    target = tmp_path / "module.py"
    target.write_text("x = 1  # repro: ignore[*]\n")
    diagnostic = Diagnostic(
        rule="unhandled-event",
        severity="error",
        message="x",
        owner="X",
        module="module",
        file=str(target),
        line=1,
    )
    assert is_suppressed(diagnostic)


# ---------------------------------------------------------------------------
# gating
# ---------------------------------------------------------------------------
def test_gate_failures_respect_severity_threshold():
    report = analyze_classes(_DEFECT_SET)
    errors = report.count("error")
    warnings = report.count("warning")
    assert errors > 0 and warnings > 0
    assert report.gate_failures("error") == errors
    assert report.gate_failures("warning") == errors + warnings


def test_suppressed_diagnostics_do_not_gate():
    report = analyze_classes([fx.SuppressedPopper, fx.SuppressedSender])
    assert report.gate_failures("warning") == 0
    assert len(report.suppressed) == 2


def test_report_dict_shape():
    report = analyze_classes([fx.UnhandledSender])
    payload = json.loads(report.to_json())
    assert set(payload) == {"diagnostics", "suppressed", "machines", "scenarios", "summary"}
    assert payload["summary"]["errors"] == len(
        [d for d in payload["diagnostics"] if d["severity"] == "error"]
    )
    assert payload["machines"] == sorted(payload["machines"])


def test_stats_block_is_strictly_opt_in():
    """``--stats`` must not perturb the default JSON: byte-identical without
    a rule catalog, one extra top-level key with one."""
    from repro.analysis import RULES

    report = analyze_classes([fx.UnhandledSender, fx.SuppressedPopper])
    assert report.to_json() == report.to_json(None)
    with_stats = json.loads(report.to_json(sorted(RULES)))
    without = json.loads(report.to_json())
    assert set(with_stats) == set(without) | {"stats"}
    stats = with_stats["stats"]["rules"]
    # every catalog rule has a row, even at zero
    assert set(stats) == set(RULES)
    assert stats["unhandled-event"]["active"] >= 1
    assert stats["pop-underflow"]["suppressed"] >= 1
    assert stats["hot-forever"] == {"active": 0, "suppressed": 0}


def test_render_stats_is_aligned_and_complete():
    from repro.analysis import RULES

    report = analyze_classes([fx.UnhandledSender])
    text = report.render_stats(sorted(RULES))
    lines = text.splitlines()
    assert lines[0].split() == ["rule", "active", "suppressed"]
    assert len(lines) == 1 + len(RULES)


def test_report_cache_round_trip_preserves_everything():
    report = analyze_classes(
        [fx.UnhandledSender, fx.SuppressedPopper], scenarios=["demo"]
    )
    from repro.analysis import AnalysisReport

    restored = AnalysisReport.from_cache_dict(report.to_cache_dict())
    assert restored.to_json() == report.to_json()
    assert restored.machines == report.machines
    assert restored.scenarios == report.scenarios
    assert [d.rule for d in restored.suppressed] == [
        d.rule for d in report.suppressed
    ]
    # raw anchors survive (to_dict shortens paths for humans; the cache
    # must keep them absolute so suppression anchors stay valid)
    assert [d.file for d in restored.diagnostics] == [
        d.file for d in report.diagnostics
    ]
