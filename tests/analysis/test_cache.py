"""The incremental analysis cache: keys, storage, invalidation (PR 9)."""

import json
import os

from repro.analysis import AnalysisCache, AnalysisReport, analyze_scenarios
from repro.analysis.runner import independence_for_scenarios
from repro.core.registry import get_scenario, load_builtin_scenarios

from . import fixtures as fx


def _scenario():
    load_builtin_scenarios()
    return [get_scenario("vnext/extent-node-liveness")]


def test_round_trip_and_counters(tmp_path):
    cache = AnalysisCache(directory=str(tmp_path))
    key = cache.key_for([fx.HandledSender])
    assert key is not None
    assert cache.get(key) is None
    assert (cache.hits, cache.misses) == (0, 1)
    cache.put(key, {"answer": 42})
    assert cache.get(key) == {"answer": 42}
    assert (cache.hits, cache.misses) == (1, 1)
    assert 0 < cache.hit_rate() < 1
    assert "1 hit(s), 1 miss(es)" in cache.describe()


def test_key_is_stable_within_a_run_and_distinguishes_extras(tmp_path):
    cache = AnalysisCache(directory=str(tmp_path))
    first = cache.key_for([fx.HandledSender], extra=["report"])
    second = cache.key_for([fx.HandledSender], extra=["report"])
    assert first == second
    assert cache.key_for([fx.HandledSender], extra=["independence"]) != first
    assert cache.key_for([fx.HandledRaiser], extra=["report"]) != first


def test_source_change_invalidates_the_key(tmp_path, monkeypatch):
    import sys
    import types

    module = types.ModuleType("fakepkg")
    source = tmp_path / "fakepkg.py"
    source.write_text("x = 1\n")
    module.__file__ = str(source)

    class Probe:
        __module__ = "fakepkg"
        __qualname__ = "Probe"

    monkeypatch.setitem(sys.modules, "fakepkg", module)
    cache = AnalysisCache(directory=str(tmp_path / "cache"))
    before = cache.key_for([Probe])
    source.write_text("x = 2\n")
    after = AnalysisCache(directory=str(tmp_path / "cache")).key_for([Probe])
    assert before != after


def test_local_classes_disable_caching(tmp_path):
    class Local:
        pass

    cache = AnalysisCache(directory=str(tmp_path))
    assert cache.key_for([Local]) is None
    assert cache.get(None) is None
    cache.put(None, {"ignored": True})  # must not write anything
    assert not os.path.exists(os.path.join(str(tmp_path), "None.json"))


def test_disabled_cache_never_reads_or_writes(tmp_path):
    cache = AnalysisCache(directory=str(tmp_path), enabled=False)
    key = cache.key_for([fx.HandledSender])
    cache.put(key, {"answer": 42})
    assert list(tmp_path.iterdir()) == []
    assert cache.get(key) is None
    assert cache.lookups == 0


def test_analyze_scenarios_served_from_cache_is_equivalent(tmp_path):
    cases = _scenario()
    cache = AnalysisCache(directory=str(tmp_path))
    fresh = analyze_scenarios(cases, cache=cache)
    assert (cache.hits, cache.misses) == (0, 1)
    cached = analyze_scenarios(cases, cache=cache)
    assert (cache.hits, cache.misses) == (1, 1)
    assert isinstance(cached, AnalysisReport)
    assert cached.to_json() == fresh.to_json()
    assert cached.machines == fresh.machines
    assert cached.scenarios == fresh.scenarios


def test_independence_table_served_from_cache_is_identical(tmp_path):
    cases = _scenario()
    cache = AnalysisCache(directory=str(tmp_path))
    fresh = independence_for_scenarios(cases, cache=cache)
    cached = independence_for_scenarios(cases, cache=cache)
    assert cache.hits == 1
    assert json.dumps(cached, sort_keys=True) == json.dumps(fresh, sort_keys=True)


def test_environment_variable_overrides_the_directory(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_ANALYSIS_CACHE", str(tmp_path / "elsewhere"))
    cache = AnalysisCache()
    assert cache.directory == str(tmp_path / "elsewhere")
