"""Every rule ID fires on its seeded-defect fixture and stays silent on the
clean twin (ISSUE 6 acceptance criterion)."""

import pytest

from repro.analysis import RULES, analyze_classes

from . import fixtures as fx


def _rules_for(*classes, **kwargs):
    report = analyze_classes(classes, **kwargs)
    return report, {d.rule for d in report.diagnostics}


# ---------------------------------------------------------------------------
# per-rule: defect fixture triggers, clean twin does not
# ---------------------------------------------------------------------------
@pytest.mark.parametrize(
    "rule, bad, clean",
    [
        ("unhandled-event", fx.UnhandledSender, fx.HandledSender),
        ("unhandled-event", fx.UnhandledRaiser, fx.HandledRaiser),
        ("unhandled-event", fx.UnhandledNotifier, fx.HandledNotifier),
        ("unreachable-state", fx.OrphanState, fx.ConnectedStates),
        ("dead-handler", fx.OrphanState, fx.ConnectedStates),
        ("pop-underflow", fx.BottomPopper, fx.BalancedPopper),
        ("stuck-deferral", fx.ForeverDeferrer, fx.EventualHandler),
        ("hot-forever", fx.TrappedHotMonitor, fx.CoolableHotMonitor),
        ("payload-alias", fx.PayloadAliaser, fx.FreshPayloadSender),
        ("payload-alias", fx.LoopAliaser, fx.LoopFreshSender),
        ("nondeterministic-handler", fx.JitteryHandler, fx.SteadyHandler),
        ("nondeterministic-handler", fx.SetFanout, fx.ListFanout),
    ],
)
def test_rule_fires_on_defect_and_not_on_clean_twin(rule, bad, clean):
    _, bad_rules = _rules_for(bad)
    assert rule in bad_rules
    _, clean_rules = _rules_for(clean)
    assert rule not in clean_rules


# ---------------------------------------------------------------------------
# whole-program rules: need ``whole_program=True`` (a closed system)
# ---------------------------------------------------------------------------
@pytest.mark.parametrize(
    "rule, bad, clean",
    [
        ("dead-event", (fx.GhostHandler,), (fx.SelfWaker,)),
        ("monitor-never-notified", (fx.ForgottenMonitor,), (fx.HandledNotifier,)),
        ("unbounded-send-cycle", (fx.EchoLooper,), (fx.DampedEcho,)),
        ("unused-ignore", (fx.StalePragma,), (fx.SuppressedPopper,)),
        ("unused-ignore", (fx.StalePragma,), (fx.WildcardPragma,)),
        ("payload-missing-field", (fx.MissingFieldSender,), (fx.FieldFriendlySender,)),
        ("payload-dead-field", (fx.DeadFieldSender,), (fx.LiveFieldSender,)),
    ],
)
def test_graph_rule_fires_on_defect_and_not_on_clean_twin(rule, bad, clean):
    _, bad_rules = _rules_for(*bad, whole_program=True)
    assert rule in bad_rules
    _, clean_rules = _rules_for(*clean, whole_program=True)
    assert rule not in clean_rules


def test_unreachable_machine_needs_explicit_roots():
    # Islander is in the program but no root creates it.
    _, fired = _rules_for(
        fx.Islander, fx.SelfWaker, roots=[fx.SelfWaker], whole_program=True
    )
    assert "unreachable-machine" in fired
    # A created machine is reachable even when it is not a root.
    _, clean = _rules_for(
        fx.UnhandledSender, roots=[fx.UnhandledSender], whole_program=True
    )
    assert "unreachable-machine" not in clean


def test_graph_rules_stay_silent_on_program_fragments():
    # The same defect classes analyzed without the closed-system claim:
    # "nothing sends/notifies/creates X" is then an artifact of the fragment.
    _, fired = _rules_for(fx.GhostHandler, fx.ForgottenMonitor, fx.Islander)
    assert fired == set()
    # ... but must-cycles survive in every larger program, so they still fire.
    _, cycles = _rules_for(fx.EchoLooper)
    assert cycles == {"unbounded-send-cycle"}


def test_every_rule_id_is_covered_by_a_fixture():
    """The parametrizations above span the complete rule catalog."""
    _, fired = _rules_for(
        fx.UnhandledSender,
        fx.OrphanState,
        fx.BottomPopper,
        fx.ForeverDeferrer,
        fx.TrappedHotMonitor,
        fx.PayloadAliaser,
        fx.JitteryHandler,
    )
    _, graph_fired = _rules_for(
        fx.GhostHandler,
        fx.ForgottenMonitor,
        fx.EchoLooper,
        fx.StalePragma,
        fx.Islander,
        fx.MissingFieldSender,
        fx.DeadFieldSender,
        roots=[
            fx.GhostHandler,
            fx.ForgottenMonitor,
            fx.EchoLooper,
            fx.StalePragma,
            fx.MissingFieldSender,
            fx.DeadFieldSender,
        ],
        whole_program=True,
    )
    assert fired | graph_fired == set(RULES)


def test_clean_twins_are_fully_clean():
    report, _ = _rules_for(
        fx.HandledSender,
        fx.HandledRaiser,
        fx.HandledNotifier,
        fx.ConnectedStates,
        fx.BalancedPopper,
        fx.EventualHandler,
        fx.CoolableHotMonitor,
        fx.FreshPayloadSender,
        fx.LoopFreshSender,
        fx.SelfWaker,
        fx.DampedEcho,
        fx.WildcardPragma,
        fx.SteadyHandler,
        fx.ListFanout,
        fx.FieldFriendlySender,
        fx.LiveFieldSender,
    )
    assert report.diagnostics == []
    assert report.suppressed == []


def test_pragma_above_decorated_handler_in_nested_state_suppresses():
    """Regression: a ``# repro: ignore[...]`` comment above the *decorator*
    of a handler inside a nested ``State`` body must anchor to the handler's
    diagnostic (which points at the ``def`` line), and must not then be
    reported as an unused ignore."""
    report, fired = _rules_for(fx.SuppressedDeadHandler)
    assert fired == set()
    assert report.diagnostics == []
    assert {d.rule for d in report.suppressed} == {
        "dead-handler",
        "unreachable-state",
    }


# ---------------------------------------------------------------------------
# severities and messages
# ---------------------------------------------------------------------------
def test_severities_follow_the_catalog():
    report, _ = _rules_for(fx.UnhandledSender, fx.BottomPopper, fx.TrappedHotMonitor)
    for diagnostic in report.diagnostics:
        expected_severity, _ = RULES[diagnostic.rule]
        assert diagnostic.severity == expected_severity


def test_unhandled_event_message_names_both_machines():
    report, _ = _rules_for(fx.UnhandledSender)
    (diagnostic,) = [d for d in report.diagnostics if d.rule == "unhandled-event"]
    assert "UnhandledSender" in diagnostic.message
    assert "DeafReceiver" in diagnostic.message
    assert "Ping" in diagnostic.message
    # hoisted handler names are de-mangled for humans
    assert "_state_" not in diagnostic.message


def test_program_closure_reaches_created_machines():
    # UnhandledSender names DeafReceiver only inside self.create(...); the
    # diagnostic proves the closure pulled the receiver into the program.
    report, rules = _rules_for(fx.UnhandledSender)
    assert "unhandled-event" in rules
    assert "DeafReceiver" in report.machines


# ---------------------------------------------------------------------------
# degradation: unknowns silence rules instead of guessing
# ---------------------------------------------------------------------------
def test_control_events_are_always_handleable():
    from repro.analysis import extract_machine_model, is_handleable
    from repro.core.events import Halt, StartEvent

    model = extract_machine_model(fx.DeafReceiver)
    assert is_handleable(model, Halt)
    assert is_handleable(model, StartEvent)
    assert not is_handleable(model, fx.Ping)


def test_receive_clause_counts_as_handleable():
    from repro.analysis import extract_machine_model, is_handleable
    from repro.examplesys.harness.machines import ClientMachine
    from repro.examplesys.messages import Ack

    model = extract_machine_model(ClientMachine)
    assert Ack in model.receive_types
    assert is_handleable(model, Ack)
