"""Every rule ID fires on its seeded-defect fixture and stays silent on the
clean twin (ISSUE 6 acceptance criterion)."""

import pytest

from repro.analysis import RULES, analyze_classes

from . import fixtures as fx


def _rules_for(*classes):
    report = analyze_classes(classes)
    return report, {d.rule for d in report.diagnostics}


# ---------------------------------------------------------------------------
# per-rule: defect fixture triggers, clean twin does not
# ---------------------------------------------------------------------------
@pytest.mark.parametrize(
    "rule, bad, clean",
    [
        ("unhandled-event", fx.UnhandledSender, fx.HandledSender),
        ("unhandled-event", fx.UnhandledRaiser, fx.HandledRaiser),
        ("unhandled-event", fx.UnhandledNotifier, fx.HandledNotifier),
        ("unreachable-state", fx.OrphanState, fx.ConnectedStates),
        ("dead-handler", fx.OrphanState, fx.ConnectedStates),
        ("pop-underflow", fx.BottomPopper, fx.BalancedPopper),
        ("stuck-deferral", fx.ForeverDeferrer, fx.EventualHandler),
        ("hot-forever", fx.TrappedHotMonitor, fx.CoolableHotMonitor),
        ("payload-alias", fx.PayloadAliaser, fx.FreshPayloadSender),
        ("payload-alias", fx.LoopAliaser, fx.LoopFreshSender),
    ],
)
def test_rule_fires_on_defect_and_not_on_clean_twin(rule, bad, clean):
    _, bad_rules = _rules_for(bad)
    assert rule in bad_rules
    _, clean_rules = _rules_for(clean)
    assert rule not in clean_rules


def test_every_rule_id_is_covered_by_a_fixture():
    """The parametrization above spans the complete rule catalog."""
    _, fired = _rules_for(
        fx.UnhandledSender,
        fx.OrphanState,
        fx.BottomPopper,
        fx.ForeverDeferrer,
        fx.TrappedHotMonitor,
        fx.PayloadAliaser,
    )
    assert fired == set(RULES)


def test_clean_twins_are_fully_clean():
    report, _ = _rules_for(
        fx.HandledSender,
        fx.HandledRaiser,
        fx.HandledNotifier,
        fx.ConnectedStates,
        fx.BalancedPopper,
        fx.EventualHandler,
        fx.CoolableHotMonitor,
        fx.FreshPayloadSender,
        fx.LoopFreshSender,
    )
    assert report.diagnostics == []
    assert report.suppressed == []


# ---------------------------------------------------------------------------
# severities and messages
# ---------------------------------------------------------------------------
def test_severities_follow_the_catalog():
    report, _ = _rules_for(fx.UnhandledSender, fx.BottomPopper, fx.TrappedHotMonitor)
    for diagnostic in report.diagnostics:
        expected_severity, _ = RULES[diagnostic.rule]
        assert diagnostic.severity == expected_severity


def test_unhandled_event_message_names_both_machines():
    report, _ = _rules_for(fx.UnhandledSender)
    (diagnostic,) = [d for d in report.diagnostics if d.rule == "unhandled-event"]
    assert "UnhandledSender" in diagnostic.message
    assert "DeafReceiver" in diagnostic.message
    assert "Ping" in diagnostic.message
    # hoisted handler names are de-mangled for humans
    assert "_state_" not in diagnostic.message


def test_program_closure_reaches_created_machines():
    # UnhandledSender names DeafReceiver only inside self.create(...); the
    # diagnostic proves the closure pulled the receiver into the program.
    report, rules = _rules_for(fx.UnhandledSender)
    assert "unhandled-event" in rules
    assert "DeafReceiver" in report.machines


# ---------------------------------------------------------------------------
# degradation: unknowns silence rules instead of guessing
# ---------------------------------------------------------------------------
def test_control_events_are_always_handleable():
    from repro.analysis import extract_machine_model, is_handleable
    from repro.core.events import Halt, StartEvent

    model = extract_machine_model(fx.DeafReceiver)
    assert is_handleable(model, Halt)
    assert is_handleable(model, StartEvent)
    assert not is_handleable(model, fx.Ping)


def test_receive_clause_counts_as_handleable():
    from repro.analysis import extract_machine_model, is_handleable
    from repro.examplesys.harness.machines import ClientMachine
    from repro.examplesys.messages import Ack

    model = extract_machine_model(ClientMachine)
    assert Ack in model.receive_types
    assert is_handleable(model, Ack)
