"""Seeded-defect fixture machines for the static analyzer, one per rule ID,
each with a clean twin that must NOT trigger the rule.

These classes are never executed — the analyzer models them statically — but
they are complete, runnable machine programs on purpose: every defect here is
one the runtime would eventually surface under some schedule, which is
exactly the class of bug the analyzer is meant to catch in O(seconds).
"""

import time

from repro.core import Event, Machine, Monitor, State, on_event


class Ping(Event):
    def __init__(self, n: int) -> None:
        self.n = n


class Nudge(Event):
    """A payload-less signal event."""


class Wake(Event):
    def __init__(self, reason: str) -> None:
        self.reason = reason


# ---------------------------------------------------------------------------
# unhandled-event
# ---------------------------------------------------------------------------
class DeafReceiver(Machine):
    """Handles nothing: any Ping sent here is a guaranteed runtime error."""

    class Idle(State, initial=True):
        pass


class ListeningReceiver(Machine):
    class Idle(State, initial=True):
        @on_event(Ping)
        def on_ping(self, event: Ping) -> None:
            pass


class UnhandledSender(Machine):
    def on_start(self) -> None:
        self.peer = self.create(DeafReceiver)

    class Init(State, initial=True):
        @on_event(Nudge)
        def poke(self) -> None:
            self.send(self.peer, Ping(1))


class HandledSender(Machine):
    def on_start(self) -> None:
        self.peer = self.create(ListeningReceiver)

    class Init(State, initial=True):
        @on_event(Nudge)
        def poke(self) -> None:
            self.send(self.peer, Ping(1))


class UnhandledRaiser(Machine):
    class Init(State, initial=True):
        @on_event(Nudge)
        def kick(self) -> None:
            self.raise_event(Ping(2))


class HandledRaiser(Machine):
    class Init(State, initial=True):
        @on_event(Nudge)
        def kick(self) -> None:
            self.raise_event(Ping(2))

        @on_event(Ping)
        def on_ping(self, event: Ping) -> None:
            pass


class DeafMonitor(Monitor):
    class Watching(State, initial=True):
        pass


class AlertMonitor(Monitor):
    class Watching(State, initial=True):
        @on_event(Wake)
        def on_wake(self, event: Wake) -> None:
            pass


class UnhandledNotifier(Machine):
    class Init(State, initial=True):
        @on_event(Nudge)
        def alert(self) -> None:
            self.notify_monitor(DeafMonitor, Wake("boom"))


class HandledNotifier(Machine):
    class Init(State, initial=True):
        @on_event(Nudge)
        def alert(self) -> None:
            self.notify_monitor(AlertMonitor, Wake("boom"))


# ---------------------------------------------------------------------------
# unreachable-state / dead-handler
# ---------------------------------------------------------------------------
class OrphanState(Machine):
    class Main(State, initial=True):
        @on_event(Nudge)
        def noop(self) -> None:
            pass

    class Island(State):
        @on_event(Ping)
        def dead(self, event: Ping) -> None:
            pass


class ConnectedStates(Machine):
    class Main(State, initial=True):
        @on_event(Nudge)
        def advance(self) -> None:
            self.goto(ConnectedStates.Island)

    class Island(State):
        @on_event(Ping)
        def alive(self, event: Ping) -> None:
            pass


# ---------------------------------------------------------------------------
# pop-underflow
# ---------------------------------------------------------------------------
class BottomPopper(Machine):
    class Only(State, initial=True):
        @on_event(Nudge)
        def leave(self) -> None:
            self.pop_state()


class BalancedPopper(Machine):
    class Base(State, initial=True):
        @on_event(Nudge)
        def dive(self) -> None:
            self.push_state(BalancedPopper.Nested)

    class Nested(State):
        @on_event(Nudge)
        def surface(self) -> None:
            self.pop_state()


# ---------------------------------------------------------------------------
# stuck-deferral
# ---------------------------------------------------------------------------
class ForeverDeferrer(Machine):
    class First(State, initial=True):
        deferred = (Ping,)

        @on_event(Nudge)
        def hop(self) -> None:
            self.goto(ForeverDeferrer.Second)

    class Second(State):
        deferred = (Ping,)

        @on_event(Nudge)
        def hop_back(self) -> None:
            self.goto(ForeverDeferrer.First)


class EventualHandler(Machine):
    class First(State, initial=True):
        deferred = (Ping,)

        @on_event(Nudge)
        def hop(self) -> None:
            self.goto(EventualHandler.Second)

    class Second(State):
        @on_event(Ping)
        def drain(self, event: Ping) -> None:
            pass


# ---------------------------------------------------------------------------
# hot-forever
# ---------------------------------------------------------------------------
class TrappedHotMonitor(Monitor):
    class Calm(State, initial=True):
        @on_event(Nudge)
        def ignite(self) -> None:
            self.goto(TrappedHotMonitor.Burning)

    class Burning(State, hot=True):
        @on_event(Nudge)
        def still_burning(self) -> None:
            pass


class CoolableHotMonitor(Monitor):
    class Calm(State, initial=True):
        @on_event(Nudge)
        def ignite(self) -> None:
            self.goto(CoolableHotMonitor.Burning)

    class Burning(State, hot=True):
        @on_event(Ping)
        def cool(self, event: Ping) -> None:
            self.goto(CoolableHotMonitor.Calm)


# ---------------------------------------------------------------------------
# payload-alias
# ---------------------------------------------------------------------------
class PayloadAliaser(Machine):
    def on_start(self) -> None:
        self.peer = self.create(ListeningReceiver)
        self.other = self.create(ListeningReceiver)

    class Init(State, initial=True):
        @on_event(Nudge)
        def fan_out(self) -> None:
            shared = Ping(1)
            self.send(self.peer, shared)
            self.send(self.other, shared)

        @on_event(Ping)
        def mutate_after_send(self, event: Ping) -> None:
            self.send(self.peer, event)
            event.n += 1

        @on_event(Wake)
        def retain_after_send(self, event: Wake) -> None:
            self.last_wake = event
            self.send(self.peer, Ping(0))
            self.send(self.other, event)


class FreshPayloadSender(Machine):
    def on_start(self) -> None:
        self.peer = self.create(ListeningReceiver)
        self.other = self.create(ListeningReceiver)

    class Init(State, initial=True):
        @on_event(Nudge)
        def fan_out(self) -> None:
            self.send(self.peer, Ping(1))
            self.send(self.other, Ping(1))

        @on_event(Ping)
        def forward_once(self, event: Ping) -> None:
            self.send(self.peer, event)


class LoopAliaser(Machine):
    def on_start(self) -> None:
        self.peer = self.create(ListeningReceiver)
        self.other = self.create(ListeningReceiver)

    class Init(State, initial=True):
        @on_event(Nudge)
        def broadcast(self) -> None:
            shared = Ping(7)
            for target in (self.peer, self.other):
                self.send(target, shared)


class LoopFreshSender(Machine):
    def on_start(self) -> None:
        self.peer = self.create(ListeningReceiver)
        self.other = self.create(ListeningReceiver)

    class Init(State, initial=True):
        @on_event(Nudge)
        def broadcast(self) -> None:
            for target in (self.peer, self.other):
                fresh = Ping(7)
                self.send(target, fresh)


# ---------------------------------------------------------------------------
# suppression
# ---------------------------------------------------------------------------
class SuppressedPopper(Machine):
    """Same defect as :class:`BottomPopper`, silenced inline."""

    class Only(State, initial=True):
        @on_event(Nudge)
        def leave(self) -> None:
            self.pop_state()  # repro: ignore[pop-underflow]


class SuppressedSender(Machine):
    """Same defect as :class:`UnhandledSender`, silenced by a comment line."""

    def on_start(self) -> None:
        self.peer = self.create(DeafReceiver)

    class Init(State, initial=True):
        @on_event(Nudge)
        def poke(self) -> None:
            # repro: ignore[unhandled-event]
            self.send(self.peer, Ping(1))


# ---------------------------------------------------------------------------
# whole-program (communication-graph) rules — these fire only under
# ``analyze_classes(..., whole_program=True)``; a fragment cannot prove that
# a producer/creator/notifier is truly absent
# ---------------------------------------------------------------------------
class GhostHandler(Machine):
    """Handles ``Wake``, but nothing in the program ever produces one."""

    class Idle(State, initial=True):
        @on_event(Wake)
        def rouse(self, event: Wake) -> None:
            pass


class SelfWaker(Machine):
    """Clean twin: produces the one event type it handles."""

    def on_start(self) -> None:
        self.raise_event(Wake("boot"))

    class Idle(State, initial=True):
        @on_event(Wake)
        def rouse(self, event: Wake) -> None:
            pass


class Islander(Machine):
    """Reachable only if some root creates it — nothing does."""

    class Alone(State, initial=True):
        pass


class ForgottenMonitor(Monitor):
    """Part of the program, but no machine ever notifies it."""

    class Watching(State, initial=True):
        pass


class EchoLooper(Machine):
    """Unconditionally re-raises the event it handles: the dispatch re-feeds
    itself forever."""

    class Loop(State, initial=True):
        @on_event(Ping)
        def echo(self, event: Ping) -> None:
            self.raise_event(Ping(event.n))


class DampedEcho(Machine):
    """Clean twin: the re-raise is conditional, so the loop is not a must-cycle."""

    class Loop(State, initial=True):
        @on_event(Ping)
        def echo(self, event: Ping) -> None:
            if event.n > 0:
                self.raise_event(Ping(event.n - 1))


# ---------------------------------------------------------------------------
# payload-missing-field / payload-dead-field — field-sensitive dataflow rules;
# whole-program only (a fragment cannot prove what fields producers set)
# ---------------------------------------------------------------------------
class Count(Event):
    def __init__(self, n: int) -> None:
        self.n = n


class Status(Event):
    def __init__(self, code: int, detail: str) -> None:
        self.code = code
        self.detail = detail


class CountMisreader(Machine):
    """Reads ``event.total`` off an event whose producers only set ``n`` —
    a guaranteed AttributeError on the first dispatch."""

    class Idle(State, initial=True):
        @on_event(Count)
        def tally(self, event) -> None:
            self.total = event.total


class CountReader(Machine):
    """Clean twin: reads the field producers actually set."""

    class Idle(State, initial=True):
        @on_event(Count)
        def tally(self, event) -> None:
            self.total = event.n


class MissingFieldSender(Machine):
    def on_start(self) -> None:
        self.peer = self.create(CountMisreader)
        self.send(self.peer, Count(1))


class FieldFriendlySender(Machine):
    def on_start(self) -> None:
        self.peer = self.create(CountReader)
        self.send(self.peer, Count(1))


class StatusHalfReader(Machine):
    """Only ever reads ``code``; ``detail`` is dead payload."""

    class Idle(State, initial=True):
        @on_event(Status)
        def note(self, event) -> None:
            self.code = event.code


class StatusFullReader(Machine):
    """Clean twin: every constructed field is read somewhere."""

    class Idle(State, initial=True):
        @on_event(Status)
        def note(self, event) -> None:
            self.code = event.code
            self.detail = event.detail


class DeadFieldSender(Machine):
    def on_start(self) -> None:
        self.peer = self.create(StatusHalfReader)
        self.send(self.peer, Status(200, "ok"))


class LiveFieldSender(Machine):
    def on_start(self) -> None:
        self.peer = self.create(StatusFullReader)
        self.send(self.peer, Status(200, "ok"))


# ---------------------------------------------------------------------------
# nondeterministic-handler — determinism lint (must-facts, no gating)
# ---------------------------------------------------------------------------
class JitteryHandler(Machine):
    """Reads the wall clock inside a handler: replay and shrinking see a
    different value on every execution."""

    class Idle(State, initial=True):
        @on_event(Nudge)
        def stamp(self) -> None:
            self.seen_at = time.time()


class SteadyHandler(Machine):
    """Clean twin: a deterministic function of machine state."""

    class Idle(State, initial=True):
        @on_event(Nudge)
        def stamp(self) -> None:
            self.seen_at = getattr(self, "seen_at", 0) + 1


class SetFanout(Machine):
    """Sends while iterating a ``set`` of machine ids: the send order (and
    with it every schedule and fingerprint) depends on interpreter hash
    order."""

    def on_start(self) -> None:
        self.peers = {
            self.create(ListeningReceiver),
            self.create(ListeningReceiver),
        }

    class Init(State, initial=True):
        @on_event(Nudge)
        def fan_out(self) -> None:
            for peer in self.peers:
                self.send(peer, Ping(1))


class ListFanout(Machine):
    """Clean twin: list iteration order is insertion order, deterministic."""

    def on_start(self) -> None:
        self.peers = [
            self.create(ListeningReceiver),
            self.create(ListeningReceiver),
        ]

    class Init(State, initial=True):
        @on_event(Nudge)
        def fan_out(self) -> None:
            for peer in self.peers:
                self.send(peer, Ping(1))


class SuppressedDeadHandler(Machine):
    """Same defects as :class:`OrphanState`, silenced inline — the
    dead-handler pragma sits *above the decorator* of a handler in a nested
    ``State`` body and must attach to the diagnostic's ``def`` anchor."""

    class Main(State, initial=True):
        @on_event(Nudge)
        def noop(self) -> None:
            pass

    class Island(State):  # repro: ignore[unreachable-state]
        # repro: ignore[dead-handler]
        @on_event(Ping)
        def dead(self, event: Ping) -> None:
            pass


class StalePragma(Machine):
    """Carries a pragma that silences nothing (the handler is defect-free)."""

    class Only(State, initial=True):
        @on_event(Nudge)
        def tick(self) -> None:
            self.count = 1  # repro: ignore[pop-underflow]


class WildcardPragma(Machine):
    """Wildcard pragmas are exempt from unused-ignore by design."""

    class Only(State, initial=True):
        @on_event(Nudge)
        def tick(self) -> None:
            self.count = 1  # repro: ignore[*]
