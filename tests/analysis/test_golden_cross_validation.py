"""Cross-validate the analyzer against the PR 5 golden traces.

Re-runs the golden sweep (same scenarios, strategies, seeds and config as
``tests/core/test_runtime_split_equivalence.py``) with a
:class:`~repro.core.coverage.CoverageTracker` attached, checks the traces
still match the recorded SHA-256 digests (coverage must not perturb
execution), and then asserts that every ``(machine, state, event)`` dispatch
the runtime actually performed is classified as *handleable* by the static
analyzer — i.e. the ``unhandled-event`` rule can produce zero false
positives on any execution we know is real.
"""

import hashlib
import json
import os

import pytest

from repro.analysis import build_program, discover_classes, is_handleable
from repro.core import TestRuntime
from repro.core.coverage import CoverageTracker
from repro.core.declarations import iter_handled_event_types
from repro.core.events import Halt, StartEvent, TimerTick
from repro.core.registry import get_scenario, load_builtin_scenarios
from repro.core.strategy import create_strategy

ALL_STRATEGIES = ["random", "pct", "round-robin", "dfs"]
SCENARIOS = ["examplesys/safety-bug", "examplesys/fixed"]

_GOLDENS_PATH = os.path.join(
    os.path.dirname(__file__), "..", "core", "data", "runtime_split_goldens.json"
)


def _explore_with_coverage(scenario_name, strategy_name, iterations=5):
    testcase = get_scenario(scenario_name)
    config = testcase.default_config(
        strategy=strategy_name, seed=29, iterations=iterations,
        max_steps=300, stop_at_first_bug=False, max_bugs=3,
    )
    strategy = create_strategy(config)
    coverage = CoverageTracker()
    digests = []
    for iteration in range(iterations):
        strategy.prepare_iteration(iteration)
        if strategy.exhausted:
            break
        runtime = TestRuntime(strategy, config, coverage=coverage)
        runtime.run(testcase.build())
        digests.append(
            hashlib.sha256(runtime.trace.to_json().encode()).hexdigest()
        )
    return digests, coverage


def _event_types_by_name(program):
    """Every event type the program can dispatch, keyed by class name."""
    by_name = {}
    for event_type in (Halt, StartEvent, TimerTick):
        by_name[event_type.__name__] = event_type
    for model in program:
        for event_type in iter_handled_event_types(model.spec):
            by_name[event_type.__name__] = event_type
        for types_by_state in (model.spec.deferred, model.spec.ignored):
            for declared in types_by_state.values():
                for event_type in declared:
                    by_name[event_type.__name__] = event_type
        for event_type in model.receive_types:
            by_name[event_type.__name__] = event_type
        for site in model.sends:
            if site.event_type is not None:
                by_name[site.event_type.__name__] = site.event_type
        for site in model.raises:
            if site.event_type is not None:
                by_name[site.event_type.__name__] = site.event_type
    return by_name


@pytest.mark.parametrize("strategy_name", ALL_STRATEGIES)
@pytest.mark.parametrize("scenario_name", SCENARIOS)
def test_every_golden_dispatch_is_classified_handleable(scenario_name, strategy_name):
    load_builtin_scenarios()
    with open(_GOLDENS_PATH) as handle:
        goldens = json.load(handle)[f"{scenario_name}|{strategy_name}"]

    digests, coverage = _explore_with_coverage(scenario_name, strategy_name)
    # attaching the coverage tracker must not perturb the explored schedules
    assert digests == goldens["trace_sha256"]
    assert coverage.handled, "golden sweep recorded no dispatches"

    program = build_program(discover_classes(get_scenario(scenario_name).build))
    models_by_name = {model.name: model for model in program}
    events_by_name = _event_types_by_name(program)

    for (machine_name, _state, event_name), count in coverage.handled.items():
        assert count > 0
        model = models_by_name.get(machine_name)
        assert model is not None, (
            f"runtime dispatched on {machine_name}, which scenario discovery "
            f"never surfaced"
        )
        event_type = events_by_name.get(event_name)
        assert event_type is not None, (
            f"dispatched event type {event_name} is invisible to the analyzer"
        )
        assert is_handleable(model, event_type), (
            f"false unhandled-event positive: {machine_name} handled "
            f"{event_name} at runtime but the analyzer calls it unhandleable"
        )
