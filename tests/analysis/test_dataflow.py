"""Unit coverage for the field-sensitive payload dataflow layer (PR 9).

Ctor-field summaries, handler read-sets, producer sites (with resolved
delivery targets) and the joined must/may queries — including every
degradation path the conservatism discipline promises.
"""

from dataclasses import dataclass
from typing import NamedTuple

import pytest

from repro.analysis import (
    build_dataflow,
    build_program,
    clear_dataflow_cache,
    event_ctor_fields,
    event_has_own_methods,
)
from repro.core import Event, Machine, State, on_event

from . import fixtures as fx


@pytest.fixture(autouse=True)
def _fresh_ctor_cache():
    clear_dataflow_cache()
    yield
    clear_dataflow_cache()


# ---------------------------------------------------------------------------
# event_ctor_fields: (must, may) summaries per constructor style
# ---------------------------------------------------------------------------
class PlainEvent(Event):
    def __init__(self, a, b):
        self.a = a
        self.b = b


class ConditionalEvent(Event):
    def __init__(self, a, flag=False):
        self.a = a
        if flag:
            self.extra = 1


class EarlyReturnEvent(Event):
    def __init__(self, a):
        if a is None:
            return
        self.a = a


class ClassBodyEvent(Event):
    kind = "static"


@dataclass
class DataEvent(Event):
    x: int
    y: str


class TupleEvent(Event, NamedTuple("TupleEventBase", [("p", int), ("q", int)])):
    pass


class SetattrEvent(Event):
    def __init__(self, **kwargs):
        for key, value in kwargs.items():
            setattr(self, key, value)


class EscapingSelfEvent(Event):
    def __init__(self, registry):
        registry.append(self)


class MethodfulEvent(Event):
    def __init__(self, a):
        self.a = a

    def double(self):
        return self.a * 2


def test_plain_init_fields_are_must_and_may():
    assert event_ctor_fields(PlainEvent) == ({"a", "b"}, {"a", "b"})


def test_conditional_assignment_is_may_but_not_must():
    must, may = event_ctor_fields(ConditionalEvent)
    assert must == {"a"}
    assert may == {"a", "extra"}


def test_early_return_demotes_every_field_to_may():
    must, may = event_ctor_fields(EarlyReturnEvent)
    assert must == frozenset()
    assert may == {"a"}


def test_class_body_data_attributes_always_count():
    assert event_ctor_fields(ClassBodyEvent) == ({"kind"}, {"kind"})


def test_dataclass_and_namedtuple_fields_are_exact():
    assert event_ctor_fields(DataEvent) == ({"x", "y"}, {"x", "y"})
    assert event_ctor_fields(TupleEvent) == ({"p", "q"}, {"p", "q"})


def test_dynamic_and_escaping_ctors_are_opaque():
    assert event_ctor_fields(SetattrEvent) == (None, None)
    assert event_ctor_fields(EscapingSelfEvent) == (None, None)


def test_event_has_own_methods():
    assert event_has_own_methods(MethodfulEvent)
    assert not event_has_own_methods(PlainEvent)


# ---------------------------------------------------------------------------
# build_dataflow: handler reads, producer sites, joined queries
# ---------------------------------------------------------------------------
class Keeper(Machine):
    """The event parameter escapes into machine state: read-opaque."""

    class Only(State, initial=True):
        @on_event(PlainEvent)
        def keep(self, event):
            self.last = event


class Tagger(Machine):
    """Attaches a post-construction field before sending to itself."""

    class Only(State, initial=True):
        @on_event(PlainEvent)
        def tag(self, event):
            evt = ConditionalEvent(event.a)
            evt.note = "seen"
            self.raise_event(evt)

        @on_event(ConditionalEvent)
        def read(self, event):
            self.note = event.note


def _flow(*classes):
    return build_dataflow(build_program(classes))


def test_handler_reads_track_fields_and_escapes():
    flow = _flow(fx.MissingFieldSender)
    (entry,) = [r for r in flow.handler_reads if r.owner is fx.CountMisreader]
    assert entry.event_type is fx.Count
    assert entry.fields == {"total"}

    escaped = _flow(Keeper)
    (entry,) = [r for r in escaped.handler_reads if r.owner is Keeper]
    assert entry.fields is None
    assert escaped.fields_required(PlainEvent) is None


def test_producer_sites_resolve_fields_and_delivery_target():
    flow = _flow(fx.MissingFieldSender)
    (site,) = flow.producers[fx.Count]
    assert site.owner is fx.MissingFieldSender
    assert site.fields == {"n"}
    assert site.target is fx.CountMisreader
    assert not site.forwards


def test_raise_sites_target_the_raising_machine_itself():
    flow = _flow(Tagger)
    (site,) = flow.producers[ConditionalEvent]
    assert site.target is Tagger
    assert site.extra_fields == {"note"}


def test_fields_provided_joins_ctor_may_with_site_extras():
    flow = _flow(Tagger)
    assert flow.fields_provided(ConditionalEvent) == {"a", "extra", "note"}
    assert flow.fields_provided(SetattrEvent) is None


def test_fields_required_unions_handler_reads():
    flow = _flow(fx.DeadFieldSender)
    assert flow.fields_required(fx.Status) == {"code"}


class OutsideCaller(Machine):
    """Calls into a non-framework module: effects the model cannot see."""

    class Only(State, initial=True):
        @on_event(PlainEvent)
        def go(self, event):
            import random

            random.random()


def test_external_methods_clear_the_resolved_flag():
    assert _flow(fx.MissingFieldSender).resolved
    assert not _flow(OutsideCaller).resolved
    # set iteration is a determinism finding, not an external effect: it must
    # not poison payload resolution
    assert _flow(fx.SetFanout).resolved


def test_nondet_findings_surface_reason_and_site():
    flow = _flow(fx.JitteryHandler)
    (finding,) = flow.nondet
    assert finding.owner is fx.JitteryHandler
    assert "time.time" in finding.reason
    assert finding.ref.line > 0
