"""Whole-program communication graph: contents, byte-stability, DOT output."""

import json

from repro.analysis import clear_model_cache, graph_for_scenarios
from repro.core.registry import get_scenario, load_builtin_scenarios


def _graph():
    load_builtin_scenarios()
    return graph_for_scenarios([get_scenario("vnext/extent-node-liveness")])


def test_graph_covers_the_vnext_program():
    payload = _graph().to_dict()
    machine_keys = {n["key"] for n in payload["nodes"] if n["kind"] != "event"}
    assert "repro.vnext.harness.machines.TestingDriverMachine" in machine_keys
    assert "repro.vnext.harness.machines.ExtentNodeMachine" in machine_keys
    assert "repro.vnext.harness.monitor.RepairMonitor" in machine_keys
    assert "repro.core.timer.TimerMachine" in machine_keys

    edges = payload["edges"]
    assert {"send", "create", "notify"} <= {e["kind"] for e in edges}
    # the driver schedules its own failure injections ...
    assert any(
        e["kind"] == "send"
        and e["src"].endswith("TestingDriverMachine")
        and (e["dst"] or "").endswith("TestingDriverMachine")
        and e["event"].endswith("InjectFailure")
        for e in edges
    )
    # ... and failed nodes notify the liveness monitor
    assert any(
        e["kind"] == "notify"
        and e["src"].endswith("ExtentNodeMachine")
        and (e["dst"] or "").endswith("RepairMonitor")
        for e in edges
    )


def test_graph_edges_carry_source_anchors():
    for edge in _graph().to_dict()["edges"]:
        path, _, line = edge["anchor"].rpartition(":")
        assert path.endswith(".py")
        assert int(line) > 0


def test_graph_json_is_byte_stable_across_re_extraction():
    first = _graph().to_json()
    clear_model_cache()  # force full re-extraction, not a cache echo
    second = _graph().to_json()
    assert first == second
    json.loads(first)  # and it is well-formed JSON


def test_graph_dot_renders_machines_and_edges():
    dot = _graph().to_dot()
    assert dot.startswith("digraph")
    assert '"repro.vnext.harness.machines.TestingDriverMachine"' in dot
    assert "->" in dot
    assert dot == _graph().to_dot()  # deterministic
