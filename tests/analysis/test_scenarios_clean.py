"""The repo's own harnesses are analyzer-clean, and the CLI gates on that.

This is the test-suite mirror of the CI ``analyze`` job: every machine
reachable from every registered scenario must produce zero unsuppressed
diagnostics at ``--fail-on warning``.
"""

import json

from repro.analysis import analyze_scenarios, discover_classes
from repro.cli import main
from repro.core.registry import all_scenarios, load_builtin_scenarios


def _all_cases():
    load_builtin_scenarios()
    return all_scenarios()


def test_all_registered_scenarios_are_analyzer_clean():
    cases = _all_cases()
    assert len(cases) >= 30
    report = analyze_scenarios(cases)
    assert report.diagnostics == [], "\n" + report.render()
    # the current harnesses are clean without any inline suppressions
    assert report.suppressed == []


def test_discovery_finds_every_case_study_harness():
    cases = _all_cases()
    classes = set()
    for case in cases:
        classes.update(discover_classes(case.build))
    names = {cls.__name__ for cls in classes}
    # one load-bearing machine or monitor per case-study package
    assert "ServerMachine" in names  # examplesys
    assert "TestingDriverMachine" in names  # vnext
    assert "MigratorMachine" in names  # migratingtable
    assert "FabricTestDriver" in names  # fabric


def test_discovery_handles_lambda_and_closure_factories():
    # migratingtable registers via lambdas, vnext via nested closures; both
    # forms have no parseable standalone source and must still resolve.
    cases = _all_cases()
    migrating = next(c for c in cases if c.name.startswith("migratingtable/"))
    vnext = next(c for c in cases if c.name.startswith("vnext/"))
    assert any(cls.__name__ == "MigratorMachine" for cls in discover_classes(migrating.build))
    assert any(cls.__name__ == "RepairMonitor" for cls in discover_classes(vnext.build))


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------
def test_analyze_cli_all_scenarios_gate(capsys):
    assert main(["analyze", "--fail-on", "warning"]) == 0
    out = capsys.readouterr().out
    assert "0 error(s), 0 warning(s)" in out


def test_analyze_cli_single_scenario_json(capsys):
    assert main(["analyze", "--scenario", "examplesys/safety-bug", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["scenarios"] == ["examplesys/safety-bug"]
    assert "ServerMachine" in payload["machines"]
    assert payload["diagnostics"] == []


def test_analyze_cli_json_is_byte_stable(capsys):
    from repro.analysis import clear_model_cache

    assert main(["analyze", "--json"]) == 0
    first = capsys.readouterr().out
    clear_model_cache()
    assert main(["analyze", "--json"]) == 0
    second = capsys.readouterr().out
    assert first == second


def test_analyze_cli_unknown_scenario_errors():
    assert main(["analyze", "--scenario", "no/such/scenario"]) == 2


def test_analyze_cli_import_option(tmp_path, capsys):
    # the basename becomes the imported module's name and is cached process
    # wide, so keep it distinct from other tests' --import fixtures
    module = tmp_path / "analysis_gate_scenarios.py"
    module.write_text(
        "from repro.core import Event, Machine, State, on_event\n"
        "from repro.core.registry import TestCase, register\n"
        "\n"
        "class Boom(Event):\n"
        "    def __init__(self, n):\n"
        "        self.n = n\n"
        "\n"
        "class Mute(Machine):\n"
        "    class Idle(State, initial=True):\n"
        "        pass\n"
        "\n"
        "class Shouter(Machine):\n"
        "    def on_start(self):\n"
        "        self.peer = self.create(Mute)\n"
        "\n"
        "    class Init(State, initial=True):\n"
        "        @on_event(Boom)\n"
        "        def go(self, event):\n"
        "            self.send(self.peer, Boom(1))\n"
        "\n"
        "def build():\n"
        "    def entry(runtime):\n"
        "        runtime.create_machine(Shouter)\n"
        "    return entry\n"
        "\n"
        "register(TestCase(name='extra/shouter', build=build))\n"
    )
    code = main(
        ["analyze", "--import", str(module), "--scenario", "extra/shouter", "--json"]
    )
    payload = json.loads(capsys.readouterr().out)
    assert code == 1  # the seeded unhandled-event is an error
    rules = [d["rule"] for d in payload["diagnostics"]]
    # the seeded module also trips the PR 9 dataflow rule: Boom.n is
    # populated on every construction but no handler ever reads it
    assert rules == ["payload-dead-field", "unhandled-event"]


# ---------------------------------------------------------------------------
# registry metadata rides along (--json consumers)
# ---------------------------------------------------------------------------
def test_list_scenarios_json_carries_module(capsys):
    assert main(["list-scenarios", "--json"]) == 0
    cases = json.loads(capsys.readouterr().out)
    assert all("module" in case for case in cases)
    vnext = next(c for c in cases if c["name"] == "vnext/replication")
    assert vnext["module"] == "repro.vnext.harness.scenarios"
