"""The analyzer sees through declaration style (ISSUE 9, satellite c).

:mod:`repro.examplesys.harness.legacy_machines` keeps the pre-DSL
string-state form of the §2.2 harness machines alive, verbatim except for the
declaration syntax.  The runtime ``dsl-compat`` test already proves both
forms produce byte-identical traces; these tests prove the *static* layers
agree too — extraction, payload dataflow and independence footprints must be
invariant under the DSL port (modulo the module path and the DSL's hoisted
handler names, neither of which carries semantics).
"""

import json

from repro.analysis import (
    build_dataflow,
    build_independence_table,
    build_program,
    extract_machine_model,
    is_handleable,
    reachable_states,
    type_key,
)
from repro.core.events import Halt, StartEvent, TimerTick
from repro.core.timer import TimerMachine
from repro.examplesys.harness import legacy_machines as legacy
from repro.examplesys.harness import machines as dsl
from repro.examplesys.messages import (
    Ack,
    ClientRequest,
    ReplicationRequest,
    SyncReport,
)

PAIRS = [
    (dsl.ServerMachine, legacy.ServerMachine),
    (dsl.StorageNodeMachine, legacy.StorageNodeMachine),
    (dsl.ClientMachine, legacy.ClientMachine),
]

EVENTS = [
    Ack,
    ClientRequest,
    ReplicationRequest,
    SyncReport,
    TimerTick,
    StartEvent,
    Halt,
]


def test_extraction_agrees_across_declaration_forms():
    for dsl_cls, legacy_cls in PAIRS:
        dsl_model = extract_machine_model(dsl_cls)
        legacy_model = extract_machine_model(legacy_cls)
        assert dsl_model.initial == legacy_model.initial
        assert reachable_states(dsl_model) == reachable_states(legacy_model)
        assert dsl_model.ignore_unhandled == legacy_model.ignore_unhandled
        assert dsl_model.receive_types == legacy_model.receive_types
        for event in EVENTS:
            assert is_handleable(dsl_model, event) == is_handleable(
                legacy_model, event
            ), (dsl_cls.__name__, event.__name__)


def _flow_facts(root):
    """Dataflow facts normalized to be declaration-form independent:
    handler method names (mangled by the DSL hoist) are dropped, classes are
    named rather than referenced."""
    flow = build_dataflow(build_program([root]))
    reads = sorted(
        (
            read.owner.__name__,
            read.event_type.__name__,
            None if read.fields is None else tuple(sorted(read.fields)),
        )
        for read in flow.handler_reads
    )
    producers = sorted(
        (
            event_type.__name__,
            site.owner.__name__,
            tuple(sorted(site.fields)),
            tuple(sorted(site.extra_fields)),
            site.forwards,
            None if site.target is None else site.target.__name__,
        )
        for event_type, sites in flow.producers.items()
        for site in sites
    )
    return flow.resolved, reads, producers


def test_payload_dataflow_agrees_across_declaration_forms():
    assert _flow_facts(dsl.ServerMachine) == _flow_facts(legacy.ServerMachine)


def test_independence_footprints_agree_across_declaration_forms():
    dsl_table = build_independence_table(build_program([dsl.ServerMachine]))
    legacy_table = build_independence_table(
        build_program([legacy.ServerMachine])
    )
    # the only legitimate difference is the module path in the type keys
    normalized = json.dumps(legacy_table, sort_keys=True).replace(
        ".legacy_machines.", ".machines."
    )
    assert normalized == json.dumps(dsl_table, sort_keys=True)
    # and the table is not vacuously equal: the shared timer machinery keeps
    # concrete footprints on both sides
    timer_key = type_key(TimerMachine)
    assert any(
        not entry.get("opaque")
        for entry in dsl_table["machines"][timer_key]["events"].values()
    )
