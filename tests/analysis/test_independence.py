"""The static independence table: concrete footprints, degradation, stability.

The discipline under test is *degrade to dependent*: every construct the
extractor cannot prove harmless must surface as an ``{"opaque": true}`` entry
(the ``dpor-lite`` consumer treats opaque — and any lookup miss — as
conflicting with everything), while the constructs the vNext harness actually
uses stay concrete so pruning has something to work with.
"""

import json
import random

from repro.analysis import (
    TABLE_VERSION,
    clear_model_cache,
    independence_for_classes,
    independence_for_scenarios,
)
from repro.core import Event, Machine, State, on_event
from repro.core.registry import get_scenario, load_builtin_scenarios


def _vnext_table():
    load_builtin_scenarios()
    return independence_for_scenarios([get_scenario("vnext/extent-node-liveness")])


def _events(table, machine_key):
    return table["machines"][machine_key]["events"]


def test_vnext_footprints_are_concrete_where_it_matters():
    table = _vnext_table()
    assert table["version"] == TABLE_VERSION

    timer = _events(table, "repro.core.timer.TimerMachine")
    # wall-clock-only branches are mode-dead under the test runtime, so the
    # timer's start handler touches nothing but itself
    assert timer["repro.core.events.StartEvent"] == {
        "creates": False, "monitors": [], "sends": ["self"], "queries": [],
    }
    loop = timer["repro.core.timer._TimerLoop"]
    assert loop["sends"] == ["self", {"attr": "target"}]
    assert loop["queries"] == [{"attr": "target"}]

    driver = _events(table, "repro.vnext.harness.machines.TestingDriverMachine")
    inject = driver["repro.vnext.harness.events.InjectFailure"]
    # the victim is drawn from the confined node_machines dict: the footprint
    # names the container, resolved to all of its members at choice time
    assert inject["sends"] == [{"attr-values": "node_machines"}]
    assert inject["creates"] is True
    assert inject["monitors"] == ["repro.vnext.harness.monitor.RepairMonitor"]

    node = _events(table, "repro.vnext.harness.machines.ExtentNodeMachine")
    failure = node["repro.vnext.harness.events.FailureEvent"]
    assert failure["monitors"] == ["repro.vnext.harness.monitor.RepairMonitor"]
    assert {"attr": "heartbeat_timer"} in failure["sends"]

    # Halt dispatches with no on_halt effects are universally clean
    manager = _events(table, "repro.vnext.harness.machines.ExtentManagerMachine")
    assert manager["repro.core.events.Halt"]["sends"] == []


def test_vnext_wrapped_component_dispatches_stay_opaque():
    # ExtentManagerMachine forwards messages into the wrapped real
    # ExtentManager component — effects outside the event model
    manager = _events(
        _vnext_table(), "repro.vnext.harness.machines.ExtentManagerMachine"
    )
    assert manager["repro.vnext.harness.events.ExtentManagerMessageEvent"] == {
        "opaque": True
    }


# ---------------------------------------------------------------------------
# degradation fixtures: each unprovable construct must poison its entry
# ---------------------------------------------------------------------------
class Poke(Event):
    pass


class ExternalCaller(Machine):
    """Calls into a non-framework module: arbitrary effects."""

    class Only(State, initial=True):
        @on_event(Poke)
        def jitter(self) -> None:
            random.random()


class TargetRebinder(Machine):
    """Rebinds the attribute its send resolves through, mid-dispatch."""

    class Only(State, initial=True):
        @on_event(Poke)
        def retarget(self) -> None:
            self.peer = self.create(ExternalCaller)
            self.send(self.peer, Poke())


class CleanSelfSender(Machine):
    class Only(State, initial=True):
        @on_event(Poke)
        def echo(self) -> None:
            self.send(self.id, Poke())


def _entry_for(cls):
    table = independence_for_classes([cls])
    key = f"{cls.__module__}.{cls.__qualname__}"
    return table["machines"][key]["events"][f"{Poke.__module__}.Poke"]


def test_external_call_degrades_the_dispatch_to_opaque():
    assert _entry_for(ExternalCaller) == {"opaque": True}


def test_rebound_target_attribute_degrades_to_opaque():
    assert _entry_for(TargetRebinder) == {"opaque": True}


def test_self_send_stays_concrete():
    entry = _entry_for(CleanSelfSender)
    assert entry["sends"] == ["self"]
    assert entry["creates"] is False


def test_table_is_json_safe_and_byte_stable():
    first = json.dumps(_vnext_table(), sort_keys=True)
    clear_model_cache()
    second = json.dumps(_vnext_table(), sort_keys=True)
    assert first == second
