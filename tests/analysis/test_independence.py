"""The static independence table: concrete footprints, degradation, stability.

The discipline under test is *degrade to dependent*: every construct the
extractor cannot prove harmless must surface as an ``{"opaque": true}`` entry
(the ``dpor-lite`` consumer treats opaque — and any lookup miss — as
conflicting with everything), while the constructs the vNext harness actually
uses stay concrete so pruning has something to work with.

Version 2 splits footprints into ``writes``/``reads`` and adds
``{"event-field": name}`` items; version 1 (the PR 7 format) stays buildable
with its historical — strictly coarser — external discipline, which the
benchmark gate compares against.
"""

import json
import random

from repro.analysis import (
    LEGACY_TABLE_VERSION,
    TABLE_VERSION,
    clear_model_cache,
    independence_for_classes,
    independence_for_scenarios,
)
from repro.core import Event, Machine, State, on_event
from repro.core.registry import get_scenario, load_builtin_scenarios


def _vnext_table(version=TABLE_VERSION):
    load_builtin_scenarios()
    cases = [get_scenario("vnext/extent-node-liveness")]
    if version == TABLE_VERSION:
        return independence_for_scenarios(cases)
    from repro.analysis import build_independence_table, build_program
    from repro.analysis.runner import _discover

    classes, _produced = _discover(cases)
    return build_independence_table(build_program(classes), version=version)


def _events(table, machine_key):
    return table["machines"][machine_key]["events"]


def test_vnext_footprints_are_concrete_where_it_matters():
    table = _vnext_table()
    assert table["version"] == TABLE_VERSION

    timer = _events(table, "repro.core.timer.TimerMachine")
    # wall-clock-only branches are mode-dead under the test runtime, so the
    # timer's start handler touches nothing but itself
    assert timer["repro.core.events.StartEvent"] == {
        "creates": False, "monitors": [], "writes": ["self"], "reads": [],
    }
    loop = timer["repro.core.timer._TimerLoop"]
    assert loop["writes"] == ["self", {"attr": "target"}]
    assert loop["reads"] == [{"attr": "target"}]

    driver = _events(table, "repro.vnext.harness.machines.TestingDriverMachine")
    inject = driver["repro.vnext.harness.events.InjectFailure"]
    # the victim is drawn from the confined node_machines dict: the footprint
    # names the container, resolved to all of its members at choice time
    assert inject["writes"] == [{"attr-values": "node_machines"}]
    assert inject["creates"] is True
    assert inject["monitors"] == ["repro.vnext.harness.monitor.RepairMonitor"]

    node = _events(table, "repro.vnext.harness.machines.ExtentNodeMachine")
    failure = node["repro.vnext.harness.events.FailureEvent"]
    assert failure["monitors"] == ["repro.vnext.harness.monitor.RepairMonitor"]
    assert {"attr": "heartbeat_timer"} in failure["writes"]

    # Halt dispatches with no on_halt effects are universally clean
    manager = _events(table, "repro.vnext.harness.machines.ExtentManagerMachine")
    assert manager["repro.core.events.Halt"]["writes"] == []


def test_v2_event_field_targets_resolve_through_the_payload():
    # the copy-request handler replies to event.requester: a v1 table cannot
    # name that machine, v2 carries the field and resolves it at choice time
    node = _events(
        _vnext_table(), "repro.vnext.harness.machines.ExtentNodeMachine"
    )
    copy_request = node["repro.vnext.harness.events.CopyRequestEvent"]
    assert copy_request["writes"] == [{"event-field": "requester"}]
    # inbox queries land in reads, not writes: read/read overlaps commute
    tick = node["repro.core.events.TimerTick"]
    assert tick["reads"] == [{"attr": "extent_manager"}]
    assert tick["writes"] == [{"attr": "extent_manager"}]


def test_v1_table_keeps_the_legacy_shape_and_discipline():
    table = _vnext_table(version=LEGACY_TABLE_VERSION)
    assert table["version"] == LEGACY_TABLE_VERSION
    node = _events(table, "repro.vnext.harness.machines.ExtentNodeMachine")
    # under the v1 external discipline the node's handlers (which call into
    # the wrapped ExtentNode component) all degrade to opaque...
    assert node["repro.vnext.harness.events.CopyRequestEvent"] == {"opaque": True}
    # ...and concrete v1 footprints use the merged sends/queries keys
    timer = _events(table, "repro.core.timer.TimerMachine")
    loop = timer["repro.core.timer._TimerLoop"]
    assert loop["sends"] == ["self", {"attr": "target"}]
    assert loop["queries"] == [{"attr": "target"}]
    assert "writes" not in loop and "reads" not in loop


def test_vnext_wrapped_component_dispatches_stay_opaque():
    # ExtentManagerMachine forwards messages into the wrapped real
    # ExtentManager component — effects outside the event model
    manager = _events(
        _vnext_table(), "repro.vnext.harness.machines.ExtentManagerMachine"
    )
    assert manager["repro.vnext.harness.events.ExtentManagerMessageEvent"] == {
        "opaque": True
    }


# ---------------------------------------------------------------------------
# degradation fixtures: each unprovable construct must poison its entry
# ---------------------------------------------------------------------------
class Poke(Event):
    pass


class ExternalCaller(Machine):
    """Calls into a non-framework module: arbitrary effects."""

    class Only(State, initial=True):
        @on_event(Poke)
        def jitter(self) -> None:
            random.random()


class TargetRebinder(Machine):
    """Rebinds the attribute its send resolves through, mid-dispatch."""

    class Only(State, initial=True):
        @on_event(Poke)
        def retarget(self) -> None:
            self.peer = self.create(ExternalCaller)
            self.send(self.peer, Poke())


class CleanSelfSender(Machine):
    class Only(State, initial=True):
        @on_event(Poke)
        def echo(self) -> None:
            self.send(self.id, Poke())


class HelperFieldSender(Machine):
    """Reads the target off the event payload — but in a *helper* method,
    whose second argument is not necessarily the dispatched event, so the
    event-field item must not be emitted and the entry degrades."""

    class Only(State, initial=True):
        @on_event(Poke)
        def enter(self, event) -> None:
            self.reply(event)

    def reply(self, event) -> None:
        self.send(event.requester, Poke())


def _entry_for(cls, version=TABLE_VERSION):
    table = independence_for_classes([cls], version=version)
    key = f"{cls.__module__}.{cls.__qualname__}"
    return table["machines"][key]["events"][f"{Poke.__module__}.Poke"]


def test_external_call_degrades_the_dispatch_to_opaque():
    assert _entry_for(ExternalCaller) == {"opaque": True}


def test_rebound_target_attribute_degrades_to_opaque():
    assert _entry_for(TargetRebinder) == {"opaque": True}


def test_self_send_stays_concrete():
    entry = _entry_for(CleanSelfSender)
    assert entry["writes"] == ["self"]
    assert entry["creates"] is False


def test_event_field_in_helper_method_degrades_to_opaque():
    assert _entry_for(HelperFieldSender) == {"opaque": True}


def test_unsupported_table_version_is_rejected():
    import pytest

    with pytest.raises(ValueError):
        independence_for_classes([CleanSelfSender], version=3)


def test_table_is_json_safe_and_byte_stable():
    first = json.dumps(_vnext_table(), sort_keys=True)
    clear_model_cache()
    second = json.dumps(_vnext_table(), sort_keys=True)
    assert first == second


def test_v1_table_is_byte_stable_too():
    first = json.dumps(_vnext_table(version=LEGACY_TABLE_VERSION), sort_keys=True)
    clear_model_cache()
    second = json.dumps(_vnext_table(version=LEGACY_TABLE_VERSION), sort_keys=True)
    assert first == second
