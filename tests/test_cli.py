"""End-to-end tests of the ``python -m repro`` CLI."""

import json

import pytest

from repro.cli import main


def test_list_scenarios_enumerates_all_packages(capsys):
    assert main(["list-scenarios", "--json"]) == 0
    cases = json.loads(capsys.readouterr().out)
    assert len(cases) >= 10
    packages = {case["name"].split("/")[0] for case in cases}
    assert {"examplesys", "vnext", "migratingtable", "fabric"} <= packages


def test_list_scenarios_tag_filter(capsys):
    assert main(["list-scenarios", "--tag", "table2", "--json"]) == 0
    cases = json.loads(capsys.readouterr().out)
    assert len(cases) == 12
    assert all("table2" in case["tags"] for case in cases)


def test_list_strategies(capsys):
    assert main(["list-strategies", "--json"]) == 0
    names = json.loads(capsys.readouterr().out)
    assert {"random", "pct", "round-robin", "dfs"} <= set(names)


def test_run_then_replay_round_trips(tmp_path, capsys):
    report_path = str(tmp_path / "report.json")
    code = main([
        "run",
        "--scenario", "examplesys/safety-bug",
        "--strategy", "random",
        "--strategy", "pct",
        "--iterations", "200",
        "--workers", "2",
        "--seed", "7",
        "--output", report_path,
        "--expect-bug",
    ])
    out = capsys.readouterr().out
    assert code == 0
    assert "bug found" in out
    payload = json.loads(open(report_path).read())
    assert payload["scenario"] == "examplesys/safety-bug"

    assert main(["replay", report_path]) == 0
    out = capsys.readouterr().out
    assert "replay reproduced the recorded bug deterministically" in out


def test_run_unknown_scenario_fails_cleanly(capsys):
    assert main(["run", "--scenario", "no/such", "--iterations", "1"]) == 2
    assert "unknown scenario" in capsys.readouterr().err


def test_replay_missing_file_fails_cleanly(tmp_path, capsys):
    assert main(["replay", str(tmp_path / "missing.json")]) == 2
    assert "error" in capsys.readouterr().err


def test_run_invalid_max_steps_rejected(capsys):
    code = main([
        "run", "--scenario", "examplesys/fixed", "--iterations", "1",
        "--max-steps", "0",
    ])
    assert code == 2
    assert "max_steps" in capsys.readouterr().err


def test_import_option_loads_file_registered_scenarios(tmp_path, capsys):
    module = tmp_path / "extra_scenarios.py"
    module.write_text(
        "from repro import scenario\n"
        "from repro.examplesys.harness import build_replication_test, safety_bug_configuration\n"
        "@scenario('cli-test/extra', tags=('cli-test',), max_steps=600)\n"
        "def extra():\n"
        "    return build_replication_test(safety_bug_configuration(), check_liveness=False)\n"
    )
    assert main(["list-scenarios", "--tag", "cli-test", "--json",
                 "--import", str(module)]) == 0
    cases = json.loads(capsys.readouterr().out)
    assert [case["name"] for case in cases] == ["cli-test/extra"]

    report_path = str(tmp_path / "extra.json")
    assert main(["run", "--scenario", "cli-test/extra", "--iterations", "150",
                 "--strategy", "random", "--seed", "7",
                 "--output", report_path, "--expect-bug",
                 "--import", str(module)]) == 0
    capsys.readouterr()
    assert main(["replay", report_path, "--import", str(module)]) == 0
    assert "replay reproduced" in capsys.readouterr().out


def test_run_clean_scenario_with_expect_bug_fails(tmp_path, capsys):
    code = main([
        "run",
        "--scenario", "examplesys/fixed",
        "--iterations", "5",
        "--seed", "1",
        "--output", str(tmp_path / "clean.json"),
        "--expect-bug",
    ])
    assert code == 1
    assert "expected" in capsys.readouterr().err
