"""End-to-end tests of the ``python -m repro`` CLI."""

import json


from repro.cli import main


def test_list_scenarios_enumerates_all_packages(capsys):
    assert main(["list-scenarios", "--json"]) == 0
    cases = json.loads(capsys.readouterr().out)
    assert len(cases) >= 10
    packages = {case["name"].split("/")[0] for case in cases}
    assert {"examplesys", "vnext", "migratingtable", "fabric"} <= packages


def test_list_scenarios_tag_filter(capsys):
    assert main(["list-scenarios", "--tag", "table2", "--json"]) == 0
    cases = json.loads(capsys.readouterr().out)
    assert len(cases) == 12
    assert all("table2" in case["tags"] for case in cases)


def test_list_strategies(capsys):
    assert main(["list-strategies", "--json"]) == 0
    names = json.loads(capsys.readouterr().out)
    assert {"random", "pct", "round-robin", "dfs"} <= set(names)


def test_run_then_replay_round_trips(tmp_path, capsys):
    report_path = str(tmp_path / "report.json")
    code = main([
        "run",
        "--scenario", "examplesys/safety-bug",
        "--strategy", "random",
        "--strategy", "pct",
        "--iterations", "200",
        "--workers", "2",
        "--seed", "7",
        "--output", report_path,
        "--expect-bug",
    ])
    out = capsys.readouterr().out
    assert code == 0
    assert "bug found" in out
    payload = json.loads(open(report_path).read())
    assert payload["scenario"] == "examplesys/safety-bug"

    assert main(["replay", report_path]) == 0
    out = capsys.readouterr().out
    assert "replay reproduced the recorded bug deterministically" in out
    # The trace carries per-step states, so replay shows state context.
    assert "state context" in out
    assert "in state" in out


def test_replay_of_stateless_trace_omits_state_context(tmp_path, capsys):
    report_path = str(tmp_path / "report.json")
    assert main([
        "run", "--scenario", "examplesys/safety-bug", "--strategy", "random",
        "--iterations", "200", "--seed", "7", "--output", report_path,
        "--expect-bug",
    ]) == 0
    capsys.readouterr()
    # Strip the recorded states, as a trace written by an older version.
    payload = json.loads(open(report_path).read())
    for result in payload["results"]:
        for bug in result["report"]["bugs"]:
            if bug.get("trace"):
                bug["trace"].pop("states", None)
    open(report_path, "w").write(json.dumps(payload))
    assert main(["replay", report_path]) == 0
    out = capsys.readouterr().out
    assert "replay reproduced the recorded bug deterministically" in out
    assert "state context" not in out


def test_run_unknown_scenario_fails_cleanly(capsys):
    assert main(["run", "--scenario", "no/such", "--iterations", "1"]) == 2
    assert "unknown scenario" in capsys.readouterr().err


def test_replay_missing_file_fails_cleanly(tmp_path, capsys):
    assert main(["replay", str(tmp_path / "missing.json")]) == 2
    assert "error" in capsys.readouterr().err


def test_run_invalid_max_steps_rejected(capsys):
    code = main([
        "run", "--scenario", "examplesys/fixed", "--iterations", "1",
        "--max-steps", "0",
    ])
    assert code == 2
    assert "max_steps" in capsys.readouterr().err


def test_import_option_loads_file_registered_scenarios(tmp_path, capsys):
    module = tmp_path / "extra_scenarios.py"
    module.write_text(
        "from repro import scenario\n"
        "from repro.examplesys.harness import build_replication_test, safety_bug_configuration\n"
        "@scenario('cli-test/extra', tags=('cli-test',), max_steps=600)\n"
        "def extra():\n"
        "    return build_replication_test(safety_bug_configuration(), check_liveness=False)\n"
    )
    assert main(["list-scenarios", "--tag", "cli-test", "--json",
                 "--import", str(module)]) == 0
    cases = json.loads(capsys.readouterr().out)
    assert [case["name"] for case in cases] == ["cli-test/extra"]

    report_path = str(tmp_path / "extra.json")
    assert main(["run", "--scenario", "cli-test/extra", "--iterations", "150",
                 "--strategy", "random", "--seed", "7",
                 "--output", report_path, "--expect-bug",
                 "--import", str(module)]) == 0
    capsys.readouterr()
    assert main(["replay", report_path, "--import", str(module)]) == 0
    assert "replay reproduced" in capsys.readouterr().out


def _seeded_bug_report(tmp_path, capsys, extra_args=()):
    """Run the seeded examplesys safety bug and return the report path."""
    report_path = str(tmp_path / "report.json")
    assert main([
        "run",
        "--scenario", "examplesys/safety-bug",
        "--strategy", "random",
        "--iterations", "200",
        "--seed", "73",
        "--output", report_path,
        "--expect-bug",
        *extra_args,
    ]) == 0
    capsys.readouterr()
    return report_path


def test_shrink_command_minimizes_and_replays(tmp_path, capsys):
    report_path = _seeded_bug_report(tmp_path, capsys)
    assert main(["shrink", report_path, "--expect-reduction", "5"]) == 0
    out = capsys.readouterr().out
    assert "shrunk" in out
    assert f"report with shrunk trace written to {report_path}" in out

    payload = json.loads(open(report_path).read())
    bug = payload["results"][0]["report"]["bugs"][0]
    assert bug["shrink"]["final_length"] < bug["shrink"]["original_length"]
    assert len(bug["shrunk_trace"]["steps"]) == bug["shrink"]["final_length"]

    assert main(["replay", report_path, "--shrunk"]) == 0
    assert "shrunk trace reproduced the recorded bug class" in capsys.readouterr().out


def test_shrink_command_output_option_leaves_input_untouched(tmp_path, capsys):
    report_path = _seeded_bug_report(tmp_path, capsys)
    before = open(report_path).read()
    out_path = str(tmp_path / "shrunk.json")
    assert main(["shrink", report_path, "--output", out_path]) == 0
    assert open(report_path).read() == before
    payload = json.loads(open(out_path).read())
    assert payload["results"][0]["report"]["bugs"][0]["shrunk_trace"] is not None


def test_run_with_shrink_flag_embeds_shrunk_trace(tmp_path, capsys):
    report_path = _seeded_bug_report(tmp_path, capsys, extra_args=("--shrink",))
    payload = json.loads(open(report_path).read())
    bug = payload["results"][0]["report"]["bugs"][0]
    assert "shrunk_trace" in bug and "shrink" in bug
    assert main(["replay", report_path, "--shrunk"]) == 0


def test_replay_shrunk_without_shrink_fails_cleanly(tmp_path, capsys):
    report_path = _seeded_bug_report(tmp_path, capsys)
    assert main(["replay", report_path, "--shrunk"]) == 1
    assert "no shrunk trace" in capsys.readouterr().err


def test_shrink_report_without_bugs_fails_cleanly(tmp_path, capsys):
    clean_path = str(tmp_path / "clean.json")
    assert main([
        "run", "--scenario", "examplesys/fixed", "--iterations", "5",
        "--seed", "1", "--output", clean_path,
    ]) == 0
    capsys.readouterr()
    assert main(["shrink", clean_path]) == 1
    assert "no replayable bug trace" in capsys.readouterr().err


def test_run_clean_scenario_with_expect_bug_fails(tmp_path, capsys):
    code = main([
        "run",
        "--scenario", "examplesys/fixed",
        "--iterations", "5",
        "--seed", "1",
        "--output", str(tmp_path / "clean.json"),
        "--expect-bug",
    ])
    assert code == 1
    assert "expected" in capsys.readouterr().err


# ---------------------------------------------------------------------------
# serve (ProductionRuntime) and --verbose
# ---------------------------------------------------------------------------
def test_serve_boots_service_under_production_runtime(capsys):
    code = main([
        "serve", "--scenario", "examplesys/service",
        "--clients", "3", "--requests", "5",
        "--tick-interval", "0.002", "--timeout", "60",
    ])
    out = capsys.readouterr().out
    assert code == 0
    assert "under ProductionRuntime" in out
    assert "clean shutdown, no monitor violations" in out


def test_serve_json_stats_and_expect_events(capsys):
    code = main([
        "serve", "--scenario", "examplesys/service",
        "--clients", "4", "--requests", "25",
        "--tick-interval", "0.002", "--timeout", "120",
        "--expect-events", "500", "--json",
    ])
    assert code == 0
    stats = json.loads(capsys.readouterr().out)
    assert stats["bug"] is None
    assert stats["quiesced"] is True
    assert stats["events_dispatched"] >= 500
    assert stats["active_machines"] >= 8
    assert stats["events_per_second"] > 0


def test_serve_rejects_json_with_verbose(capsys):
    code = main([
        "serve", "--scenario", "examplesys/service", "--json", "--verbose",
    ])
    assert code == 2
    assert "mutually exclusive" in capsys.readouterr().err


def test_serve_rejects_load_flags_the_scenario_does_not_accept(capsys):
    code = main([
        "serve", "--scenario", "examplesys/fixed", "--clients", "2",
        "--timeout", "5",
    ])
    assert code == 2
    assert "does not accept --clients" in capsys.readouterr().err


def test_run_verbose_streams_log_records_live(tmp_path, capsys):
    assert main([
        "run", "--scenario", "examplesys/fixed",
        "--strategy", "random", "--iterations", "2", "--seed", "1",
        "--output", str(tmp_path / "clean.json"), "--verbose",
    ]) == 0
    out = capsys.readouterr().out
    assert "[repro] created" in out
    assert "[repro] sent" in out


def test_replay_verbose_streams_log_records_live(tmp_path, capsys):
    report_path = _seeded_bug_report(tmp_path, capsys)
    assert main(["replay", report_path, "--verbose"]) == 0
    out = capsys.readouterr().out
    assert "[repro]" in out
    assert "replay reproduced the recorded bug deterministically" in out


# ---------------------------------------------------------------------------
# analyze: rule catalog, communication graph, pruned runs
# ---------------------------------------------------------------------------
def test_analyze_list_rules(capsys):
    assert main(["analyze", "--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule in ("unhandled-event", "dead-event", "unbounded-send-cycle",
                 "unused-ignore"):
        assert rule in out
    assert main(["analyze", "--list-rules", "--json"]) == 0
    catalog = json.loads(capsys.readouterr().out)
    assert catalog["dead-event"]["severity"] == "warning"
    assert list(catalog) == sorted(catalog)


def test_analyze_graph_emits_byte_stable_json(capsys):
    assert main(["analyze", "--graph", "--scenario", "vnext/extent-node-liveness"]) == 0
    first = capsys.readouterr().out
    assert main(["analyze", "--graph", "--scenario", "vnext/extent-node-liveness"]) == 0
    second = capsys.readouterr().out
    assert first == second
    payload = json.loads(first)
    assert set(payload) == {"nodes", "edges"}


def test_analyze_graph_dot(capsys):
    assert main(["analyze", "--graph", "--dot",
                 "--scenario", "vnext/extent-node-liveness"]) == 0
    out = capsys.readouterr().out
    assert out.startswith("digraph")
    assert "TestingDriverMachine" in out


def test_analyze_dot_without_graph_is_a_usage_error(capsys):
    assert main(["analyze", "--dot"]) == 2
    assert "--graph" in capsys.readouterr().err


def test_run_prune_defaults_to_dpor_lite_and_finds_the_bug(tmp_path, capsys):
    report_path = str(tmp_path / "pruned.json")
    assert main([
        "run", "--scenario", "vnext/extent-node-liveness", "--prune",
        "--iterations", "200", "--max-steps", "12",
        "--output", report_path, "--expect-bug",
    ]) == 0
    out = capsys.readouterr().out
    assert "dpor-lite" in out
    with open(report_path) as handle:
        payload = json.load(handle)
    assert any(result["job"]["strategy"] == "dpor-lite"
               for result in payload["results"])


def test_run_parallel_writes_replayable_report(tmp_path, capsys):
    report_path = str(tmp_path / "parallel.json")
    code = main([
        "run",
        "--scenario", "vnext/failover-1node",
        "--parallel", "2",
        "--claim-iterations", "9",
        "--iterations", "100000",
        "--max-steps", "5",
        "--stateful",
        "--output", report_path,
        "--expect-bug",
    ])
    out = capsys.readouterr().out
    assert code == 0
    assert "parallel[dfs]" in out
    assert "space exhausted" in out
    assert "bug found" in out

    # the written report is an ordinary portfolio document: replay works
    assert main(["replay", report_path]) == 0
    out = capsys.readouterr().out
    assert "replay reproduced the recorded bug deterministically" in out


def test_run_parallel_json_includes_worker_stats(capsys):
    code = main([
        "run",
        "--scenario", "vnext/failover-1node",
        "--parallel", "2",
        "--claim-iterations", "9",
        "--iterations", "100000",
        "--max-steps", "4",
        "--prune",
        "--stateful",
        "--output", "",
        "--json",
    ])
    out = capsys.readouterr().out
    assert code == 0
    payload = json.loads(out)
    assert payload["state_space_exhausted"] is True
    assert payload["claims"] >= 1
    assert payload["workers"]
    assert {"worker", "claims", "executions", "busy_seconds"} <= set(payload["workers"][0])
    assert sum(entry["executions"] for entry in payload["workers"]) == payload["total_iterations"]


def test_run_parallel_rejects_multiple_strategies(capsys):
    code = main([
        "run",
        "--scenario", "vnext/failover-1node",
        "--parallel", "2",
        "--strategy", "dfs",
        "--strategy", "dpor-lite",
    ])
    assert code == 2
    assert "single" in capsys.readouterr().err


def test_run_parallel_rejects_shrink(capsys):
    code = main([
        "run",
        "--scenario", "vnext/failover-1node",
        "--parallel", "2",
        "--shrink",
    ])
    assert code == 2
    assert "--shrink" in capsys.readouterr().err


def test_run_stop_on_bug_portfolio(tmp_path, capsys):
    report_path = str(tmp_path / "stop.json")
    code = main([
        "run",
        "--scenario", "examplesys/safety-bug",
        "--strategy", "random",
        "--iterations", "400",
        "--shards", "4",
        "--stop-on-bug",
        "--output", report_path,
        "--expect-bug",
    ])
    assert code == 0
    assert "bug found" in capsys.readouterr().out
    with open(report_path) as handle:
        payload = json.load(handle)
    # cancelled shards are zero-execution placeholders in the saved report
    executed = [result["report"]["iterations_executed"] for result in payload["results"]]
    assert len(executed) == 4
    assert any(count == 0 for count in executed)
