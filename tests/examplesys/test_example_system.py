"""Tests for the §2.2 example replication system and its harness."""


from repro.core import TestingConfig, TestingEngine, run_test
from repro.examplesys import ReplicationServer, StorageNodeStore
from repro.examplesys.harness import (
    build_replication_test,
    buggy_configuration,
    fixed_configuration,
    liveness_bug_configuration,
    safety_bug_configuration,
)


class RecordingNetwork:
    def __init__(self):
        self.replications = []
        self.acks = []

    def send_replication_request(self, node_id, data):
        self.replications.append((node_id, data))

    def send_ack(self, data):
        self.acks.append(data)


def make_server(config):
    network = RecordingNetwork()
    return ReplicationServer([0, 1, 2], network, config), network


def test_server_broadcasts_replication_requests():
    server, network = make_server(fixed_configuration())
    server.process_client_request(7)
    assert network.replications == [(0, 7), (1, 7), (2, 7)]


def test_fixed_server_acks_after_three_distinct_syncs():
    server, network = make_server(fixed_configuration())
    server.process_client_request(7)
    for node in (0, 1, 2):
        server.process_sync(node, 7)
    assert network.acks == [7]


def test_fixed_server_ignores_duplicate_syncs():
    server, network = make_server(fixed_configuration())
    server.process_client_request(7)
    server.process_sync(0, 7)
    server.process_sync(0, 7)
    server.process_sync(0, 7)
    assert network.acks == []


def test_buggy_server_acks_on_duplicate_syncs():
    server, network = make_server(safety_bug_configuration())
    server.process_client_request(7)
    for _ in range(3):
        server.process_sync(0, 7)
    assert network.acks == [7]


def test_liveness_buggy_server_never_acks_second_request():
    server, network = make_server(liveness_bug_configuration())
    server.process_client_request(7)
    for node in (0, 1, 2):
        server.process_sync(node, 7)
    server.process_client_request(8)
    for node in (0, 1, 2):
        server.process_sync(node, 8)
    assert network.acks == [7]


def test_stale_sync_triggers_re_replication():
    server, network = make_server(fixed_configuration())
    server.process_client_request(7)
    server.process_sync(0, None)
    assert (0, 7) in network.replications[3:]


def test_storage_node_store_tracks_history():
    store = StorageNodeStore(2)
    store.store(5)
    store.store(9)
    assert store.latest == 9
    assert store.writes == 2


# ---------------------------------------------------------------------------
# systematic testing integration
# ---------------------------------------------------------------------------
def test_safety_bug_found_by_systematic_testing():
    report = run_test(
        build_replication_test(safety_bug_configuration(), check_liveness=False),
        TestingConfig(iterations=150, max_steps=600, seed=7),
    )
    assert report.bug_found
    assert report.first_bug.kind == "safety"


def test_liveness_bug_found_by_systematic_testing():
    report = run_test(
        build_replication_test(liveness_bug_configuration()),
        TestingConfig(iterations=60, max_steps=600, seed=7),
    )
    assert report.bug_found
    assert report.first_bug.kind == "liveness"


def test_both_bugs_configuration_finds_a_bug_with_pct():
    report = run_test(
        build_replication_test(buggy_configuration()),
        TestingConfig(iterations=60, max_steps=1500, seed=7, strategy="pct"),
    )
    assert report.bug_found


def test_fixed_configuration_is_clean_under_fair_scheduling():
    report = run_test(
        build_replication_test(fixed_configuration()),
        TestingConfig(iterations=150, max_steps=600, seed=7),
    )
    assert not report.bug_found


def test_example_bug_trace_replays():
    engine = TestingEngine(
        build_replication_test(safety_bug_configuration(), check_liveness=False),
        TestingConfig(iterations=150, max_steps=600, seed=7),
    )
    report = engine.run()
    assert report.bug_found
    replayed = engine.replay(report.first_bug.trace)
    assert replayed is not None
    assert replayed.kind == report.first_bug.kind
