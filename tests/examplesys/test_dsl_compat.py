"""Legacy string-state form vs. State-DSL form: byte-identical ScheduleTraces.

The seeded §2.2 scenarios are run twice per schedule — once with the ported
DSL machines (:mod:`repro.examplesys.harness.machines`) and once with the
preserved legacy-form declarations
(:mod:`repro.examplesys.harness.legacy_machines`) — and every execution must
produce byte-identical trace JSON: schedules, per-step states, and (for buggy
executions) the materialized log.  This is the compatibility contract of the
DSL redesign: both declaration forms lower to the same spec and the same
runtime behaviour.  CI runs this module as the ``dsl-compat`` job.
"""

import pytest

from repro.core import RandomStrategy, TestRuntime, TestingConfig
from repro.examplesys.harness import legacy_machines, machines
from repro.examplesys.harness.monitors import AckLivenessMonitor, ReplicaSafetyMonitor
from repro.examplesys.harness.scenarios import (
    buggy_configuration,
    fixed_configuration,
    safety_bug_configuration,
)


def _entry(machines_module, server_config, check_liveness):
    def test_entry(runtime):
        runtime.register_monitor(ReplicaSafetyMonitor)
        if check_liveness:
            runtime.register_monitor(AckLivenessMonitor)
        runtime.create_machine(
            machines_module.ServerMachine,
            num_nodes=3,
            num_requests=2,
            server_config=server_config,
            timer_ticks=None,
            name="Server",
        )

    return test_entry


def _explore(machines_module, server_config, check_liveness, iterations=40, seed=7):
    strategy = RandomStrategy(seed=seed)
    traces, bugs = [], []
    for iteration in range(iterations):
        strategy.prepare_iteration(iteration)
        runtime = TestRuntime(strategy, TestingConfig(max_steps=600, seed=seed))
        bug = runtime.run(_entry(machines_module, server_config, check_liveness))
        traces.append(runtime.trace.to_json())
        bugs.append((bug.kind, bug.message) if bug is not None else None)
    return traces, bugs


@pytest.mark.parametrize(
    "config_factory, check_liveness, expect_bug",
    [
        (safety_bug_configuration, False, True),
        (buggy_configuration, True, True),
        (fixed_configuration, True, False),
    ],
    ids=["safety-bug", "both-bugs", "fixed"],
)
def test_legacy_and_dsl_forms_produce_identical_traces(
    config_factory, check_liveness, expect_bug
):
    dsl_traces, dsl_bugs = _explore(machines, config_factory(), check_liveness)
    legacy_traces, legacy_bugs = _explore(
        legacy_machines, config_factory(), check_liveness
    )
    assert dsl_traces == legacy_traces
    assert dsl_bugs == legacy_bugs
    if expect_bug:
        assert any(bugs is not None for bugs in dsl_bugs)


def test_dsl_port_still_finds_the_seeded_safety_bug():
    _, bugs = _explore(machines, safety_bug_configuration(), check_liveness=False)
    kinds = {bug[0] for bug in bugs if bug is not None}
    assert kinds == {"safety"}
