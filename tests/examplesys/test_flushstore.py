"""Scenario-level checks of the flush-store State-DSL showcase."""

from repro.core import TestingConfig, run_scenario, run_test
from repro.core.registry import get_scenario
from repro.examplesys.harness.flushstore import (
    FlushStoreMachine,
    WedgingClientMachine,
    build_flush_test,
)


def _config(**overrides):
    overrides.setdefault("iterations", 200)
    overrides.setdefault("seed", 5)
    overrides.setdefault("max_steps", 600)
    return TestingConfig(**overrides)


def test_deferred_writes_scenario_is_clean():
    report = run_scenario("examplesys/flush-deferred-writes", _config())
    assert not report.bug_found
    assert report.iterations_executed == 200


def test_flat_store_scenario_finds_the_write_during_flush_bug():
    report = run_scenario("examplesys/flush-flat-write-during-flush", _config())
    assert report.bug_found
    bug = report.first_bug
    assert bug.kind == "safety"
    assert "while a flush is in progress" in bug.message


def test_lost_completion_scenario_reports_deferred_deadlock():
    report = run_scenario("examplesys/flush-lost-completion-deadlock", _config())
    assert report.bug_found
    bug = report.first_bug
    assert bug.kind == "deadlock"
    assert "holds deferred events" in bug.message
    assert "Flushing" in bug.message


def test_deferred_writes_all_reach_disk_in_order():
    """End to end: every write survives the flush disciplines, in order."""
    report = run_test(build_flush_test(FlushStoreMachine, num_writes=4), _config())
    assert not report.bug_found


def test_reads_are_answered_from_the_pushed_state_in_the_wedge():
    """Stack inheritance at scenario level: even the wedged store answers
    reads (Active's handler through the pushed Flushing state)."""
    from repro.core import RoundRobinStrategy, TestRuntime

    strategy = RoundRobinStrategy()
    strategy.prepare_iteration(0)
    runtime = TestRuntime(strategy, TestingConfig(max_steps=300, report_deadlocks=False))
    assert runtime.run(build_flush_test(FlushStoreMachine, lose_completion=True)) is None
    client = runtime.machines_of_type(WedgingClientMachine)[0]
    store = runtime.machines_of_type(FlushStoreMachine)[0]
    assert client.replies == 1  # the Read was answered while wedged
    assert store.current_state == "Flushing"
    assert store.state_stack == ("Active", "Flushing")
    assert list(store._inbox)  # the deferred Write is still queued


def test_scenarios_are_registered_with_expected_metadata():
    wedge = get_scenario("examplesys/flush-lost-completion-deadlock")
    assert wedge.expected_bug_kind == "deadlock"
    clean = get_scenario("examplesys/flush-deferred-writes")
    assert clean.expected_bug is None
    flat = get_scenario("examplesys/flush-flat-write-during-flush")
    assert flat.expected_bug == "WriteDuringFlush"
