"""Tests for the Table 1 / Table 2 experiment generators."""

from repro.experiments import (
    all_bug_entries,
    bug_entry,
    format_table1,
    format_table2,
    generate_table1,
    generate_table2,
)


def test_table1_has_all_case_studies():
    rows = generate_table1()
    names = [row.name for row in rows]
    assert any("vNext" in name for name in names)
    assert any("MigratingTable" in name for name in names)
    assert any("Fabric" in name for name in names)
    for row in rows:
        assert row.system_loc > 0
        assert row.harness_loc > 0
        assert row.num_machines > 0
    assert "sysLoC" in format_table1(rows)


def test_bug_registry_matches_table2_order():
    entries = all_bug_entries()
    assert len(entries) == 12
    assert entries[0].identifier == "ExtentNodeLivenessViolation"
    assert entries[0].kind == "liveness"
    assert sum(1 for e in entries if e.case_study == 2) == 11
    assert sum(1 for e in entries if e.notional) == 3
    assert bug_entry("DeletePrimaryKey").case_study == 2


def test_generate_table2_small_budget_finds_easy_bugs():
    rows = generate_table2(iterations=40, seed=5, bugs=["DeletePrimaryKey", "MigrateSkipPreferOld"])
    assert len(rows) == 2
    assert any(row.random.bug_found or row.pct.bug_found for row in rows)
    text = format_table2(rows)
    assert "DeletePrimaryKey" in text
