"""Shared configuration for the benchmark harness."""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

#: Per-scheduler execution budget used by the benchmarks.  The paper used
#: 100,000 executions; the default here keeps the harness CI-sized.  Override
#: with the REPRO_BENCH_ITERATIONS environment variable for a full-scale run.
BENCH_ITERATIONS = int(os.environ.get("REPRO_BENCH_ITERATIONS", "60"))
