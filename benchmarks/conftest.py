"""Shared configuration for the benchmark harness."""

import json
import os
import sys
import threading

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

#: Per-scheduler execution budget used by the benchmarks.  The paper used
#: 100,000 executions; the default here keeps the harness CI-sized.  Override
#: with the REPRO_BENCH_ITERATIONS environment variable for a full-scale run.
BENCH_ITERATIONS = int(os.environ.get("REPRO_BENCH_ITERATIONS", "60"))

#: Where the collected gate metrics land at session end.  CI uploads the file
#: as an artifact so gate-to-gate perf is comparable across runs; override
#: with REPRO_BENCH_RESULTS (an empty value disables writing entirely).
_DEFAULT_RESULTS_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "BENCH_results.json"
)
BENCH_RESULTS_PATH = os.environ.get("REPRO_BENCH_RESULTS", _DEFAULT_RESULTS_PATH)

_results_lock = threading.Lock()
_results = {}


def record_bench_result(gate, **metrics):
    """Stash one gate's metrics (wall clock, schedules explored, speedups).

    Benchmarks call this with whatever numbers their asserts are computed
    from, so the written document answers "how close to the gate was that
    run" without re-running anything.  Repeat calls for the same gate merge,
    letting a test record incrementally.
    """
    with _results_lock:
        _results.setdefault(gate, {}).update(metrics)


def pytest_sessionfinish(session, exitstatus):
    """Write (merge) the collected metrics into BENCH_results.json.

    Merging instead of overwriting lets CI run several benchmark files as
    separate pytest invocations (dpor gate, stateful gate, parallel gate)
    and still end up with one combined document to upload.
    """
    if not _results or not BENCH_RESULTS_PATH:
        return
    document = {}
    try:
        with open(BENCH_RESULTS_PATH, "r", encoding="utf-8") as handle:
            document = json.load(handle)
    except (OSError, ValueError):
        document = {}
    for gate, metrics in _results.items():
        document.setdefault(gate, {}).update(metrics)
    with open(BENCH_RESULTS_PATH, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
