"""Benchmark: §5 — Fabric model promotion bug and the CScale failure analog."""

from conftest import BENCH_ITERATIONS
from repro.core import TestingConfig, run_test
from repro.fabric import build_cscale_test, build_failover_test


def test_bench_fabric_promotion_bug(benchmark):
    def run():
        return run_test(
            build_failover_test(True),
            TestingConfig(iterations=BENCH_ITERATIONS, max_steps=500, seed=3),
        )

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(f"[Fabric promotion bug] {report.summary()}")
    assert report.bug_found


def test_bench_cscale_bug(benchmark):
    def run():
        return run_test(
            build_cscale_test(True),
            TestingConfig(iterations=BENCH_ITERATIONS, max_steps=500, seed=3),
        )

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(f"[CScale initialization bug] {report.summary()}")
    assert report.bug_found
