"""Benchmark: the case-study-2 rows of Table 2 (MigratingTable bugs).

Each re-introducible bug is hunted with the random and priority-based
schedulers; bugs whose inputs are too rare under the default distribution are
retried with the directed ("custom test case") harness, mirroring the paper.
"""

from conftest import BENCH_ITERATIONS
from repro.experiments import format_table2, generate_table2
from repro.experiments.bug_registry import TABLE2_ORDER


def test_bench_table2_migratingtable(benchmark):
    bugs = [name for name in TABLE2_ORDER if name != "ExtentNodeLivenessViolation"]

    def run():
        return generate_table2(iterations=BENCH_ITERATIONS, seed=5, bugs=bugs)

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(format_table2(rows))
    found = sum(1 for row in rows if row.random.bug_found or row.pct.bug_found)
    # The paper finds every re-introduced MigratingTable bug (some only with a
    # custom test case); with a CI-sized budget we require the large majority.
    assert found >= len(rows) // 2
