"""Benchmark: §3.6 — after the fix, a large clean run finds no bug."""

from conftest import BENCH_ITERATIONS
from repro.core import TestingConfig, run_test
from repro.vnext.harness import build_failover_test


def test_bench_vnext_fixed_clean_run(benchmark):
    def run():
        return run_test(
            build_failover_test(fixed=True),
            TestingConfig(iterations=BENCH_ITERATIONS, max_steps=3000, seed=11),
        )

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(f"[vNext after fix] {report.summary()}")
    assert not report.bug_found
