"""Benchmark: parallel vs. serial portfolio throughput.

Runs the same strategy portfolio (same seeds, same budget) serially and on a
worker pool, asserts the merged results are identical, and reports the
speedup.  The scenario is a clean run so every job spends its full budget —
the honest configuration for a throughput comparison.
"""

import multiprocessing
import time

from conftest import BENCH_ITERATIONS
from repro.core import Portfolio, get_scenario

SCENARIO = "examplesys/fixed"
WORKERS = max(2, min(4, multiprocessing.cpu_count()))


def _build(num_workers):
    # Liveness-at-bound checking is disabled: the unfair PCT prefix can flag
    # spurious liveness violations on a clean run, and an early stop would
    # skew the throughput comparison.
    config = get_scenario(SCENARIO).default_config(check_liveness_at_bound=False)
    return Portfolio(
        SCENARIO,
        strategies=["random", "pct"],
        iterations=BENCH_ITERATIONS,
        num_shards=WORKERS,
        num_workers=num_workers,
        seed=7,
        config=config,
    )


def _result_fingerprint(report):
    return [
        (r.job.index, r.job.strategy, r.job.seed, r.report.iterations_executed,
         r.report.bug_found)
        for r in report.results
    ]


def test_bench_portfolio_parallel_vs_serial(benchmark):
    serial_started = time.perf_counter()
    serial_report = _build(1).run()
    serial_elapsed = time.perf_counter() - serial_started

    parallel_report = benchmark.pedantic(lambda: _build(WORKERS).run(), rounds=1, iterations=1)

    print()
    print(f"[portfolio serial]   {serial_report.summary()}")
    print(f"[portfolio parallel] {parallel_report.summary()}")
    speedup = serial_elapsed / max(parallel_report.elapsed_seconds, 1e-9)
    print(f"[portfolio speedup]  {speedup:.2f}x with {WORKERS} workers "
          f"({serial_elapsed:.2f}s serial vs {parallel_report.elapsed_seconds:.2f}s parallel)")

    # Same seeds => identical merged results regardless of parallelism.
    assert _result_fingerprint(serial_report) == _result_fingerprint(parallel_report)
    assert parallel_report.total_iterations == serial_report.total_iterations
