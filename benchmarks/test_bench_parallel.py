"""Benchmark gate: parallel prefix-partitioned search beats serial dpor-lite.

``run --parallel``-style exploration (:mod:`repro.core.parallel`) must cover
the same bounded space as the serial dependence-aware search — identical bug
kinds and an identical distinct-state fingerprint set — while finishing the
exhaustive one-node failover hunt at least 1.5x faster on 4 workers.

Schedule counts and fingerprint sets are deterministic, so those asserts
always run.  The wall-clock speedup assert is real-parallelism dependent:
it is skipped on hosts with fewer than 4 CPUs and (like every timing gate
in this harness) under ``REPRO_BENCH_ASSERT_SPEEDUP=0``, which ordinary
test-suite CI jobs on loaded shared runners set.  The dedicated
``parallel-gate`` CI job runs this file with the assert armed, under both
the fork and spawn start methods (``MULTIPROCESSING_START_METHOD``).

Known-good reference (one-node failover, max_steps=7, v2 table, stateful):
serial dpor-lite exhausts 1726 schedules / 2046 distinct states in ~2s; the
parallel search covers the same set in ~140 claims with only a handful of
redundant executions (fingerprint gossip prunes cross-worker revisits).
"""

import dataclasses
import multiprocessing
import os
import time

try:
    from conftest import record_bench_result
except ImportError:  # imported as a plain module, outside a pytest session
    def record_bench_result(gate, **metrics):
        pass

from repro.analysis import independence_for_classes
from repro.analysis.extract import discover_classes
from repro.core import TestingConfig, TestingEngine, get_scenario, load_builtin_scenarios
from repro.core.parallel import ParallelExplorer
from repro.vnext.harness.scenarios import build_failover_test

ASSERT_SPEEDUP = os.environ.get("REPRO_BENCH_ASSERT_SPEEDUP", "1") != "0"

SCENARIO = "vnext/failover-1node"
#: deep enough that claims keep splitting, shallow enough for a CI-sized run
MAX_STEPS = 7
WORKERS = 4
CLAIM_ITERATIONS = 40


def _testcase():
    load_builtin_scenarios()
    return get_scenario(SCENARIO)


def _config() -> TestingConfig:
    table = independence_for_classes(
        discover_classes(lambda: build_failover_test(fixed=False, num_nodes=1))
    )
    return TestingConfig(
        iterations=2_000_000,
        max_steps=MAX_STEPS,
        stop_at_first_bug=False,
        max_bugs=None,
        max_log_records=16,
        strategy="dpor-lite",
        stateful=True,
        fingerprints=True,
        independence=table,
    )


def test_bench_parallel_speedup_over_serial_dpor(benchmark):
    testcase = _testcase()
    config = _config()

    started = time.perf_counter()
    serial = TestingEngine(testcase.build(), config).run()
    serial_seconds = time.perf_counter() - started
    assert serial.state_space_exhausted

    explorer = ParallelExplorer(
        testcase,
        strategy="dpor-lite",
        num_workers=WORKERS,
        config=config,
        claim_iterations=CLAIM_ITERATIONS,
    )
    parallel = benchmark.pedantic(explorer.run, rounds=1, iterations=1)
    assert parallel.state_space_exhausted

    speedup = serial_seconds / parallel.elapsed_seconds
    start_method = multiprocessing.get_start_method()
    print()
    print(
        f"[parallel gate/{start_method}] serial={serial.iterations_executed} "
        f"schedules in {serial_seconds:.2f}s, parallel={parallel.total_iterations} "
        f"schedules across {len(parallel.results)} claims in "
        f"{parallel.elapsed_seconds:.2f}s on {WORKERS} workers "
        f"({speedup:.2f}x speedup)"
    )
    record_bench_result(
        f"parallel-{start_method}",
        workers=WORKERS,
        claim_iterations=CLAIM_ITERATIONS,
        serial_schedules=serial.iterations_executed,
        parallel_schedules=parallel.total_iterations,
        claims=len(parallel.results),
        serial_seconds=round(serial_seconds, 3),
        parallel_seconds=round(parallel.elapsed_seconds, 3),
        speedup=round(speedup, 3),
        distinct_states=len(serial.coverage.fingerprints),
        cpus=os.cpu_count(),
    )

    # the parallel run proves the same facts as the serial one: same bug
    # kinds, same distinct-state set (the sets, not just their sizes)
    assert parallel.bug_found and serial.bug_found
    assert {bug.kind for bug in parallel.bugs} == {bug.kind for bug in serial.bugs}
    assert parallel.merged_coverage.fingerprints == serial.coverage.fingerprints
    # fingerprint gossip keeps cross-worker redundancy marginal
    assert parallel.total_iterations <= 1.25 * serial.iterations_executed

    if ASSERT_SPEEDUP and (os.cpu_count() or 1) >= WORKERS:
        assert speedup >= 1.5, (
            f"expected >= 1.5x speedup with {WORKERS} workers, got {speedup:.2f}x"
        )


def test_bench_parallel_single_worker_is_the_serial_search():
    """``num_workers=1`` must be trace-for-trace the serial engine."""
    testcase = _testcase()
    config = dataclasses.replace(_config(), max_steps=5)
    serial = TestingEngine(testcase.build(), config).run()
    one = ParallelExplorer(
        testcase, strategy="dpor-lite", num_workers=1, config=config
    ).run()
    assert one.state_space_exhausted
    report = one.results[0].report
    assert report.iterations_executed == serial.iterations_executed
    assert [bug.to_dict() for bug in report.bugs] == [bug.to_dict() for bug in serial.bugs]
    assert report.coverage.fingerprints == serial.coverage.fingerprints
