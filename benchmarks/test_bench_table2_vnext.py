"""Benchmark: the case-study-1 row of Table 2 (ExtentNodeLivenessViolation).

Reproduces the shape of the paper's result: both the random and the
priority-based schedulers find the liveness bug, and the buggy execution needs
far more nondeterministic choices than the MigratingTable safety bugs.
"""

import pytest

from conftest import BENCH_ITERATIONS
from repro.core import TestingConfig, TestingEngine
from repro.experiments import bug_entry


@pytest.mark.parametrize("strategy", ["random", "pct"])
def test_bench_vnext_liveness_bug(benchmark, strategy):
    entry = bug_entry("ExtentNodeLivenessViolation")

    def hunt():
        config = TestingConfig(
            iterations=BENCH_ITERATIONS, max_steps=entry.max_steps, seed=11, strategy=strategy
        )
        return TestingEngine(entry.build_default_test(), config).run()

    report = benchmark.pedantic(hunt, rounds=1, iterations=1)
    print()
    print(f"[Table 2 / CS1 / {strategy}] {report.summary()}")
    assert report.bug_found
    assert report.num_nondeterministic_choices > 500
