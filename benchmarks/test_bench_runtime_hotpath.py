"""Benchmark: hot-path overhaul speedup vs. the seed runtime, with proof of
behavioral equivalence.

``BaselineRuntime`` (``repro.core._baseline``) reinstates the seed's per-step
path — eager f-string logging, full enabled-set scans, uncached handler
resolution — so the before/after comparison runs in one process and is
robust to machine load.  The acceptance bar for the overhaul is a >= 3x
random-scheduler throughput improvement with byte-identical traces and
identical bug-detection results.
"""

import os
import time

import pytest

from repro.core import Event, Machine, Receive, TestingConfig, on_event
from repro.core._baseline import BaselineRuntime
from repro.core.engine import TestingEngine
from repro.core.registry import get_scenario
from repro.core.runtime import TestRuntime
from repro.core.strategy import create_strategy
from repro.examplesys.harness import build_replication_test, fixed_configuration

#: Required speedup of the reworked runtime over the seed reference.
REQUIRED_SPEEDUP = 3.0

#: Required speedup on the pending-query-heavy harness, where the reworked
#: runtime answers count_pending_events/has_pending_event from maintained
#: per-type counts while the seed scans the (large) inbox per call.
REQUIRED_PENDING_SPEEDUP = 2.0

#: The timing assertion is enforced by default (local runs, the dedicated
#: CI benchmark gate) but can be relaxed to report-only with
#: ``REPRO_BENCH_ASSERT_SPEEDUP=0`` so that ordinary test-suite CI jobs on
#: loaded shared runners cannot go red on a measurement outlier.
ASSERT_SPEEDUP = os.environ.get("REPRO_BENCH_ASSERT_SPEEDUP", "1") != "0"

_CONFIG = TestingConfig(iterations=30, max_steps=400, seed=7, strategy="random")


def _engine(runtime_cls):
    return TestingEngine(
        build_replication_test(fixed_configuration()), _CONFIG, runtime_cls=runtime_cls
    )


def _best_of(runtime_cls, rounds=5):
    _engine(runtime_cls).run()  # warmup
    best = float("inf")
    for _ in range(rounds):
        started = time.perf_counter()
        _engine(runtime_cls).run()
        best = min(best, time.perf_counter() - started)
    return best


def test_bench_random_scheduler_speedup_vs_seed(benchmark):
    import gc

    # Interleave the measurements so background load hits both sides alike,
    # and keep the GC out of the timed regions so an unlucky collection
    # cannot skew one side of the ratio.
    baseline_best, new_best = float("inf"), float("inf")
    _engine(BaselineRuntime).run()
    _engine(TestRuntime).run()
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in range(7):
            gc.collect()
            started = time.perf_counter()
            _engine(BaselineRuntime).run()
            baseline_best = min(baseline_best, time.perf_counter() - started)
            gc.collect()
            started = time.perf_counter()
            _engine(TestRuntime).run()
            new_best = min(new_best, time.perf_counter() - started)
    finally:
        if gc_was_enabled:
            gc.enable()

    report = benchmark.pedantic(lambda: _engine(TestRuntime).run(), rounds=1, iterations=1)
    assert report.iterations_executed == _CONFIG.iterations

    speedup = baseline_best / new_best
    print()
    print(f"[hotpath] seed reference: {_CONFIG.iterations / baseline_best:.0f} exec/s "
          f"({baseline_best * 1000:.1f} ms)")
    print(f"[hotpath] reworked:       {_CONFIG.iterations / new_best:.0f} exec/s "
          f"({new_best * 1000:.1f} ms)")
    print(f"[hotpath] speedup:        {speedup:.2f}x (required: {REQUIRED_SPEEDUP:.1f}x)")
    if ASSERT_SPEEDUP:
        assert speedup >= REQUIRED_SPEEDUP, (
            f"random-scheduler throughput regressed: {speedup:.2f}x < {REQUIRED_SPEEDUP:.1f}x "
            f"over the seed reference"
        )


# ---------------------------------------------------------------------------
# pending-query-heavy harness: count_pending_events / has_pending_event
# ---------------------------------------------------------------------------
class _Never(Event):
    """Never sent; parks the sink in a receive so its inbox only grows."""


class _Flood(Event):
    def __init__(self, serial):
        self.serial = serial


class _Poll(Event):
    pass


class _Sink(Machine):
    """Accumulates a large inbox: blocked in a receive nothing matches."""

    def on_start(self):
        yield Receive(_Never)


class _Flooder(Machine):
    def on_start(self, sink, count):
        for serial in range(count):
            self.send(sink, _Flood(serial))


class _Poller(Machine):
    """Issues one count and one predicate-existence query per round."""

    def on_start(self, sink, rounds):
        self.sink = sink
        self.remaining = rounds
        self.observed = 0
        self.send(self.id, _Poll())

    @on_event(_Poll)
    def poll(self):
        runtime = self._runtime
        self.observed += runtime.count_pending_events(self.sink, _Flood)
        if runtime.has_pending_event(
            self.sink, _Flood, lambda event: event.serial % 7 == 0
        ):
            self.observed += 1
        if self.remaining:
            self.remaining -= 1
            self.send(self.id, _Poll())


_PENDING_INBOX = 250
_PENDING_ROUNDS = 250
#: Receive-blocked sink at quiescence is the harness's steady state, not a
#: bug; pending-query timing must not pay bug-report materialization.
_PENDING_CONFIG = TestingConfig(
    iterations=12, max_steps=600, seed=3, strategy="round-robin",
    report_deadlocks=False,
)


def _pending_entry(runtime):
    sink = runtime.create_machine(_Sink)
    runtime.create_machine(_Flooder, sink, _PENDING_INBOX)
    runtime.create_machine(_Poller, sink, _PENDING_ROUNDS)


def _pending_engine(runtime_cls):
    return TestingEngine(_pending_entry, _PENDING_CONFIG, runtime_cls=runtime_cls)


def test_bench_pending_query_speedup_vs_seed(benchmark):
    import gc

    baseline_best, new_best = float("inf"), float("inf")
    _pending_engine(BaselineRuntime).run()
    _pending_engine(TestRuntime).run()
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in range(5):
            gc.collect()
            started = time.perf_counter()
            _pending_engine(BaselineRuntime).run()
            baseline_best = min(baseline_best, time.perf_counter() - started)
            gc.collect()
            started = time.perf_counter()
            _pending_engine(TestRuntime).run()
            new_best = min(new_best, time.perf_counter() - started)
    finally:
        if gc_was_enabled:
            gc.enable()

    report = benchmark.pedantic(
        lambda: _pending_engine(TestRuntime).run(), rounds=1, iterations=1
    )
    assert report.iterations_executed == _PENDING_CONFIG.iterations

    speedup = baseline_best / new_best
    print()
    print(f"[pending] seed reference: {baseline_best * 1000:.1f} ms")
    print(f"[pending] reworked:       {new_best * 1000:.1f} ms")
    print(f"[pending] speedup:        {speedup:.2f}x (required: {REQUIRED_PENDING_SPEEDUP:.1f}x)")
    if ASSERT_SPEEDUP:
        assert speedup >= REQUIRED_PENDING_SPEEDUP, (
            f"pending-query throughput regressed: {speedup:.2f}x < "
            f"{REQUIRED_PENDING_SPEEDUP:.1f}x over the seed reference"
        )


def test_bench_pending_query_results_identical_to_seed():
    """O(1) counts change nothing observable: same tallies, same schedules."""

    def explore(runtime_cls):
        strategy = create_strategy(_PENDING_CONFIG)
        observed, traces = [], []
        for iteration in range(_PENDING_CONFIG.iterations):
            strategy.prepare_iteration(iteration)
            runtime = runtime_cls(strategy, _PENDING_CONFIG)
            assert runtime.run(_pending_entry) is None
            observed.append(runtime.machines_of_type(_Poller)[0].observed)
            traces.append(list(runtime.trace.steps))
        return observed, traces

    assert explore(TestRuntime) == explore(BaselineRuntime)


@pytest.mark.parametrize("scenario_name", ["examplesys/safety-bug", "examplesys/fixed"])
def test_bench_traces_and_bugs_unchanged(scenario_name):
    """The asserted speedup changes nothing observable for the measured
    (random) strategy: same schedules, same bugs.

    This is the benchmark's self-check only; the exhaustive equivalence
    matrix over all four strategies lives in
    ``tests/core/test_runtime_equivalence.py``.
    """
    testcase = get_scenario(scenario_name)
    config = testcase.default_config(
        strategy="random", seed=7, iterations=5,
        max_steps=300, stop_at_first_bug=False, max_bugs=2,
    )

    def explore(runtime_cls):
        strategy = create_strategy(config)
        traces, bugs = [], []
        for iteration in range(config.iterations):
            strategy.prepare_iteration(iteration)
            if strategy.exhausted:
                break
            runtime = runtime_cls(strategy, config)
            bug = runtime.run(testcase.build())
            traces.append(list(runtime.trace.steps))
            bugs.append(None if bug is None else (bug.kind, bug.message, bug.step))
        return traces, bugs

    assert explore(TestRuntime) == explore(BaselineRuntime)
