"""Benchmark: regenerate Table 1 (cost of environment modeling)."""

from repro.experiments import format_table1, generate_table1


def test_bench_table1(benchmark):
    rows = benchmark(generate_table1)
    print()
    print(format_table1(rows))
    assert len(rows) >= 3
