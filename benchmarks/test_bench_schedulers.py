"""Ablation benchmark: raw exploration throughput of each scheduling strategy."""

import pytest

from repro.core import TestingConfig, run_test
from repro.examplesys.harness import build_replication_test, fixed_configuration


@pytest.mark.parametrize("strategy", ["random", "pct", "round-robin", "dfs"])
def test_bench_scheduler_throughput(benchmark, strategy):
    config = TestingConfig(iterations=30, max_steps=400, seed=7, strategy=strategy)

    def explore():
        return run_test(build_replication_test(fixed_configuration()), config)

    report = benchmark(explore)
    assert report.iterations_executed >= 1
