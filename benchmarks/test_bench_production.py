"""Benchmark: ProductionRuntime soak + throughput regression gate.

The acceptance bar for the concurrent controller: the examplesys service
sustains >= 50k dispatched events across >= 8 concurrently-running machines
with zero monitor violations and a clean (quiescent) shutdown, at a
throughput that would catch an order-of-magnitude production-mode
regression.  The same harness classes run under the testing controller (see
``tests/core/test_production.py``); this module is the production-side gate,
mirroring how ``test_bench_runtime_hotpath.py`` gates testing mode.
"""

import os
import time

from repro.core import ProductionRuntime
from repro.examplesys.harness.service import LoadClient, build_service_test

#: Floor on sustained production dispatch throughput (events/second).  The
#: dev container and CI runners measure 50–90k ev/s; 8k leaves an ample
#: load-noise margin while still flagging structural regressions (busy
#: polling, lost wake-ups, per-event thread hops).
REQUIRED_EVENTS_PER_SECOND = 8_000

#: Same report-only escape hatch as the hot-path gate: ordinary test-suite
#: CI jobs on loaded shared runners set REPRO_BENCH_ASSERT_SPEEDUP=0.
ASSERT_SPEEDUP = os.environ.get("REPRO_BENCH_ASSERT_SPEEDUP", "1") != "0"

#: 8 clients x 700 closed-loop requests; each request costs ~10 dispatches
#: (submit, forward, 3 replications, 3 push-syncs, 2 acks) plus timer noise,
#: comfortably clearing the 50k-event soak bar.
NUM_CLIENTS = 8
NUM_REQUESTS = 700
REQUIRED_EVENTS = 50_000


def test_bench_production_soak_throughput():
    runtime = ProductionRuntime(tick_interval=0.002)
    started = time.perf_counter()
    bug = runtime.run(
        build_service_test(num_clients=NUM_CLIENTS, num_requests=NUM_REQUESTS),
        timeout=240,
    )
    elapsed = time.perf_counter() - started

    assert bug is None, f"production soak found: {bug}"

    dispatched = runtime.step_count
    # Machines that dispatched beyond their StartEvent — i.e. actually
    # participated in the soak's event traffic.
    active_machines = runtime.active_machine_count()
    throughput = dispatched / elapsed
    print()
    print(f"[production] dispatched:  {dispatched} events "
          f"across {active_machines} machines in {elapsed:.2f}s")
    print(f"[production] throughput:  {throughput:.0f} events/s "
          f"(required: {REQUIRED_EVENTS_PER_SECOND})")

    assert dispatched >= REQUIRED_EVENTS, (
        f"soak dispatched only {dispatched} events (< {REQUIRED_EVENTS})"
    )
    assert active_machines >= 8, (
        f"only {active_machines} machines dispatched events (>= 8 required)"
    )
    clients = runtime.machines_of_type(LoadClient)
    assert len(clients) == NUM_CLIENTS
    assert all(len(client.acked) == NUM_REQUESTS for client in clients), (
        "every request of every client must be acknowledged"
    )
    if ASSERT_SPEEDUP:
        assert throughput >= REQUIRED_EVENTS_PER_SECOND, (
            f"production throughput regressed: {throughput:.0f} events/s < "
            f"{REQUIRED_EVENTS_PER_SECOND}"
        )
