"""Benchmark gate: static-independence pruning cuts the DFS schedule space.

``dpor-lite`` must cover the same bounded search space as plain ``dfs`` —
finding exactly the same bug kinds — while enumerating at least 2x fewer
schedules.  Both strategies are fully deterministic, so the iteration counts
are exact, not noisy timings.

Known-good reference (one-node failover scenario, max_steps=7): DFS exhausts
the space in 10669 schedules, a v1 (method-level) independence table prunes
to 4648 (2.30x), and the v2 field-level table of PR 9 to 1862 (5.73x vs DFS,
2.50x vs v1).  At max_steps=8 the v1 gap widens to 3.26x (74156 vs 22744).
"""

try:
    from conftest import record_bench_result
except ImportError:  # imported as a plain module, outside a pytest session
    def record_bench_result(gate, **metrics):
        pass

from repro.analysis import LEGACY_TABLE_VERSION, independence_for_classes
from repro.analysis.extract import discover_classes
from repro.core import TestingConfig, TestingEngine
from repro.vnext.harness.scenarios import build_failover_test

#: deep enough that pruning shows, shallow enough for a CI-sized exhaust
MAX_STEPS = 7


def _exhaust(strategy: str, independence=None):
    config = TestingConfig(
        iterations=2_000_000,
        max_steps=MAX_STEPS,
        stop_at_first_bug=False,
        max_bugs=None,
        max_log_records=16,
        strategy=strategy,
        independence=independence,
    )
    engine = TestingEngine(build_failover_test(fixed=False, num_nodes=1), config)
    report = engine.run()
    assert report.state_space_exhausted, f"{strategy} did not exhaust the space"
    return report


def test_bench_dpor_prunes_dfs_schedule_space(benchmark):
    table = independence_for_classes(
        discover_classes(lambda: build_failover_test(fixed=False, num_nodes=1))
    )
    dfs = _exhaust("dfs")
    pruned = benchmark.pedantic(
        lambda: _exhaust("dpor-lite", independence=table), rounds=1, iterations=1
    )
    ratio = dfs.iterations_executed / pruned.iterations_executed
    print()
    print(
        f"[dpor-lite gate] dfs={dfs.iterations_executed} schedules, "
        f"dpor-lite={pruned.iterations_executed} schedules ({ratio:.2f}x fewer)"
    )
    record_bench_result(
        "dpor-lite",
        dfs_schedules=dfs.iterations_executed,
        dpor_schedules=pruned.iterations_executed,
        prune_ratio=round(ratio, 3),
        dfs_seconds=round(dfs.elapsed_seconds, 3),
        dpor_seconds=round(pruned.elapsed_seconds, 3),
    )
    # identical bug coverage over the identical bounded space
    assert dfs.bug_found and pruned.bug_found
    assert {bug.kind for bug in dfs.bugs} == {bug.kind for bug in pruned.bugs}
    assert ratio >= 2.0, f"expected >= 2x pruning, got {ratio:.2f}x"


def test_bench_dpor_v2_table_outprunes_v1(benchmark):
    """The field-level (v2) footprints must beat the method-level (v1) table
    by at least 1.2x on the same space, with identical bug coverage."""
    classes = discover_classes(lambda: build_failover_test(fixed=False, num_nodes=1))
    v1_table = independence_for_classes(classes, version=LEGACY_TABLE_VERSION)
    v2_table = independence_for_classes(classes)
    v1 = _exhaust("dpor-lite", independence=v1_table)
    v2 = benchmark.pedantic(
        lambda: _exhaust("dpor-lite", independence=v2_table), rounds=1, iterations=1
    )
    ratio = v1.iterations_executed / v2.iterations_executed
    print()
    print(
        f"[dpor-lite v2 gate] v1={v1.iterations_executed} schedules, "
        f"v2={v2.iterations_executed} schedules ({ratio:.2f}x fewer)"
    )
    record_bench_result(
        "dpor-lite-v2",
        v1_schedules=v1.iterations_executed,
        v2_schedules=v2.iterations_executed,
        prune_ratio=round(ratio, 3),
        v1_seconds=round(v1.elapsed_seconds, 3),
        v2_seconds=round(v2.elapsed_seconds, 3),
    )
    assert v1.bug_found and v2.bug_found
    assert {bug.kind for bug in v1.bugs} == {bug.kind for bug in v2.bugs}
    assert ratio >= 1.2, f"expected >= 1.2x field-level pruning, got {ratio:.2f}x"


def test_bench_dpor_without_table_degenerates_to_dfs():
    dfs = _exhaust("dfs")
    plain = _exhaust("dpor-lite", independence=None)
    assert plain.iterations_executed == dfs.iterations_executed
    assert {bug.kind for bug in plain.bugs} == {bug.kind for bug in dfs.bugs}
