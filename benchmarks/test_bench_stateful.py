"""Benchmark gate: state-fingerprint dedupe cuts the DFS schedule space.

Stateful search (``TestingConfig.stateful``) must cover the same bounded
search space as plain ``dfs`` — finding exactly the same bug kinds — while
enumerating at least 2x fewer schedules, by pruning schedule prefixes that
commute into an already fully-explored global state.  Both searches are
fully deterministic, so the iteration counts are exact, not noisy timings.

Known-good reference (one-node failover scenario, max_steps=7): DFS exhausts
the space in 10669 schedules, stateful DFS in 3428 — a 3.11x reduction.
Composed with dpor-lite sleep sets the counts drop 4648 -> 3147.

The determinism gate additionally pins the *content* of the fingerprint set:
the sha256 digest over the sorted fingerprints must be identical across
repeated runs and across a fresh interpreter with a different
``PYTHONHASHSEED`` — fingerprints are pure functions of program state, never
of Python's per-process string hashing.
"""

import hashlib
import os
import subprocess
import sys

try:
    from conftest import record_bench_result
except ImportError:  # imported as a plain module (e.g. the hashseed
    # subprocess below), where "conftest" is the repo-root one: the gate
    # metrics sink only exists under a pytest session anyway.
    def record_bench_result(gate, **metrics):
        pass

from repro.analysis import independence_for_classes
from repro.analysis.extract import discover_classes
from repro.core import TestingConfig, TestingEngine
from repro.vnext.harness.scenarios import build_failover_test

#: deep enough that revisits happen, shallow enough for a CI-sized exhaust
MAX_STEPS = 7


def _exhaust(strategy: str, stateful: bool = False, independence=None):
    config = TestingConfig(
        iterations=2_000_000,
        max_steps=MAX_STEPS,
        stop_at_first_bug=False,
        max_bugs=None,
        max_log_records=16,
        strategy=strategy,
        stateful=stateful,
        independence=independence,
    )
    engine = TestingEngine(build_failover_test(fixed=False, num_nodes=1), config)
    report = engine.run()
    assert report.state_space_exhausted, f"{strategy} did not exhaust the space"
    return report


def _fingerprint_digest(report) -> str:
    encoded = ",".join(format(fp, "016x") for fp in sorted(report.coverage.fingerprints))
    return hashlib.sha256(encoded.encode()).hexdigest()


def test_bench_stateful_prunes_dfs_schedule_space(benchmark):
    dfs = _exhaust("dfs")
    pruned = benchmark.pedantic(
        lambda: _exhaust("dfs", stateful=True), rounds=1, iterations=1
    )
    ratio = dfs.iterations_executed / pruned.iterations_executed
    print()
    print(
        f"[stateful gate] dfs={dfs.iterations_executed} schedules, "
        f"stateful={pruned.iterations_executed} schedules ({ratio:.2f}x fewer)"
    )
    record_bench_result(
        "stateful",
        dfs_schedules=dfs.iterations_executed,
        stateful_schedules=pruned.iterations_executed,
        prune_ratio=round(ratio, 3),
        dfs_seconds=round(dfs.elapsed_seconds, 3),
        stateful_seconds=round(pruned.elapsed_seconds, 3),
        distinct_states=len(pruned.coverage.fingerprints),
    )
    # identical bug coverage over the identical bounded space
    assert dfs.bug_found and pruned.bug_found
    assert {bug.kind for bug in dfs.bugs} == {bug.kind for bug in pruned.bugs}
    assert ratio >= 2.0, f"expected >= 2x pruning, got {ratio:.2f}x"


def test_bench_stateful_composes_with_dpor_lite():
    table = independence_for_classes(
        discover_classes(lambda: build_failover_test(fixed=False, num_nodes=1))
    )
    sleep_only = _exhaust("dpor-lite", independence=table)
    composed = _exhaust("dpor-lite", stateful=True, independence=table)
    assert composed.iterations_executed < sleep_only.iterations_executed
    assert {bug.kind for bug in composed.bugs} == {bug.kind for bug in sleep_only.bugs}


def test_bench_fingerprints_deterministic_across_processes():
    """Same search -> byte-identical fingerprint set, even cross-process."""
    local = _fingerprint_digest(_exhaust("dfs", stateful=True))
    again = _fingerprint_digest(_exhaust("dfs", stateful=True))
    assert local == again

    # A fresh interpreter with a different string-hash seed must agree:
    # fingerprints come from blake2b over canonical encodings, not hash().
    script = (
        "import sys; sys.path.insert(0, sys.argv[1])\n"
        "import benchmarks.test_bench_stateful as bench\n"
        "print(bench._fingerprint_digest(bench._exhaust('dfs', stateful=True)))\n"
    )
    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = "424242"
    env["PYTHONPATH"] = os.path.join(root, "src")
    result = subprocess.run(
        [sys.executable, "-c", script, root],
        capture_output=True,
        text=True,
        env=env,
        check=True,
        timeout=600,
    )
    assert result.stdout.strip() == local
