"""Benchmark gate: the shrinker must earn its keep on a seeded bug trace.

A random-strategy run on the examplesys safety bug (seed 73) records a
151-step counterexample whose minimal core is ~25 steps; the delta-debugging
shrinker must reduce the step count by at least ``REQUIRED_REDUCTION``.  The
whole pipeline — bug search, shrink, strict replay of the result — is fully
deterministic, so unlike the throughput benchmarks this gate does not depend
on machine load and is always asserted.
"""

import time

from repro.core import TestingEngine
from repro.core.registry import get_scenario

#: Required step-count reduction (original / shrunk) on the seeded trace.
REQUIRED_REDUCTION = 5.0

SCENARIO = "examplesys/safety-bug"
SEED = 73


def test_shrink_reduces_seeded_random_bug_trace_at_least_5x():
    testcase = get_scenario(SCENARIO)
    config = testcase.default_config(seed=SEED, strategy="random", iterations=200)
    engine = TestingEngine(testcase.build(), config)
    report = engine.run()
    assert report.bug_found, "seeded run must find the safety bug"
    bug = report.first_bug

    started = time.perf_counter()
    result = engine.shrink_bug(bug)
    elapsed = time.perf_counter() - started

    stats = result.stats
    print(
        f"\n[bench] shrink {SCENARIO} seed={SEED}: "
        f"{stats.original_length} -> {stats.final_length} steps "
        f"({stats.reduction:.1f}x) in {elapsed:.2f}s "
        f"({stats.replays_run} replays, {stats.candidates_tried} candidates)"
    )

    assert stats.reduction >= REQUIRED_REDUCTION, (
        f"shrinker reduced the seeded trace only {stats.reduction:.1f}x "
        f"(required {REQUIRED_REDUCTION:.0f}x): "
        f"{stats.original_length} -> {stats.final_length} steps"
    )
    # the minimized trace replays in strict mode to the same bug class
    replayed = engine.replay(result.trace)
    assert replayed is not None and replayed.kind == bug.kind
