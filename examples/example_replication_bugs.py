#!/usr/bin/env python
"""The §2.2 example system: find its safety bug and its liveness bug.

The three harness variants are registered scenarios, so this example drives
them by name — the same names work with ``python -m repro run``.
"""

from repro import TestingConfig, run_scenario


def main():
    safety = run_scenario(
        "examplesys/safety-bug",
        TestingConfig(iterations=300, max_steps=600, seed=7),
    )
    print("[duplicate replica counting]", safety.summary())
    liveness = run_scenario(
        "examplesys/liveness-bug",
        TestingConfig(iterations=100, max_steps=600, seed=7),
    )
    print("[missing counter reset]     ", liveness.summary())
    fixed = run_scenario(
        "examplesys/fixed",
        TestingConfig(iterations=300, max_steps=600, seed=7),
    )
    print("[both bugs fixed]           ", fixed.summary())


if __name__ == "__main__":
    main()
