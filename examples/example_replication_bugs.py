#!/usr/bin/env python
"""The §2.2 example system: find its safety bug and its liveness bug."""

from repro.core import TestingConfig, run_test
from repro.examplesys.harness import (
    build_replication_test,
    fixed_configuration,
    liveness_bug_configuration,
    safety_bug_configuration,
)


def main():
    safety = run_test(
        build_replication_test(safety_bug_configuration(), check_liveness=False),
        TestingConfig(iterations=300, max_steps=600, seed=7),
    )
    print("[duplicate replica counting]", safety.summary())
    liveness = run_test(
        build_replication_test(liveness_bug_configuration()),
        TestingConfig(iterations=100, max_steps=600, seed=7),
    )
    print("[missing counter reset]     ", liveness.summary())
    fixed = run_test(
        build_replication_test(fixed_configuration()),
        TestingConfig(iterations=300, max_steps=600, seed=7),
    )
    print("[both bugs fixed]           ", fixed.summary())


if __name__ == "__main__":
    main()
