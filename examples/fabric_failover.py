#!/usr/bin/env python
"""Case study 3: test a user service against the Service Fabric model and find
the "promoted before state copy" bug (§5)."""

from repro.core import TestingConfig, run_test
from repro.fabric import build_cscale_test, build_failover_test


def main():
    buggy = run_test(build_failover_test(True), TestingConfig(iterations=200, max_steps=500, seed=3))
    print("[Fabric model, buggy promotion]", buggy.summary())
    fixed = run_test(build_failover_test(False), TestingConfig(iterations=200, max_steps=500, seed=3))
    print("[Fabric model, fixed]          ", fixed.summary())
    cscale = run_test(build_cscale_test(True), TestingConfig(iterations=200, max_steps=500, seed=3))
    print("[CScale-like stage, bug]       ", cscale.summary())


if __name__ == "__main__":
    main()
