#!/usr/bin/env python
"""Case study 3: test a user service against the Service Fabric model and find
the "promoted before state copy" bug (§5), using registered scenarios."""

from repro import TestingConfig, run_scenario


def main():
    config = TestingConfig(iterations=200, max_steps=500, seed=3)
    buggy = run_scenario("fabric/promotion-before-copy", config)
    print("[Fabric model, buggy promotion]", buggy.summary())
    fixed = run_scenario("fabric/failover-fixed", config)
    print("[Fabric model, fixed]          ", fixed.summary())
    cscale = run_scenario("fabric/cscale-initialization", config)
    print("[CScale-like stage, bug]       ", cscale.summary())


if __name__ == "__main__":
    main()
