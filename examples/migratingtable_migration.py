#!/usr/bin/env python
"""Case study 2: run a live migration end to end, then hunt a re-introduced
MigratingTable bug with the systematic testing engine."""

from repro import TestingConfig, run_scenario
from repro.migratingtable import (
    InMemoryChainTable,
    MigratingTable,
    MigratingTableBug,
    Migrator,
    OpKind,
    TableOperation,
    VERSION_PROPERTY,
)
def synchronous_walkthrough():
    old, new = InMemoryChainTable("old"), InMemoryChainTable("new")
    for index in range(3):
        old.seed("tenant-1", f"row-{index}", {"value": index, VERSION_PROPERTY: 1}, version=1)
    table = MigratingTable(old, new)
    print("before migration:", [(r.row_key, r.properties) for r in MigratingTable.run_to_completion(table.query_atomic("tenant-1"))])
    MigratingTable.run_to_completion(Migrator(old, new, ["tenant-1"]).run())
    MigratingTable.run_to_completion(
        table.execute(TableOperation(OpKind.REPLACE, "tenant-1", "row-0", {"value": 42}))
    )
    print("after migration: ", [(r.row_key, r.properties) for r in MigratingTable.run_to_completion(table.query_atomic("tenant-1"))])
    print("old table is now empty:", len(old.query_atomic("tenant-1")) == 0)


def hunt_a_bug():
    report = run_scenario(
        f"migratingtable/{MigratingTableBug.DELETE_PRIMARY_KEY.value}",
        TestingConfig(iterations=300, max_steps=4000, seed=5),
    )
    print("[DeletePrimaryKey]", report.summary())


def main():
    synchronous_walkthrough()
    hunt_a_bug()


if __name__ == "__main__":
    main()
