#!/usr/bin/env python
"""Quickstart: model a tiny protocol, specify it, and systematically test it.

A client sends a request and waits for a response; the server forgets to
respond when a controlled nondeterministic "drop" happens.  A liveness monitor
catches the hang, and the trace replays deterministically.
"""

from repro.core import (
    Event,
    Machine,
    Monitor,
    Receive,
    TestingConfig,
    TestingEngine,
    on_event,
)


class Request(Event):
    def __init__(self, sender):
        self.sender = sender


class Response(Event):
    pass


class Notify(Event):
    def __init__(self, kind):
        self.kind = kind


class Server(Machine):
    @on_event(Request)
    def handle(self, event):
        if self.random():  # a controlled nondeterministic "message drop"
            self.log("dropping the response")
            return
        self.send(event.sender, Response())


class Client(Machine):
    def on_start(self, server):
        self.notify_monitor(ResponseMonitor, Notify("request"))
        self.send(server, Request(self.id))
        yield Receive(Response)
        self.notify_monitor(ResponseMonitor, Notify("response"))


class ResponseMonitor(Monitor):
    """Hot while a request is outstanding."""

    initial_state = "idle"
    hot_states = frozenset({"waiting"})

    @on_event(Notify)
    def observe(self, event):
        self.goto("waiting" if event.kind == "request" else "idle")


def test_entry(runtime):
    runtime.register_monitor(ResponseMonitor)
    server = runtime.create_machine(Server)
    runtime.create_machine(Client, server)


def main():
    engine = TestingEngine(test_entry, TestingConfig(iterations=100, max_steps=100, seed=0))
    report = engine.run()
    print(report.summary())
    if report.bug_found:
        print("replaying the buggy schedule ...")
        replayed = engine.replay(report.first_bug.trace)
        print(f"replayed bug: {replayed}")
        print("last log lines of the buggy execution:")
        for line in report.first_bug.log[-5:]:
            print(f"  {line}")


if __name__ == "__main__":
    main()
