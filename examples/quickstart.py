#!/usr/bin/env python
"""Quickstart: model a tiny protocol, register it as a scenario, and hunt its
bug with a parallel strategy portfolio.

A client sends a request and waits for a response; the server forgets to
respond when a controlled nondeterministic "drop" happens.  A liveness monitor
catches the hang.  The scenario self-registers with ``@scenario``, so the same
harness is also reachable from the CLI once this file is imported:

    python -m repro run --import examples/quickstart.py \
        --scenario quickstart/dropped-response --workers 2
"""

from repro import (
    Event,
    Machine,
    Monitor,
    Portfolio,
    Receive,
    on_event,
    scenario,
)
from repro.core import replay_trace


class Request(Event):
    def __init__(self, sender):
        self.sender = sender


class Response(Event):
    pass


class Notify(Event):
    def __init__(self, kind):
        self.kind = kind


class Server(Machine):
    @on_event(Request)
    def handle(self, event):
        if self.random():  # a controlled nondeterministic "message drop"
            self.log("dropping the response")
            return
        self.send(event.sender, Response())


class Client(Machine):
    def on_start(self, server):
        self.notify_monitor(ResponseMonitor, Notify("request"))
        self.send(server, Request(self.id))
        yield Receive(Response)
        self.notify_monitor(ResponseMonitor, Notify("response"))


class ResponseMonitor(Monitor):
    """Hot while a request is outstanding."""

    initial_state = "idle"
    hot_states = frozenset({"waiting"})

    @on_event(Notify)
    def observe(self, event):
        self.goto("waiting" if event.kind == "request" else "idle")


@scenario(
    "quickstart/dropped-response",
    tags=("quickstart", "liveness", "bug"),
    expected_bug="DroppedResponse",
    expected_bug_kind="liveness",
    max_steps=100,
)
def dropped_response_scenario():
    """Request/response protocol whose server may silently drop the reply."""

    def test_entry(runtime):
        runtime.register_monitor(ResponseMonitor)
        server = runtime.create_machine(Server)
        runtime.create_machine(Client, server)

    return test_entry


def main():
    # Fan the scenario out across two strategies on two worker processes.
    portfolio = Portfolio(
        "quickstart/dropped-response",
        strategies=["random", "pct"],
        iterations=100,
        num_workers=2,
        seed=0,
    )
    report = portfolio.run()
    print(report.summary())

    if report.bug_found:
        bug = report.first_bug
        winner = report.winning_result
        print("replaying the buggy schedule (by scenario name) ...")
        replayed = replay_trace(report.scenario, bug.trace, winner.job.config)
        print(f"replayed bug: {replayed}")
        print("last log lines of the buggy execution:")
        for line in bug.log[-5:]:
            print(f"  {line}")

        # Reports round-trip to JSON; `python -m repro replay` consumes these.
        report.save("quickstart-report.json")
        print("report written to quickstart-report.json (replay with: "
              "python -m repro replay quickstart-report.json "
              "--import examples/quickstart.py)")


if __name__ == "__main__":
    main()
