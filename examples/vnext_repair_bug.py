#!/usr/bin/env python
"""Case study 1: find the Azure Storage vNext extent-repair liveness bug (§3.6),
replay it, and show that the fixed Extent Manager passes a clean run."""

from repro.core import TestingConfig, TestingEngine, run_test
from repro.vnext.harness import build_failover_test


def main():
    config = TestingConfig(iterations=200, max_steps=3000, seed=11)
    engine = TestingEngine(build_failover_test(fixed=False), config)
    report = engine.run()
    print("[buggy Extent Manager]", report.summary())
    if report.bug_found:
        interesting = [
            line
            for line in report.first_bug.log
            if "expired" in line or "scheduled repairs" in line or "failing" in line or "RepairMonitor ->" in line
        ]
        print("key events of the buggy schedule:")
        for line in interesting[:12]:
            print(f"  {line}")
        print("replay:", engine.replay(report.first_bug.trace))

    fixed_report = run_test(build_failover_test(fixed=True), config)
    print("[fixed Extent Manager]", fixed_report.summary())


if __name__ == "__main__":
    main()
