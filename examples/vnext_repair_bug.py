#!/usr/bin/env python
"""Case study 1: find the Azure Storage vNext extent-repair liveness bug (§3.6)
with a two-strategy portfolio, replay it, and validate the fix's clean run."""

from repro import Portfolio, TestingConfig, run_scenario
from repro.core import replay_trace


def main():
    portfolio = Portfolio(
        "vnext/extent-node-liveness",
        strategies=["random", "pct"],
        iterations=200,
        num_workers=2,
        seed=11,
    )
    report = portfolio.run()
    print("[buggy Extent Manager]", report.summary())
    if report.bug_found:
        bug = report.first_bug
        interesting = [
            line
            for line in bug.log
            if "expired" in line or "scheduled repairs" in line or "failing" in line or "RepairMonitor ->" in line
        ]
        print("key events of the buggy schedule:")
        for line in interesting[:12]:
            print(f"  {line}")
        winner = report.winning_result
        print("replay:", replay_trace(report.scenario, bug.trace, winner.job.config))

    fixed_report = run_scenario(
        "vnext/failover-fixed", TestingConfig(iterations=200, max_steps=3000, seed=11)
    )
    print("[fixed Extent Manager]", fixed_report.summary())


if __name__ == "__main__":
    main()
