"""Machines of the Fabric model and its test harness (§5).

The :class:`ClusterManagerMachine` is the Fabric model itself: it launches
replicas, routes client operations to the primary, handles replica failures,
elects a new primary and brings a replacement secondary up to date through the
copy-state protocol.  The :class:`ReplicaMachine` hosts one instance of the
user service.  The :class:`FabricTestDriver` plays the client and injects a
nondeterministic primary failure, the scenario in which the paper found the
"promoted before copy" bug in the model.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.core import Machine, MachineId, State, TestRuntime, on_event
from repro.core.registry import scenario

from .model import (
    ClientRequest,
    CopyCompleted,
    CopyStateRequest,
    CopyStateResponse,
    CounterService,
    FabricModelConfig,
    FailReplica,
    NotifyPrimaryElected,
    NotifyPromotion,
    PromoteToActiveSecondary,
    PromoteToPrimary,
    PromotionSafetyMonitor,
    PrimaryLivenessMonitor,
    ReplicaFailed,
    ReplicateOp,
    Service,
    StreamStageService,
)


class ReplicaMachine(Machine):
    """Hosts one replica of a user service.

    The replica's role is its *state*: the hand-rolled ``self.role`` string
    of the flat model is replaced by first-class states, with the promotion
    events declared per state.  Role-independent protocol handlers (copy
    state, replication, failure) stay wildcard — they apply in every role.
    """

    ignore_unhandled_events = True

    def on_start(self, cluster: MachineId, service_factory: Callable[[], Service], initialize: bool = True) -> None:
        self.cluster = cluster
        self.service = service_factory()
        if initialize:
            self.service.initialize()
        self.copy_completed = initialize

    class IdleSecondary(State, initial=True):
        """Freshly placed replica, not yet serving in the replica set."""

    class ActiveSecondary(State):
        """Caught-up secondary applying the primary's replicated operations."""

    class Primary(State):
        @on_event(ClientRequest)
        def handle_client_request(self, event: ClientRequest) -> None:
            self.service.apply(event.payload)

    # ------------------------------------------------------------------
    # promotions (any role may be promoted; the monitors judge legality)
    # ------------------------------------------------------------------
    @on_event(PromoteToPrimary)
    def become_primary(self) -> None:
        self.goto(ReplicaMachine.Primary)
        self.notify_monitor(PromotionSafetyMonitor, NotifyPrimaryElected(self.id))
        self.notify_monitor(PrimaryLivenessMonitor, NotifyPrimaryElected(self.id))

    @on_event(PromoteToActiveSecondary)
    def become_active_secondary(self) -> None:
        self.goto(ReplicaMachine.ActiveSecondary)
        self.notify_monitor(PromotionSafetyMonitor, NotifyPromotion(self.id, self.copy_completed))

    # ------------------------------------------------------------------
    # role-independent protocol handlers
    # ------------------------------------------------------------------
    @on_event(ClientRequest)
    def misrouted_client_request(self, event: ClientRequest) -> None:
        # Only the Primary state handles client requests; reaching this
        # wildcard fallback means the cluster manager routed a request to a
        # replica in any other role.
        self.assert_that(False, "client request routed to a non-primary replica")

    @on_event(ReplicateOp)
    def handle_replication(self, event: ReplicateOp) -> None:
        if not self.copy_completed:
            # A secondary that has not caught up yet ignores replicated
            # operations; the state copy it is waiting for already includes
            # their effect.
            return
        self.service.apply(event.payload)

    @on_event(CopyStateRequest)
    def handle_copy_request(self, event: CopyStateRequest) -> None:
        self.send(event.target, CopyStateResponse(self.service.get_state()))

    @on_event(CopyStateResponse)
    def handle_copy_response(self, event: CopyStateResponse) -> None:
        self.service.set_state(event.state)
        self.copy_completed = True
        self.send(self.cluster, CopyCompleted(self.id))

    @on_event(FailReplica)
    def fail(self) -> None:
        self.send(self.cluster, ReplicaFailed(self.id))
        if self.current_state == "Primary":
            self.notify_monitor(PrimaryLivenessMonitor, ReplicaFailed(self.id))
        self.halt()


class ClusterManagerMachine(Machine):
    """The Fabric model: replica placement, failover, copy-state, promotion."""

    def on_start(
        self,
        service_factory: Callable[[], Service],
        config: Optional[FabricModelConfig] = None,
    ) -> None:
        self.config = config or FabricModelConfig()
        self.service_factory = service_factory
        self.replicas: List[MachineId] = []
        self.copying: Dict[MachineId, bool] = {}
        self.primary: Optional[MachineId] = None
        for index in range(self.config.replica_count):
            replica = self.create(
                ReplicaMachine, self.id, service_factory, True, name=f"Replica-{index}"
            )
            self.replicas.append(replica)
        self.primary = self.replicas[0]
        self.send(self.primary, PromoteToPrimary())
        for secondary in self.replicas[1:]:
            self.send(secondary, PromoteToActiveSecondary())

    # ------------------------------------------------------------------
    class Managing(State, initial=True):
        @on_event(ClientRequest)
        def route_request(self, event: ClientRequest) -> None:
            if self.primary is None:
                return
            self.send(self.primary, event)
            for replica in self.replicas:
                if replica != self.primary:
                    self.send(replica, ReplicateOp(event.payload))

        @on_event(ReplicaFailed)
        def handle_replica_failure(self, event: ReplicaFailed) -> None:
            if event.replica in self.replicas:
                self.replicas.remove(event.replica)
            self.copying.pop(event.replica, None)
            was_primary = event.replica == self.primary
            if was_primary:
                self.primary = None
                self._elect_new_primary()
            # Launch a replacement secondary that must catch up via copy-state.
            replacement = self.create(
                ReplicaMachine,
                self.id,
                self.service_factory,
                False,
                name=f"Replica-{len(self.replicas)}r",
            )
            self.replicas.append(replacement)
            self.copying[replacement] = True
            if self.primary is not None:
                self.send(self.primary, CopyStateRequest(replacement))
                if self.config.allow_promote_without_copy:
                    # BUG: the replacement is promoted to active secondary as
                    # soon as the copy has been *requested*, not when it has
                    # completed.
                    self.send(replacement, PromoteToActiveSecondary())

        @on_event(CopyCompleted)
        def handle_copy_completed(self, event: CopyCompleted) -> None:
            if self.copying.pop(event.replica, False):
                self.send(event.replica, PromoteToActiveSecondary())

    def _elect_new_primary(self) -> None:
        if self.config.allow_promote_without_copy:
            # BUG: any remaining replica may be elected, including one that is
            # still waiting for its copy of the state; it is then promoted to
            # active secondary without ever receiving the state.
            candidates = list(self.replicas)
        else:
            candidates = [r for r in self.replicas if not self.copying.get(r, False)]
        if not candidates:
            return
        self.primary = self.choose(candidates)
        self.copying.pop(self.primary, None)
        self.send(self.primary, PromoteToPrimary())


class FabricTestDriver(Machine):
    """Sends client requests and injects a nondeterministic primary failure."""

    class _Inject(ClientRequest):
        pass

    def on_start(
        self,
        service_factory: Callable[[], Service],
        config: Optional[FabricModelConfig] = None,
        num_requests: int = 3,
    ) -> None:
        self.config = config or FabricModelConfig()
        self.cluster = self.create(ClusterManagerMachine, service_factory, self.config, name="Cluster")
        self.replicas_to_fail = 1
        for index in range(num_requests):
            self.send(self.cluster, ClientRequest(index + 1))
        self.send(self.id, FailReplica())

    class Injecting(State, initial=True):
        @on_event(FailReplica)
        def inject_failure(self) -> None:
            cluster = self._runtime.machine_instance(self.cluster)
            replicas = list(getattr(cluster, "replicas", []))
            if not replicas:
                # The cluster manager has not started yet; try again later
                # (the retry point is itself subject to scheduling, so
                # failures can be injected at any point of the execution).
                self.send(self.id, FailReplica())
                return
            victim = self.choose(replicas)
            self.send(victim, FailReplica())


# ---------------------------------------------------------------------------
# test entries
# ---------------------------------------------------------------------------
def build_failover_test(
    allow_promote_without_copy: bool = False,
    num_requests: int = 3,
) -> Callable[[TestRuntime], None]:
    """Primary-failure scenario over the counter service."""
    config = FabricModelConfig(allow_promote_without_copy=allow_promote_without_copy)

    def test_entry(runtime: TestRuntime) -> None:
        runtime.register_monitor(PromotionSafetyMonitor)
        runtime.register_monitor(PrimaryLivenessMonitor)
        runtime.create_machine(FabricTestDriver, CounterService, config, num_requests, name="Driver")

    return test_entry


class _UnwiredStreamStage(StreamStageService):
    """A stream stage whose pipeline wiring step was forgotten.

    ``initialize`` is a no-op, so the first event that reaches the stage hits
    uninitialized state — the analog of the NullReferenceException the paper
    reports finding in CScale when running it against the Fabric model.
    """

    def initialize(self) -> None:  # BUG: wiring forgotten
        pass


def build_cscale_test(skip_stage_initialization: bool = False) -> Callable[[TestRuntime], None]:
    """CScale-like chained stream stage running on the Fabric model."""
    config = FabricModelConfig(skip_stage_initialization=skip_stage_initialization)
    stage_cls = _UnwiredStreamStage if skip_stage_initialization else StreamStageService

    def test_entry(runtime: TestRuntime) -> None:
        runtime.register_monitor(PromotionSafetyMonitor)
        runtime.create_machine(FabricTestDriver, stage_cls, config, 2, name="Driver")

    return test_entry


# ---------------------------------------------------------------------------
# registered scenarios (discoverable via `python -m repro list-scenarios`)
# ---------------------------------------------------------------------------
@scenario(
    "fabric/promotion-before-copy",
    tags=("fabric", "safety", "bug"),
    expected_bug="PromotedBeforeCopy",
    expected_bug_kind="safety",
    max_steps=500,
    case_study=3,
)
def promotion_bug_scenario():
    """§5 primary-failure scenario on the Fabric model with the promotion bug."""
    return build_failover_test(allow_promote_without_copy=True)


@scenario(
    "fabric/failover-fixed",
    tags=("fabric", "clean"),
    max_steps=500,
    case_study=3,
)
def failover_fixed_scenario():
    """§5 primary-failure scenario with the promotion bug fixed — clean run."""
    return build_failover_test(allow_promote_without_copy=False)


@scenario(
    "fabric/cscale-initialization",
    tags=("fabric", "safety", "bug"),
    expected_bug="CScaleStageInitialization",
    expected_bug_kind="safety",
    max_steps=500,
    case_study=3,
)
def cscale_bug_scenario():
    """CScale-like stream stage whose pipeline wiring step was forgotten."""
    return build_cscale_test(skip_stage_initialization=True)
