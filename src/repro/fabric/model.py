"""A P#-style model of Azure Service Fabric replica management (§5).

The paper's third case study modeled the lowest Fabric API layer so that
Fabric *services* could be tested against it.  This module reproduces that
model: a cluster manager that keeps a primary and a set of secondary replicas
of a user service, fails replicas on request, elects new primaries and brings
replacement secondaries up to date through a copy-state protocol.

The model contains the assertion the paper describes: **only a secondary that
has completed the state copy may be promoted to an active secondary**.  The
re-introducible bug (``FabricModelConfig.allow_promote_without_copy``) elects
a secondary that is still waiting for its state copy and promotes it, exactly
the incorrect behaviour the authors found while testing their own model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.core import Event, MachineId, Monitor, State, on_event


# ---------------------------------------------------------------------------
# user services
# ---------------------------------------------------------------------------
class Service:
    """Base class for user services hosted on the Fabric model.

    A service mutates its state in response to client requests on the primary
    replica; the state is shipped to secondaries through ``get_state`` /
    ``set_state`` during copy and through ``apply`` for regular replication.
    """

    def __init__(self) -> None:
        self.initialized = False

    def initialize(self) -> None:
        self.initialized = True

    def apply(self, request: object) -> object:
        raise NotImplementedError

    def get_state(self) -> object:
        raise NotImplementedError

    def set_state(self, state: object) -> None:
        raise NotImplementedError


class CounterService(Service):
    """Simple replicated counter used to exercise the model."""

    def __init__(self) -> None:
        super().__init__()
        self.value = 0

    def apply(self, request: object) -> object:
        if not self.initialized:
            # The analog of the CScale NullReferenceException: touching state
            # before initialization.
            raise AttributeError("service state accessed before initialization")
        self.value += int(request)
        return self.value

    def get_state(self) -> object:
        return self.value

    def set_state(self, state: object) -> None:
        self.value = int(state)
        self.initialized = True


class StreamStageService(Service):
    """A CScale-like stream-processing stage: transforms and forwards events."""

    def __init__(self, multiplier: int = 2) -> None:
        super().__init__()
        self.multiplier = multiplier
        self.processed: List[int] = []

    def apply(self, request: object) -> object:
        if not self.initialized:
            raise AttributeError("stream stage used before initialization")
        value = int(request) * self.multiplier
        self.processed.append(value)
        return value

    def get_state(self) -> object:
        return list(self.processed)

    def set_state(self, state: object) -> None:
        self.processed = list(state)
        self.initialized = True


# ---------------------------------------------------------------------------
# events
# ---------------------------------------------------------------------------
class ClientRequest(Event):
    def __init__(self, payload: int) -> None:
        self.payload = payload


class ReplicateOp(Event):
    def __init__(self, payload: int) -> None:
        self.payload = payload


class CopyStateRequest(Event):
    def __init__(self, target: MachineId) -> None:
        self.target = target


class CopyStateResponse(Event):
    def __init__(self, state: object) -> None:
        self.state = state


class PromoteToActiveSecondary(Event):
    pass


class PromoteToPrimary(Event):
    pass


class CopyCompleted(Event):
    def __init__(self, replica: "MachineId") -> None:
        self.replica = replica


class FailReplica(Event):
    pass


class ReplicaFailed(Event):
    def __init__(self, replica: MachineId) -> None:
        self.replica = replica


class NotifyPromotion(Event):
    def __init__(self, replica: MachineId, copy_completed: bool) -> None:
        self.replica = replica
        self.copy_completed = copy_completed


class NotifyPrimaryElected(Event):
    def __init__(self, replica: MachineId) -> None:
        self.replica = replica


# ---------------------------------------------------------------------------
# configuration and monitors
# ---------------------------------------------------------------------------
@dataclass
class FabricModelConfig:
    """Configuration of the Fabric model (with its re-introducible bug)."""

    replica_count: int = 3
    #: When true (the bug found while testing the model) the cluster manager
    #: may elect a secondary that has not finished its state copy and then
    #: promote it to active secondary.
    allow_promote_without_copy: bool = False
    #: When true, the stream stage processes events before initialization,
    #: reproducing the CScale null-dereference class of failure.
    skip_stage_initialization: bool = False


class PromotionSafetyMonitor(Monitor):
    """Only secondaries that completed the state copy may become active."""

    class Watching(State, initial=True):
        @on_event(NotifyPromotion)
        def on_promotion(self, event: NotifyPromotion) -> None:
            self.assert_that(
                event.copy_completed,
                f"replica {event.replica} was promoted to active secondary before "
                "receiving a copy of the state",
            )

        @on_event(NotifyPrimaryElected)
        def on_primary(self, event: NotifyPrimaryElected) -> None:
            pass


class PrimaryLivenessMonitor(Monitor):
    """Hot while the cluster has no primary replica."""

    class NoPrimary(State, initial=True, hot=True):
        @on_event(NotifyPrimaryElected)
        def elected(self) -> None:
            self.goto(PrimaryLivenessMonitor.HasPrimary)

        @on_event(ReplicaFailed)
        def still_down(self) -> None:
            pass

    class HasPrimary(State):
        @on_event(ReplicaFailed)
        def primary_failed(self) -> None:
            self.goto(PrimaryLivenessMonitor.NoPrimary)

        @on_event(NotifyPrimaryElected)
        def re_elected(self) -> None:
            pass
