"""Case study 3: a model of Azure Service Fabric replica management (§5)."""

from .harness import (
    ClusterManagerMachine,
    FabricTestDriver,
    ReplicaMachine,
    build_cscale_test,
    build_failover_test,
)
from .model import (
    ClientRequest,
    CounterService,
    FabricModelConfig,
    PrimaryLivenessMonitor,
    PromotionSafetyMonitor,
    Service,
    StreamStageService,
)

__all__ = [
    "ClientRequest",
    "ClusterManagerMachine",
    "CounterService",
    "FabricModelConfig",
    "FabricTestDriver",
    "PrimaryLivenessMonitor",
    "PromotionSafetyMonitor",
    "ReplicaMachine",
    "Service",
    "StreamStageService",
    "build_cscale_test",
    "build_failover_test",
]
