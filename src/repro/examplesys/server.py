"""The "real" server component of the §2.2 example replication system.

This class is the system-under-test of the introductory example: it is plain
Python with no dependency on the testing framework, and talks to the outside
world only through a :class:`ServerNetwork`, which the harness replaces with a
modeled network (exactly how the vNext harness replaces the real network
engine in §3.1).

The paper plants two bugs in this component:

* **Safety bug** — the server counts every up-to-date sync report towards the
  replica counter, even repeated reports from the same node, so it may send
  ``Ack`` before three *distinct* replicas exist.
* **Liveness bug** — the server never resets the replica counter after sending
  ``Ack``, so a second client request is never acknowledged.

Both bugs are present by default and can be individually fixed through
:class:`ServerConfig`, which is how the evaluation re-introduces them.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Dict, List, Optional


class ServerNetwork(abc.ABC):
    """Network interface used by the server to reach storage nodes and clients."""

    @abc.abstractmethod
    def send_replication_request(self, node_id: int, data: int) -> None:
        """Ask storage node ``node_id`` to store ``data``."""

    @abc.abstractmethod
    def send_ack(self, data: int) -> None:
        """Acknowledge the current client request."""


@dataclass
class ServerConfig:
    """Configuration and bug switches of the example server."""

    replica_target: int = 3
    #: When true (the paper's buggy behaviour) duplicate sync reports from the
    #: same node each increment the replica counter.
    count_duplicate_replicas: bool = True
    #: When false (the paper's buggy behaviour) the replica counter keeps its
    #: value after an Ack, so later requests are never acknowledged.
    reset_counter_on_ack: bool = False


class ReplicationServer:
    """Replicates each client value to a set of storage nodes."""

    def __init__(self, node_ids: List[int], network: ServerNetwork, config: Optional[ServerConfig] = None) -> None:
        self.config = config or ServerConfig()
        self.network = network
        self.node_ids = list(node_ids)
        self.data: Optional[int] = None
        self.num_replicas = 0
        self.acked_nodes: set = set()
        self.acks_sent = 0

    # ------------------------------------------------------------------
    def process_client_request(self, data: int) -> None:
        """Store the new value and broadcast replication requests."""
        self.data = data
        self.acked_nodes.clear()
        if self.config.reset_counter_on_ack:
            # The fixed server starts every request from a clean counter.
            self.num_replicas = 0
        for node_id in self.node_ids:
            self.network.send_replication_request(node_id, data)

    def process_sync(self, node_id: int, log: Optional[int]) -> None:
        """Handle a periodic sync report from a storage node."""
        if self.data is None:
            return
        if not self.is_up_to_date(log):
            self.network.send_replication_request(node_id, self.data)
            return
        if self.config.count_duplicate_replicas:
            self.num_replicas += 1
        else:
            if node_id not in self.acked_nodes:
                self.acked_nodes.add(node_id)
                self.num_replicas += 1
        # The paper's pseudocode tests for equality, which is what turns the
        # missing counter reset into a liveness bug (the counter overshoots the
        # target and the condition never fires again).
        if self.num_replicas == self.config.replica_target:
            self.network.send_ack(self.data)
            self.acks_sent += 1
            if self.config.reset_counter_on_ack:
                self.num_replicas = 0
                self.acked_nodes.clear()

    def is_up_to_date(self, log: Optional[int]) -> bool:
        """A node is up to date when its log holds the latest client value."""
        return self.data is not None and log == self.data


class StorageNodeStore:
    """In-memory storage log reused by the modeled storage-node machine.

    The real storage node would persist to disk; the harness reuses this small
    bookkeeping structure (mirroring how the vNext harness reuses the real
    ``ExtentCenter``) and keeps everything in memory for testing speed.
    """

    def __init__(self, node_id: int) -> None:
        self.node_id = node_id
        self.log: Optional[int] = None
        self.history: Dict[int, int] = {}
        self.writes = 0

    def store(self, data: int) -> None:
        self.log = data
        self.writes += 1
        self.history[self.writes] = data

    @property
    def latest(self) -> Optional[int]:
        return self.log
