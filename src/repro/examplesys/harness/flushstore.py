"""Flush-store harness: the State DSL's event disciplines, end to end.

A small write-ahead store models the §2.2 environment style with the P#-like
state disciplines the FAST'16 harnesses rely on:

* **push/pop** — a ``FlushRequest`` *pushes* the ``Flushing`` state over
  ``Active``; flush completion pops back.  ``Read`` requests keep being
  answered while flushing because ``Flushing`` inherits ``Active``'s handler
  through the state stack.
* **defer** — ``Flushing`` defers ``Write``: writes stay queued, in order,
  and are applied only after the pop un-defers them.
* **ignore** — ``Flushing`` ignores duplicate ``FlushRequest``s.

Three registered scenarios turn each discipline into a checkable property:

* ``examplesys/flush-deferred-writes`` — the DSL store; the
  :class:`FlushSafetyMonitor` proves *absent* the write-during-flush bug that
  the flat model cannot avoid without bespoke bookkeeping.
* ``examplesys/flush-flat-write-during-flush`` — :class:`FlatFlushStoreMachine`,
  the string-state port of the same protocol: with no way to defer, its
  hand-rolled "flushing" flag applies writes mid-flush and the safety monitor
  catches it.
* ``examplesys/flush-lost-completion-deadlock`` — the DSL store with a lost
  flush-completion interrupt: writes stay deferred forever and the runtime
  reports the deferred-backlog deadlock (a wedge the flat model would
  silently mask by misapplying the writes).
"""

from __future__ import annotations

from typing import Callable, List

from repro.core import Event, Machine, MachineId, Monitor, State, TestRuntime, on_event
from repro.core.registry import scenario


# ---------------------------------------------------------------------------
# events
# ---------------------------------------------------------------------------
class Write(Event):
    def __init__(self, value: int) -> None:
        self.value = value


class FlushRequest(Event):
    """Ask the store to flush its in-memory log to disk."""


class FlushComplete(Event):
    """Modeled disk interrupt: the asynchronous flush finished."""


class Read(Event):
    def __init__(self, client: MachineId) -> None:
        self.client = client


class ReadReply(Event):
    def __init__(self, committed: int, pending: int) -> None:
        self.committed = committed
        self.pending = pending


class NotifyWriteApplied(Event):
    def __init__(self, value: int) -> None:
        self.value = value


class NotifyFlushStarted(Event):
    pass


class NotifyFlushCompleted(Event):
    pass


# ---------------------------------------------------------------------------
# specification
# ---------------------------------------------------------------------------
class FlushSafetyMonitor(Monitor):
    """No write may be applied while a flush is in progress."""

    class Idle(State, initial=True):
        @on_event(NotifyFlushStarted)
        def flush_started(self) -> None:
            self.goto(FlushSafetyMonitor.InFlush)

        @on_event(NotifyWriteApplied)
        def write_ok(self, event: NotifyWriteApplied) -> None:
            pass

        @on_event(NotifyFlushCompleted)
        def spurious_completion(self) -> None:
            self.assert_that(False, "flush completed while no flush was in progress")

    class InFlush(State):
        @on_event(NotifyWriteApplied)
        def write_during_flush(self, event: NotifyWriteApplied) -> None:
            self.assert_that(
                False, f"write {event.value} applied while a flush is in progress"
            )

        @on_event(NotifyFlushStarted)
        def nested_flush(self) -> None:
            self.assert_that(False, "flush started while another flush is in progress")

        @on_event(NotifyFlushCompleted)
        def flush_completed(self) -> None:
            self.goto(FlushSafetyMonitor.Idle)


# ---------------------------------------------------------------------------
# the store, State-DSL form
# ---------------------------------------------------------------------------
class FlushStoreMachine(Machine):
    """Write-ahead store whose flush mode is a pushed state."""

    def on_start(self, lose_completion: bool = False) -> None:
        self.memlog: List[int] = []
        self.disk: List[int] = []
        #: seeded wedge: model a disk whose completion interrupt gets lost.
        self.lose_completion = lose_completion

    class Active(State, initial=True):
        @on_event(Write)
        def apply_write(self, event: Write) -> None:
            self.memlog.append(event.value)
            self.notify_monitor(FlushSafetyMonitor, NotifyWriteApplied(event.value))

        @on_event(FlushRequest)
        def start_flush(self) -> None:
            self.push_state(FlushStoreMachine.Flushing)

        @on_event(Read)
        def answer_read(self, event: Read) -> None:
            self.send(event.client, ReadReply(len(self.disk), len(self.memlog)))

    class Flushing(State):
        #: writes arriving mid-flush stay queued until the pop un-defers them.
        deferred = (Write,)
        #: a flush is already running; duplicate requests are dropped.
        ignored = (FlushRequest,)
        # ``Read`` is answered by Active's handler, inherited down the stack.

        def on_entry(self) -> None:
            self.notify_monitor(FlushSafetyMonitor, NotifyFlushStarted())
            if not self.lose_completion:
                self.send(self.id, FlushComplete())

        @on_event(FlushComplete)
        def finish_flush(self) -> None:
            self.disk.extend(self.memlog)
            self.memlog = []
            self.notify_monitor(FlushSafetyMonitor, NotifyFlushCompleted())
            self.pop_state()


# ---------------------------------------------------------------------------
# the store, flat string-state form (what the DSL replaces)
# ---------------------------------------------------------------------------
class FlatFlushStoreMachine(Machine):
    """The same protocol without state disciplines.

    A flat machine cannot defer: every ``Write`` is dispatched the moment the
    scheduler picks the store, so the hand-rolled ``self.flushing`` flag can
    only choose between applying mid-flush (this model — unsound, caught by
    the monitor) or dropping/re-sending (which reorders the write stream).
    """

    initial_state = "Active"

    def on_start(self) -> None:
        self.memlog: List[int] = []
        self.disk: List[int] = []
        self.flushing = False

    @on_event(Write)
    def apply_write(self, event: Write) -> None:
        # BUG (inexpressible discipline): applied even while a flush runs.
        self.memlog.append(event.value)
        self.notify_monitor(FlushSafetyMonitor, NotifyWriteApplied(event.value))

    @on_event(FlushRequest)
    def start_flush(self) -> None:
        if self.flushing:
            return  # hand-rolled "ignore"
        self.flushing = True
        self.notify_monitor(FlushSafetyMonitor, NotifyFlushStarted())
        self.send(self.id, FlushComplete())

    @on_event(FlushComplete)
    def finish_flush(self) -> None:
        self.disk.extend(self.memlog)
        self.memlog = []
        self.flushing = False
        self.notify_monitor(FlushSafetyMonitor, NotifyFlushCompleted())

    @on_event(Read)
    def answer_read(self, event: Read) -> None:
        self.send(event.client, ReadReply(len(self.disk), len(self.memlog)))


# ---------------------------------------------------------------------------
# the client
# ---------------------------------------------------------------------------
class FlushClientMachine(Machine):
    """Issues writes, nondeterministically interleaved flushes, and reads."""

    def on_start(self, store: MachineId, num_writes: int = 4):
        self.store = store
        self.replies = 0
        for index in range(num_writes):
            self.send(self.store, Write(index))
            yield  # scheduling point: the store may run now
            if self.random():
                self.send(self.store, FlushRequest())
                yield
        self.send(self.store, Read(self.id))
        yield
        self.send(self.store, FlushRequest())

    class Init(State, initial=True):
        @on_event(ReadReply)
        def count_reply(self, event: ReadReply) -> None:
            self.replies += 1


class WedgingClientMachine(Machine):
    """Deterministic Write / Flush / Write sequence for the wedge scenario.

    The flush is guaranteed to be dequeued before the second write, so with a
    lost completion the store always ends the execution holding a deferred
    ``Write`` — and a ``Read`` that must still be answered from the pushed
    state, via stack inheritance, even though the store is wedged.
    """

    def on_start(self, store: MachineId):
        self.store = store
        self.replies = 0
        self.send(store, Write(0))
        self.send(store, FlushRequest())
        self.send(store, Write(1))
        self.send(store, Read(self.id))

    class Init(State, initial=True):
        @on_event(ReadReply)
        def count_reply(self, event: ReadReply) -> None:
            self.replies += 1


# ---------------------------------------------------------------------------
# test entries and registered scenarios
# ---------------------------------------------------------------------------
def build_flush_test(
    store_cls: type = FlushStoreMachine,
    num_writes: int = 4,
    lose_completion: bool = False,
) -> Callable[[TestRuntime], None]:
    def test_entry(runtime: TestRuntime) -> None:
        runtime.register_monitor(FlushSafetyMonitor)
        if store_cls is FlushStoreMachine:
            store = runtime.create_machine(store_cls, lose_completion, name="Store")
        else:
            store = runtime.create_machine(store_cls, name="Store")
        if lose_completion:
            runtime.create_machine(WedgingClientMachine, store, name="Client")
        else:
            runtime.create_machine(FlushClientMachine, store, num_writes, name="Client")

    return test_entry


@scenario(
    "examplesys/flush-deferred-writes",
    tags=("examplesys", "flushstore", "dsl", "clean"),
    max_steps=600,
)
def flush_deferred_scenario():
    """DSL store: deferred writes make write-during-flush provably absent."""
    return build_flush_test(FlushStoreMachine)


@scenario(
    "examplesys/flush-flat-write-during-flush",
    tags=("examplesys", "flushstore", "safety", "bug"),
    expected_bug="WriteDuringFlush",
    expected_bug_kind="safety",
    max_steps=600,
)
def flush_flat_bug_scenario():
    """Flat store: without defer, writes land mid-flush and the monitor fires."""
    return build_flush_test(FlatFlushStoreMachine)


@scenario(
    "examplesys/flush-lost-completion-deadlock",
    tags=("examplesys", "flushstore", "deadlock", "bug"),
    expected_bug="LostFlushCompletion",
    expected_bug_kind="deadlock",
    max_steps=600,
)
def flush_wedge_scenario():
    """DSL store with a lost disk interrupt: deferred-backlog deadlock."""
    return build_flush_test(FlushStoreMachine, lose_completion=True)
