"""Harness machines for the example replication system of §2.2/§2.3.

The real :class:`~repro.examplesys.server.ReplicationServer` is wrapped inside
a machine; the storage nodes, client and timers are modeled.  The modeled
network intercepts the server's outbound messages and relays them as events,
mirroring Figure 2 of the paper.

Machines are declared in the State DSL (nested
:class:`~repro.core.declarations.State` classes); the pre-DSL string-state
form of the same machines is preserved in :mod:`.legacy_machines`, and the
``dsl-compat`` test asserts that both forms produce byte-identical
ScheduleTraces on the seeded scenarios.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core import Machine, MachineId, Receive, State, TimerMachine, TimerTick, on_event

from ..messages import (
    Ack,
    ClientRequest,
    NotifyAck,
    NotifyClientRequest,
    NotifyReplicaStored,
    ReplicationRequest,
    SyncReport,
)
from ..server import ReplicationServer, ServerConfig, ServerNetwork, StorageNodeStore
from .monitors import AckLivenessMonitor, ReplicaSafetyMonitor


class ModelServerNetwork(ServerNetwork):
    """Modeled network engine: relays the server's messages as machine events."""

    def __init__(self, server_machine: "ServerMachine") -> None:
        self._machine = server_machine

    def send_replication_request(self, node_id: int, data: int) -> None:
        target = self._machine.node_machines[node_id]
        self._machine.send(target, ReplicationRequest(data))

    def send_ack(self, data: int) -> None:
        self._machine.notify_monitor(ReplicaSafetyMonitor, NotifyAck(data))
        self._machine.notify_monitor(AckLivenessMonitor, NotifyAck(data))
        if self._machine.client is not None:
            self._machine.send(self._machine.client, Ack(data))


class ServerMachine(Machine):
    """Thin wrapper around the real server; also acts as the environment driver.

    On start it builds the environment: three modeled storage nodes (each with
    its own modeled timer) and the modeled client, then instantiates the real
    server with the modeled network plugged in.
    """

    def on_start(
        self,
        num_nodes: int = 3,
        num_requests: int = 2,
        server_config: Optional[ServerConfig] = None,
        timer_ticks: "int | None" = None,
    ) -> None:
        self.node_machines: Dict[int, MachineId] = {}
        self.client: Optional[MachineId] = None
        for node_id in range(num_nodes):
            self.node_machines[node_id] = self.create(
                StorageNodeMachine, self.id, node_id, timer_ticks, name=f"SN-{node_id}"
            )
        self.server = ReplicationServer(
            node_ids=list(self.node_machines),
            network=ModelServerNetwork(self),
            config=server_config,
        )
        self.client = self.create(ClientMachine, self.id, num_requests, name="Client")

    class Init(State, initial=True):
        @on_event(ClientRequest)
        def handle_client_request(self, event: ClientRequest) -> None:
            self.notify_monitor(ReplicaSafetyMonitor, NotifyClientRequest(event.data))
            self.notify_monitor(AckLivenessMonitor, NotifyClientRequest(event.data))
            self.server.process_client_request(event.data)

        @on_event(SyncReport)
        def handle_sync(self, event: SyncReport) -> None:
            self.server.process_sync(event.node_id, event.log)


class StorageNodeMachine(Machine):
    """Modeled storage node: stores data in memory and syncs on timer ticks."""

    def on_start(self, server: MachineId, node_id: int, timer_ticks: "int | None") -> None:
        self.server = server
        self.node_id = node_id
        self.store = StorageNodeStore(node_id)
        self.timer = self.create(
            TimerMachine, self.id, timer_name=f"sn-{node_id}", max_ticks=timer_ticks,
            name=f"Timer-SN-{node_id}",
        )

    class Init(State, initial=True):
        @on_event(ReplicationRequest)
        def handle_replication(self, event: ReplicationRequest) -> None:
            self.store.store(event.data)
            self.notify_monitor(ReplicaSafetyMonitor, NotifyReplicaStored(self.node_id, event.data))

        @on_event(TimerTick)
        def handle_timeout(self) -> None:
            self.send(self.server, SyncReport(self.node_id, self.store.latest))


class ClientMachine(Machine):
    """Modeled client: sends nondeterministic requests and waits for each Ack.

    Late duplicate acknowledgements that arrive after the client finished its
    request loop are ignored rather than reported as unhandled events.  (The
    blunt machine-wide ``ignore_unhandled_events`` flag is kept — rather than
    a per-state ``ignored = (Ack,)`` discipline — so that the scenario's
    schedules stay byte-identical to the seed: a dropped unhandled event
    consumes a scheduling step, a state-ignored event never becomes runnable.
    The discipline form is showcased by the flush-store harness.)
    """

    ignore_unhandled_events = True

    class Init(State, initial=True):
        """Single protocol phase: the request loop lives in ``on_start``."""

    def on_start(self, server: MachineId, num_requests: int):
        self.server = server
        self.acked: List[int] = []
        for request_index in range(num_requests):
            # Nondeterministic payload, but guaranteed distinct across requests
            # so that "is node X a replica of the current value" is well defined.
            data = request_index * 100 + self.random_integer(100)
            self.send(self.server, ClientRequest(data, self.id))
            ack = yield Receive(Ack)
            self.acked.append(ack.data)
