"""Legacy-form (string-state) declaration of the §2.2 harness machines.

This module is the compatibility fixture for the State-DSL redesign: it keeps
the pre-DSL decorator form of :mod:`repro.examplesys.harness.machines` alive,
verbatim except that the states carry the same names the DSL port uses, so
the ``dsl-compat`` test (and CI job) can run the seeded scenario under *both*
declaration forms and assert byte-identical :class:`ScheduleTrace` JSON —
schedules, recorded per-step states, and execution logs included.

Class names intentionally shadow the ported module's (machine ids embed the
class name, and the ids must match across the two runs).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core import Machine, MachineId, Receive, TimerMachine, TimerTick, on_event

from ..messages import (
    Ack,
    ClientRequest,
    NotifyAck,
    NotifyClientRequest,
    NotifyReplicaStored,
    ReplicationRequest,
    SyncReport,
)
from ..server import ReplicationServer, ServerConfig, ServerNetwork, StorageNodeStore
from .monitors import AckLivenessMonitor, ReplicaSafetyMonitor


class ModelServerNetwork(ServerNetwork):
    """Modeled network engine: relays the server's messages as machine events."""

    def __init__(self, server_machine: "ServerMachine") -> None:
        self._machine = server_machine

    def send_replication_request(self, node_id: int, data: int) -> None:
        target = self._machine.node_machines[node_id]
        self._machine.send(target, ReplicationRequest(data))

    def send_ack(self, data: int) -> None:
        self._machine.notify_monitor(ReplicaSafetyMonitor, NotifyAck(data))
        self._machine.notify_monitor(AckLivenessMonitor, NotifyAck(data))
        if self._machine.client is not None:
            self._machine.send(self._machine.client, Ack(data))


class ServerMachine(Machine):
    """The §2.2 server wrapper, in the legacy string-state declaration form."""

    initial_state = "Init"

    def on_start(
        self,
        num_nodes: int = 3,
        num_requests: int = 2,
        server_config: Optional[ServerConfig] = None,
        timer_ticks: "int | None" = None,
    ) -> None:
        self.node_machines: Dict[int, MachineId] = {}
        self.client: Optional[MachineId] = None
        for node_id in range(num_nodes):
            self.node_machines[node_id] = self.create(
                StorageNodeMachine, self.id, node_id, timer_ticks, name=f"SN-{node_id}"
            )
        self.server = ReplicationServer(
            node_ids=list(self.node_machines),
            network=ModelServerNetwork(self),
            config=server_config,
        )
        self.client = self.create(ClientMachine, self.id, num_requests, name="Client")

    @on_event(ClientRequest, state="Init")
    def handle_client_request(self, event: ClientRequest) -> None:
        self.notify_monitor(ReplicaSafetyMonitor, NotifyClientRequest(event.data))
        self.notify_monitor(AckLivenessMonitor, NotifyClientRequest(event.data))
        self.server.process_client_request(event.data)

    @on_event(SyncReport, state="Init")
    def handle_sync(self, event: SyncReport) -> None:
        self.server.process_sync(event.node_id, event.log)


class StorageNodeMachine(Machine):
    """Modeled storage node, in the legacy string-state declaration form."""

    initial_state = "Init"

    def on_start(self, server: MachineId, node_id: int, timer_ticks: "int | None") -> None:
        self.server = server
        self.node_id = node_id
        self.store = StorageNodeStore(node_id)
        self.timer = self.create(
            TimerMachine, self.id, timer_name=f"sn-{node_id}", max_ticks=timer_ticks,
            name=f"Timer-SN-{node_id}",
        )

    @on_event(ReplicationRequest, state="Init")
    def handle_replication(self, event: ReplicationRequest) -> None:
        self.store.store(event.data)
        self.notify_monitor(ReplicaSafetyMonitor, NotifyReplicaStored(self.node_id, event.data))

    @on_event(TimerTick, state="Init")
    def handle_timeout(self) -> None:
        self.send(self.server, SyncReport(self.node_id, self.store.latest))


class ClientMachine(Machine):
    """Modeled client, in the legacy string-state declaration form."""

    initial_state = "Init"
    ignore_unhandled_events = True

    def on_start(self, server: MachineId, num_requests: int):
        self.server = server
        self.acked: List[int] = []
        for request_index in range(num_requests):
            data = request_index * 100 + self.random_integer(100)
            self.send(self.server, ClientRequest(data, self.id))
            ack = yield Receive(Ack)
            self.acked.append(ack.data)
