"""Front-ended replication *service*: the deployable form of §2.2.

The same :class:`~repro.examplesys.server.ReplicationServer` component that
the testing harnesses hunt bugs in is wrapped here as a small service: a
front end serializes requests from many concurrent clients (one request in
flight at the server, later submissions deferred — a State-DSL discipline
doing real work), storage nodes replicate and sync, and the §2.4/§2.5
monitors watch the whole thing.

Every machine in this module runs unmodified under both execution
controllers:

* under :class:`~repro.core.TestRuntime` it is a registered clean scenario
  (``examplesys/service``) — schedulers explore client/front-end/node
  interleavings and the monitors must never fire;
* under :class:`~repro.core.ProductionRuntime` it is the serving demo —
  ``python -m repro serve --scenario examplesys/service`` boots it on the
  concurrent runtime and drives it with as many load clients as requested.

Storage nodes sync both periodically (modeled timer in testing, wall-clock
timer in production) and immediately after storing, so request latency does
not hinge on timer frequency — §3.3's modeling rule, applied in reverse.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core import (
    Event,
    Halt,
    Machine,
    MachineId,
    Receive,
    State,
    TimerMachine,
    TimerTick,
    on_event,
)
from repro.core.registry import scenario

from ..messages import (
    Ack,
    ClientRequest,
    NotifyAck,
    NotifyClientRequest,
    NotifyReplicaStored,
    ReplicationRequest,
    SyncReport,
)
from ..server import ReplicationServer, ServerConfig, ServerNetwork, StorageNodeStore
from .monitors import AckLivenessMonitor, ReplicaSafetyMonitor
from .scenarios import fixed_configuration


class SubmitRequest(Event):
    """A client asks the front end to replicate ``data``."""

    def __init__(self, data: int, client: MachineId) -> None:
        self.data = data
        self.client = client


class ClientDone(Event):
    """A load client reports that all of its requests were acknowledged."""

    def __init__(self, client: MachineId) -> None:
        self.client = client


class ServiceNetwork(ServerNetwork):
    """Network engine wiring the real server into the service machines."""

    def __init__(self, host: "ServiceHost") -> None:
        self._host = host

    def send_replication_request(self, node_id: int, data: int) -> None:
        self._host.send(self._host.node_machines[node_id], ReplicationRequest(data))

    def send_ack(self, data: int) -> None:
        self._host.notify_monitor(ReplicaSafetyMonitor, NotifyAck(data))
        self._host.notify_monitor(AckLivenessMonitor, NotifyAck(data))
        self._host.send(self._host.frontend, Ack(data))


class ServiceHost(Machine):
    """Hosts the real :class:`ReplicationServer` plus its environment.

    Builds the storage nodes (each with its own timer), the front end and
    the load clients; relays protocol events into the server component; and
    shuts the whole service down (halting nodes, timers and the front end)
    once every client has reported completion — which is what lets both
    controllers reach genuine quiescence.
    """

    def on_start(
        self,
        num_nodes: int = 3,
        num_clients: int = 2,
        num_requests: int = 2,
        server_config: Optional[ServerConfig] = None,
        timer_ticks: "int | None" = 10,
    ) -> None:
        self.node_machines: Dict[int, MachineId] = {}
        self.clients_done = 0
        self.num_clients = num_clients
        for node_id in range(num_nodes):
            self.node_machines[node_id] = self.create(
                ServiceStorageNode, self.id, node_id, timer_ticks, name=f"SN-{node_id}"
            )
        self.server = ReplicationServer(
            node_ids=list(self.node_machines),
            network=ServiceNetwork(self),
            config=server_config or fixed_configuration(),
        )
        self.frontend = self.create(ServiceFrontEnd, self.id, name="FrontEnd")
        self.clients: List[MachineId] = [
            self.create(LoadClient, self.id, self.frontend, num_requests, name=f"Client-{index}")
            for index in range(num_clients)
        ]

    class Serving(State, initial=True):
        @on_event(ClientRequest)
        def handle_client_request(self, event: ClientRequest) -> None:
            self.notify_monitor(ReplicaSafetyMonitor, NotifyClientRequest(event.data))
            self.notify_monitor(AckLivenessMonitor, NotifyClientRequest(event.data))
            self.server.process_client_request(event.data)

        @on_event(SyncReport)
        def handle_sync(self, event: SyncReport) -> None:
            self.server.process_sync(event.node_id, event.log)

        @on_event(ClientDone)
        def handle_client_done(self, event: ClientDone) -> None:
            self.clients_done += 1
            if self.clients_done == self.num_clients:
                # Every request acknowledged: tear the service down so the
                # system quiesces (nodes halt their timers from on_halt).
                self.send(self.frontend, Halt())
                for node in self.node_machines.values():
                    self.send(node, Halt())
                self.halt()


class ServiceStorageNode(Machine):
    """Storage node that syncs immediately on store and periodically on ticks."""

    def on_start(self, host: MachineId, node_id: int, timer_ticks: "int | None") -> None:
        self.host = host
        self.node_id = node_id
        self.store = StorageNodeStore(node_id)
        self.timer = self.create(
            TimerMachine, self.id, timer_name=f"sn-{node_id}", max_ticks=timer_ticks,
            name=f"Timer-SN-{node_id}",
        )

    def on_halt(self) -> None:
        # Take the timer down with the node; otherwise its (wall-clock or
        # modeled) loop would keep the system from ever quiescing.
        self.send(self.timer, Halt())

    class Serving(State, initial=True):
        @on_event(ReplicationRequest)
        def handle_replication(self, event: ReplicationRequest) -> None:
            self.store.store(event.data)
            self.notify_monitor(ReplicaSafetyMonitor, NotifyReplicaStored(self.node_id, event.data))
            # Push-sync: report right away so acknowledgement latency does
            # not depend on the timer period (the timer still adds periodic
            # redundant reports, which the server must tolerate).
            self.send(self.host, SyncReport(self.node_id, self.store.latest))

        @on_event(TimerTick)
        def handle_timeout(self) -> None:
            self.send(self.host, SyncReport(self.node_id, self.store.latest))


class ServiceFrontEnd(Machine):
    """Serializes client submissions into one in-flight server request.

    ``Busy`` defers further submissions (they stay queued, in arrival order)
    and matches acknowledgements against the in-flight payload: the server
    may legitimately emit a *duplicate* Ack for a previous request when late
    redundant sync reports push its counter past the target again, and such
    stale Acks must not be forwarded as answers to the current request.
    """

    def on_start(self, server: MachineId) -> None:
        self.server = server
        self.pending_client: Optional[MachineId] = None
        self.pending_data: Optional[int] = None
        self.completed = 0

    class Idle(State, initial=True):
        ignored = (Ack,)  # stale duplicate acks carry no information here

        @on_event(SubmitRequest)
        def forward(self, event: SubmitRequest) -> None:
            self.pending_client = event.client
            self.pending_data = event.data
            self.send(self.server, ClientRequest(event.data, self.id))
            self.goto(ServiceFrontEnd.Busy)

    class Busy(State):
        deferred = (SubmitRequest,)

        @on_event(Ack)
        def acknowledged(self, event: Ack) -> None:
            if event.data != self.pending_data:
                self.log(f"dropped stale ack for {event.data}")
                return
            self.send(self.pending_client, Ack(event.data))
            self.completed += 1
            self.goto(ServiceFrontEnd.Idle)


class LoadClient(Machine):
    """Closed-loop client: submits a request, awaits its Ack, repeats.

    Payloads are globally distinct (client id × request index × a
    nondeterministic nonce) so "is node X a replica of the current value"
    stays well defined across concurrent clients.
    """

    ignore_unhandled_events = True  # belt-and-braces against late duplicates

    def on_start(self, host: MachineId, frontend: MachineId, num_requests: int):
        self.host = host
        self.frontend = frontend
        self.acked: List[int] = []
        for request_index in range(num_requests):
            data = self.id.value * 1_000_000 + request_index * 100 + self.random_integer(100)
            self.send(self.frontend, SubmitRequest(data, self.id))
            ack = yield Receive(Ack)
            self.acked.append(ack.data)
        self.send(self.host, ClientDone(self.id))


def build_service_test(
    num_nodes: int = 3,
    num_clients: int = 2,
    num_requests: int = 2,
    timer_ticks: "int | None" = 10,
    check_safety: bool = True,
    check_liveness: bool = True,
):
    """Entry factory for the service; runs under either execution controller."""

    def test_entry(runtime) -> None:
        if check_safety:
            runtime.register_monitor(ReplicaSafetyMonitor)
        if check_liveness:
            runtime.register_monitor(AckLivenessMonitor)
        runtime.create_machine(
            ServiceHost,
            num_nodes=num_nodes,
            num_clients=num_clients,
            num_requests=num_requests,
            timer_ticks=timer_ticks,
            name="Service",
        )

    return test_entry


@scenario(
    "examplesys/service",
    tags=("examplesys", "clean", "service"),
    max_steps=3000,
)
def service_scenario(num_clients: int = 2, num_requests: int = 2):
    """Front-ended replication service; clean under testing, demo for serve.

    The keyword parameters make the factory load-configurable: ``python -m
    repro serve --clients N --requests M`` passes them through, while the
    zero-argument call the registry requires uses the small defaults.
    """
    return build_service_test(num_clients=num_clients, num_requests=num_requests)
