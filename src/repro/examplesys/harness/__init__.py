"""P#-style test harness for the example replication system."""

from .machines import ClientMachine, ModelServerNetwork, ServerMachine, StorageNodeMachine
from .monitors import AckLivenessMonitor, ReplicaSafetyMonitor
from .scenarios import (
    build_replication_test,
    buggy_configuration,
    fixed_configuration,
    liveness_bug_configuration,
    safety_bug_configuration,
)
from .service import (
    LoadClient,
    ServiceFrontEnd,
    ServiceHost,
    ServiceStorageNode,
    build_service_test,
)

__all__ = [
    "AckLivenessMonitor",
    "ClientMachine",
    "LoadClient",
    "ModelServerNetwork",
    "ReplicaSafetyMonitor",
    "ServerMachine",
    "ServiceFrontEnd",
    "ServiceHost",
    "ServiceStorageNode",
    "StorageNodeMachine",
    "build_replication_test",
    "build_service_test",
    "buggy_configuration",
    "fixed_configuration",
    "liveness_bug_configuration",
    "safety_bug_configuration",
]
