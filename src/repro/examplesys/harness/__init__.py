"""P#-style test harness for the example replication system."""

from .machines import ClientMachine, ModelServerNetwork, ServerMachine, StorageNodeMachine
from .monitors import AckLivenessMonitor, ReplicaSafetyMonitor
from .scenarios import (
    build_replication_test,
    buggy_configuration,
    fixed_configuration,
    liveness_bug_configuration,
    safety_bug_configuration,
)

__all__ = [
    "AckLivenessMonitor",
    "ClientMachine",
    "ModelServerNetwork",
    "ReplicaSafetyMonitor",
    "ServerMachine",
    "StorageNodeMachine",
    "build_replication_test",
    "buggy_configuration",
    "fixed_configuration",
    "liveness_bug_configuration",
    "safety_bug_configuration",
]
