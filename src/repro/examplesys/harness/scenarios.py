"""Test-entry factories for the example replication system.

Each factory returns a function suitable for
:class:`repro.core.TestingEngine` / :func:`repro.core.run_test`: it receives a
fresh :class:`~repro.core.TestRuntime`, registers the monitors and creates the
environment machine.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.core import TestRuntime
from repro.core.registry import scenario

from ..server import ServerConfig
from .machines import ServerMachine
from .monitors import AckLivenessMonitor, ReplicaSafetyMonitor


def build_replication_test(
    server_config: Optional[ServerConfig] = None,
    num_nodes: int = 3,
    num_requests: int = 2,
    timer_ticks: "int | None" = None,
    check_safety: bool = True,
    check_liveness: bool = True,
) -> Callable[[TestRuntime], None]:
    """Build a test entry that exercises the replication protocol end to end.

    ``check_safety``/``check_liveness`` select which monitors are registered,
    which is useful when hunting for one specific class of bug (liveness
    verdicts are only sound under fair schedulers such as ``random``).
    """
    config = server_config or ServerConfig()

    def test_entry(runtime: TestRuntime) -> None:
        if check_safety:
            runtime.register_monitor(ReplicaSafetyMonitor)
        if check_liveness:
            runtime.register_monitor(AckLivenessMonitor)
        runtime.create_machine(
            ServerMachine,
            num_nodes=num_nodes,
            num_requests=num_requests,
            server_config=config,
            timer_ticks=timer_ticks,
            name="Server",
        )

    return test_entry


def buggy_configuration() -> ServerConfig:
    """The configuration shipped with both §2.2 bugs present."""
    return ServerConfig(count_duplicate_replicas=True, reset_counter_on_ack=False)


def safety_bug_configuration() -> ServerConfig:
    """Only the duplicate-replica-counting safety bug is present."""
    return ServerConfig(count_duplicate_replicas=True, reset_counter_on_ack=True)


def liveness_bug_configuration() -> ServerConfig:
    """Only the missing-counter-reset liveness bug is present."""
    return ServerConfig(count_duplicate_replicas=False, reset_counter_on_ack=False)


def fixed_configuration() -> ServerConfig:
    """Both bugs fixed."""
    return ServerConfig(count_duplicate_replicas=False, reset_counter_on_ack=True)


# ---------------------------------------------------------------------------
# registered scenarios (discoverable via `python -m repro list-scenarios`)
# ---------------------------------------------------------------------------
@scenario(
    "examplesys/safety-bug",
    tags=("examplesys", "safety", "bug"),
    expected_bug="DuplicateReplicaCounting",
    expected_bug_kind="safety",
    max_steps=600,
)
def safety_bug_scenario():
    """§2.2 replication system with the duplicate-replica-counting safety bug."""
    return build_replication_test(safety_bug_configuration(), check_liveness=False)


@scenario(
    "examplesys/liveness-bug",
    tags=("examplesys", "liveness", "bug"),
    expected_bug="MissingCounterReset",
    expected_bug_kind="liveness",
    max_steps=600,
)
def liveness_bug_scenario():
    """§2.2 replication system with the missing-counter-reset liveness bug."""
    return build_replication_test(liveness_bug_configuration())


@scenario(
    "examplesys/both-bugs",
    tags=("examplesys", "safety", "liveness", "bug"),
    expected_bug="DuplicateReplicaCounting",
    expected_bug_kind="safety",
    max_steps=600,
)
def both_bugs_scenario():
    """§2.2 replication system as shipped, with both bugs present."""
    return build_replication_test(buggy_configuration())


@scenario("examplesys/fixed", tags=("examplesys", "clean"), max_steps=600)
def fixed_scenario():
    """§2.2 replication system with both bugs fixed — clean-run validation."""
    return build_replication_test(fixed_configuration())
