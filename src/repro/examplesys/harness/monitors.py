"""Safety and liveness monitors for the example replication system (§2.4, §2.5).

Both monitors are declared in the State DSL; hot liveness states are marked
with ``class X(State, hot=True)`` instead of the legacy ``hot_states`` set.
"""

from __future__ import annotations

from repro.core import Monitor, State, on_event

from ..messages import NotifyAck, NotifyClientRequest, NotifyReplicaStored


class ReplicaSafetyMonitor(Monitor):
    """Asserts that an Ack is only sent once three distinct replicas exist.

    Storage nodes notify the monitor whenever they store the latest value; the
    modeled network notifies it whenever the server emits an Ack.  The monitor
    therefore maintains exactly the map the paper describes: node id -> "is a
    replica of the current value".
    """

    replica_target = 3

    def __init__(self, runtime) -> None:
        super().__init__(runtime)
        self.current_data = None
        self.replicas = set()

    class Tracking(State, initial=True):
        @on_event(NotifyClientRequest)
        def on_request(self, event: NotifyClientRequest) -> None:
            self.current_data = event.data
            self.replicas = set()

        @on_event(NotifyReplicaStored)
        def on_replica_stored(self, event: NotifyReplicaStored) -> None:
            if event.data == self.current_data:
                self.replicas.add(event.node_id)

        @on_event(NotifyAck)
        def on_ack(self, event: NotifyAck) -> None:
            self.assert_that(
                event.data == self.current_data,
                f"Ack for stale data {event.data} (current request is {self.current_data})",
            )
            self.assert_that(
                len(self.replicas) >= self.replica_target,
                f"Ack sent with only {len(self.replicas)} distinct replicas "
                f"(target is {self.replica_target})",
            )


class AckLivenessMonitor(Monitor):
    """Hot while a client request is outstanding; cold once it is acknowledged."""

    class Idle(State, initial=True):
        @on_event(NotifyClientRequest)
        def request_while_idle(self) -> None:
            self.goto(AckLivenessMonitor.Waiting)

        @on_event(NotifyAck)
        def spurious_ack(self) -> None:
            # An Ack with no outstanding request is allowed by the liveness
            # property (it is the safety monitor's job to complain about it).
            pass

    class Waiting(State, hot=True):
        @on_event(NotifyClientRequest)
        def request_while_waiting(self) -> None:
            # A new request arrived before the previous Ack: stay hot.
            pass

        @on_event(NotifyAck)
        def acknowledged(self) -> None:
            self.goto(AckLivenessMonitor.Idle)

    @on_event(NotifyReplicaStored)
    def ignore_replica_notifications(self) -> None:
        # Wildcard fallback: replica notifications are irrelevant to the
        # liveness property in every state.
        pass
