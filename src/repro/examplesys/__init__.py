"""The contrived replication system of §2.2 of the paper.

A client sends values to a server, which replicates them to three storage
nodes and acknowledges once it believes three replicas exist.  The component
under test is :class:`~repro.examplesys.server.ReplicationServer`; the harness
in :mod:`repro.examplesys.harness` models the client, storage nodes, timers
and network, and specifies the two correctness properties the paper uses to
introduce safety and liveness monitors.
"""

from .messages import (
    Ack,
    ClientRequest,
    NotifyAck,
    NotifyClientRequest,
    NotifyReplicaStored,
    ReplicationRequest,
    SyncReport,
)
from .server import ReplicationServer, ServerConfig, ServerNetwork, StorageNodeStore

__all__ = [
    "Ack",
    "ClientRequest",
    "NotifyAck",
    "NotifyClientRequest",
    "NotifyReplicaStored",
    "ReplicationRequest",
    "ReplicationServer",
    "ServerConfig",
    "ServerNetwork",
    "StorageNodeStore",
    "SyncReport",
]
