"""Events exchanged in the §2.2 example replication system."""

from __future__ import annotations

from repro.core import Event, MachineId


class ClientRequest(Event):
    """Client asks the server to replicate ``data``."""

    def __init__(self, data: int, client: MachineId) -> None:
        self.data = data
        self.client = client


class Ack(Event):
    """Server acknowledges that the latest request has been replicated."""

    def __init__(self, data: int) -> None:
        self.data = data


class ReplicationRequest(Event):
    """Server asks a storage node to store ``data``."""

    def __init__(self, data: int) -> None:
        self.data = data


class SyncReport(Event):
    """A storage node reports its log (its latest stored value) to the server."""

    def __init__(self, node_id: int, log: object) -> None:
        self.node_id = node_id
        self.log = log


# --- monitor notifications -------------------------------------------------


class NotifyClientRequest(Event):
    def __init__(self, data: int) -> None:
        self.data = data


class NotifyAck(Event):
    def __init__(self, data: int) -> None:
        self.data = data


class NotifyReplicaStored(Event):
    def __init__(self, node_id: int, data: int) -> None:
        self.node_id = node_id
        self.data = data
