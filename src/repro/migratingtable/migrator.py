"""The background migrator job (§4).

The migrator moves one partition at a time through the migration states:
``USE_OLD → PREFER_OLD → (copy) → PREFER_NEW → (clean old) →
USE_NEW_WITH_TOMBSTONES → (clean tombstones) → USE_NEW``.

Like the MigratingTable protocol code, every method is a generator: a bare
``yield`` separates backend operations so the systematic testing runtime can
interleave application operations anywhere inside the migration.

The migrator-side notional bugs of Table 2 are injected here:
``MigrateSkipPreferOld``, ``MigrateSkipUseNewWithTombstones`` and the organic
``EnsurePartitionSwitchedFromPopulated``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, List, Optional

from .bugs import MigratingTableBug
from .chain_table import IChainTable
from .migration import PartitionState, read_partition_meta, write_partition_meta
from .table_types import META_ROW_KEY, OpKind, TableOperation


@dataclass
class MigratorConfig:
    """Configuration (and bug switches) of the migrator job."""

    bugs: FrozenSet[MigratingTableBug] = field(default_factory=frozenset)

    def has(self, bug: MigratingTableBug) -> bool:
        return bug in self.bugs


class Migrator:
    """Copies data old → new and advances each partition's migration state."""

    def __init__(
        self,
        old_table: IChainTable,
        new_table: IChainTable,
        partition_keys: List[str],
        config: Optional[MigratorConfig] = None,
    ) -> None:
        self.old = old_table
        self.new = new_table
        self.partition_keys = list(partition_keys)
        self.config = config or MigratorConfig()
        self.completed_partitions: List[str] = []

    # ------------------------------------------------------------------
    def run(self):
        """Generator: migrate every partition, one backend step per ``yield``."""
        for partition_key in self.partition_keys:
            yield from self.migrate_partition(partition_key)
            self.completed_partitions.append(partition_key)

    # ------------------------------------------------------------------
    def migrate_partition(self, partition_key: str):
        if not self.config.has(MigratingTableBug.MIGRATE_SKIP_PREFER_OLD):
            write_partition_meta(self.new, partition_key, state=PartitionState.PREFER_OLD)
            yield
        else:
            # BUG (MigrateSkipPreferOld): the copy runs while applications
            # still believe the partition is in USE_OLD, so their writes are
            # never mirrored to the new table and already-copied rows go stale.
            pass

        yield from self._copy_rows(partition_key)

        write_partition_meta(self.new, partition_key, state=PartitionState.PREFER_NEW)
        yield

        yield from self._clean_old_rows(partition_key)

        if self.config.has(MigratingTableBug.MIGRATE_SKIP_USE_NEW_WITH_TOMBSTONES):
            # BUG (MigrateSkipUseNewWithTombstones): the partition jumps
            # straight to USE_NEW while tombstones are still present, so they
            # surface as phantom rows (USE_NEW assumes they were cleaned).
            write_partition_meta(self.new, partition_key, state=PartitionState.USE_NEW)
            yield
            return

        write_partition_meta(self.new, partition_key, state=PartitionState.USE_NEW_WITH_TOMBSTONES)
        yield

        yield from self._clean_tombstones(partition_key)

        write_partition_meta(self.new, partition_key, state=PartitionState.USE_NEW)
        yield

    # ------------------------------------------------------------------
    def _copy_rows(self, partition_key: str):
        """Copy rows old → new until a full pass finds nothing left to copy."""
        while True:
            copied = 0
            old_keys = sorted(row.row_key for row in self.old.query_atomic(partition_key))
            yield
            for row_key in old_keys:
                did_copy = yield from self._copy_row_if_missing(partition_key, row_key)
                if did_copy:
                    copied += 1
                    write_partition_meta(self.new, partition_key, copy_cursor=row_key)
                    yield
            if copied == 0:
                return

    def _copy_row_if_missing(self, partition_key: str, row_key: str):
        """Copy one row unless the new table already has a row or tombstone for it.

        The copy uses an INSERT (not an upsert): if an application write or a
        deletion tombstone lands on the new table concurrently, the insert
        loses the race and the fresher data is preserved.  Reading the old row
        and inserting it happen back to back (no scheduling point in between),
        modelling a conditional copy transaction.
        """
        existing = self.new.get(partition_key, row_key)
        yield
        if existing is not None:
            return False
        source = self.old.get(partition_key, row_key)
        if source is None:
            yield
            return False
        result = self.new.execute(
            TableOperation(OpKind.INSERT, partition_key, row_key, dict(source.properties))
        )
        yield
        return result.ok

    # ------------------------------------------------------------------
    def _clean_old_rows(self, partition_key: str):
        """Delete every old-table row, first making sure the new table has it."""
        old_keys = sorted(row.row_key for row in self.old.query_atomic(partition_key))
        yield
        for row_key in old_keys:
            if not self.config.has(MigratingTableBug.ENSURE_PARTITION_SWITCHED_FROM_POPULATED):
                # The safe path re-checks that the row made it to the new
                # table (it may have been written during the copy pass) and
                # copies it before removing the old copy.
                yield from self._copy_row_if_missing(partition_key, row_key)
            # BUG (EnsurePartitionSwitchedFromPopulated): the check above is
            # skipped because the partition is assumed to be fully populated,
            # so rows written late during PREFER_OLD are lost here.
            self.old.execute(TableOperation(OpKind.DELETE, partition_key, row_key))
            yield

    def _clean_tombstones(self, partition_key: str):
        """Remove tombstone rows from the new table."""
        rows = self.new.query_atomic(partition_key)
        yield
        for row in rows:
            if row.row_key == META_ROW_KEY:
                continue
            current = self.new.get(partition_key, row.row_key)
            if current is not None and current.is_tombstone():
                self.new.execute(TableOperation(OpKind.DELETE, partition_key, row.row_key))
            yield

    # ------------------------------------------------------------------
    def partition_state(self, partition_key: str) -> PartitionState:
        return read_partition_meta(self.new, partition_key).state
