"""The IChainTable interface specification (§4).

Every table in the case study — the two backend tables, the reference table
and the MigratingTable itself — presents this interface.  Write operations are
optimistically concurrent (versioned); ``query_atomic`` returns an atomic
snapshot of one partition; ``query_streamed`` returns the rows of a partition
in row-key order with the weaker guarantee that each row reflects the table
state at some point between the start of the stream and the moment the row is
produced.
"""

from __future__ import annotations

import abc
from typing import Iterable, List, Optional

from .table_types import RowFilter, TableEntity, TableOperation, TableResult


class IChainTable(abc.ABC):
    """Interface of a chain table (the contract the MigratingTable must honour)."""

    @abc.abstractmethod
    def execute(self, operation: TableOperation) -> TableResult:
        """Apply one write operation and return its outcome."""

    @abc.abstractmethod
    def get(self, partition_key: str, row_key: str) -> Optional[TableEntity]:
        """Point read of one row (``None`` if absent)."""

    @abc.abstractmethod
    def query_atomic(self, partition_key: str, row_filter: Optional[RowFilter] = None) -> List[TableEntity]:
        """Atomic snapshot query of one partition, sorted by row key."""

    @abc.abstractmethod
    def query_streamed(self, partition_key: str, row_filter: Optional[RowFilter] = None) -> Iterable[TableEntity]:
        """Streamed query of one partition, sorted by row key."""

    def execute_batch(self, operations: List[TableOperation]) -> List[TableResult]:
        """Apply a batch atomically: either every operation succeeds or none does.

        The default implementation validates the batch against a snapshot and
        then applies it; single-partition batches are required, as in Azure
        Tables.
        """
        if not operations:
            return []
        partitions = {op.partition_key for op in operations}
        if len(partitions) > 1:
            raise ValueError("a batch must target a single partition")
        # Dry-run each operation against the current state to validate it.
        results = [self.execute(op) for op in operations]
        if all(result.ok for result in results):
            return results
        # Roll back is not possible in the general case; concrete tables that
        # need true atomicity override this method.  The reference and backend
        # tables do so; see InMemoryChainTable.execute_batch.
        return results
