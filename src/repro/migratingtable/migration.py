"""Per-partition migration state.

The migration of a partition progresses through a sequence of states that
every MigratingTable instance must honour.  The state (and the migrator's copy
cursor) is stored in a metadata row in the *new* table so that all application
processes and the migrator share one source of truth.

State semantics implemented by :class:`~repro.migratingtable.migrating_table.MigratingTable`:

``USE_OLD``
    Migration has not started; all operations go to the old table.
``PREFER_OLD``
    The migrator is copying rows old → new.  The old table stays
    authoritative; writes are applied to the old table and mirrored to the new
    table when the row already exists there or lies behind the migrator's copy
    cursor.
``PREFER_NEW``
    The copy is complete; the new table is authoritative.  Reads consult the
    new table first and fall back to the old table only when the new table has
    neither the row nor a tombstone for it; deletions must leave a tombstone.
``USE_NEW_WITH_TOMBSTONES``
    The old table has been cleaned and is no longer consulted; tombstones may
    still be present in the new table and are filtered from reads.
``USE_NEW``
    Tombstones have been cleaned; the new table is used directly.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from .chain_table import IChainTable
from .table_types import META_ROW_KEY, OpKind, TableOperation


class PartitionState(str, enum.Enum):
    """Migration phase of one partition."""

    USE_OLD = "use-old"
    PREFER_OLD = "prefer-old"
    PREFER_NEW = "prefer-new"
    USE_NEW_WITH_TOMBSTONES = "use-new-with-tombstones"
    USE_NEW = "use-new"


#: The order in which a partition moves through migration states.
STATE_ORDER = (
    PartitionState.USE_OLD,
    PartitionState.PREFER_OLD,
    PartitionState.PREFER_NEW,
    PartitionState.USE_NEW_WITH_TOMBSTONES,
    PartitionState.USE_NEW,
)


@dataclass(frozen=True)
class PartitionMeta:
    """Contents of a partition's migration metadata row."""

    state: PartitionState = PartitionState.USE_OLD
    copy_cursor: str = ""

    def advanced_past(self, other: "PartitionMeta") -> bool:
        return STATE_ORDER.index(self.state) > STATE_ORDER.index(other.state)


def read_partition_meta(new_table: IChainTable, partition_key: str) -> PartitionMeta:
    """Read a partition's migration metadata (defaults to ``USE_OLD``)."""
    row = new_table.get(partition_key, META_ROW_KEY)
    if row is None:
        return PartitionMeta()
    return PartitionMeta(
        state=PartitionState(row.properties.get("state", PartitionState.USE_OLD.value)),
        copy_cursor=str(row.properties.get("copy_cursor", "")),
    )


def write_partition_meta(
    new_table: IChainTable,
    partition_key: str,
    state: Optional[PartitionState] = None,
    copy_cursor: Optional[str] = None,
) -> PartitionMeta:
    """Update (parts of) a partition's migration metadata row."""
    current = read_partition_meta(new_table, partition_key)
    updated = PartitionMeta(
        state=state if state is not None else current.state,
        copy_cursor=copy_cursor if copy_cursor is not None else current.copy_cursor,
    )
    new_table.execute(
        TableOperation(
            OpKind.UPSERT,
            partition_key,
            META_ROW_KEY,
            {"state": updated.state.value, "copy_cursor": updated.copy_cursor},
        )
    )
    return updated
