"""Re-introducible MigratingTable bugs (the case-study-2 rows of Table 2).

Each member corresponds to one bug identifier reported in Table 2 of the
paper: eight *organic* bugs that occurred during development and three
*notional* bugs (marked with ``*`` in the paper) that are deliberate ways of
making the protocol incorrect.  Every bug is re-created here as a
behaviour-preserving analog: enabling the flag switches the implementation to
the faulty code path, and the specification check of the harness detects the
resulting violation.  DESIGN.md documents how each analog maps onto the
original description.
"""

from __future__ import annotations

import enum
from typing import FrozenSet


class MigratingTableBug(str, enum.Enum):
    """Identifiers of the re-introducible bugs."""

    # -- organic bugs ------------------------------------------------------
    QUERY_ATOMIC_FILTER_SHADOWING = "QueryAtomicFilterShadowing"
    QUERY_STREAMED_LOCK = "QueryStreamedLock"
    QUERY_STREAMED_BACK_UP_NEW_STREAM = "QueryStreamedBackUpNewStream"
    DELETE_NO_LEAVE_TOMBSTONES_ETAG = "DeleteNoLeaveTombstonesEtag"
    DELETE_PRIMARY_KEY = "DeletePrimaryKey"
    ENSURE_PARTITION_SWITCHED_FROM_POPULATED = "EnsurePartitionSwitchedFromPopulated"
    TOMBSTONE_OUTPUT_ETAG = "TombstoneOutputETag"
    QUERY_STREAMED_FILTER_SHADOWING = "QueryStreamedFilterShadowing"
    # -- notional bugs -------------------------------------------------------
    MIGRATE_SKIP_PREFER_OLD = "MigrateSkipPreferOld"
    MIGRATE_SKIP_USE_NEW_WITH_TOMBSTONES = "MigrateSkipUseNewWithTombstones"
    INSERT_BEHIND_MIGRATOR = "InsertBehindMigrator"


#: The bugs that actually occurred during development (paper: "organic").
ORGANIC_BUGS: FrozenSet[MigratingTableBug] = frozenset(
    {
        MigratingTableBug.QUERY_ATOMIC_FILTER_SHADOWING,
        MigratingTableBug.QUERY_STREAMED_LOCK,
        MigratingTableBug.QUERY_STREAMED_BACK_UP_NEW_STREAM,
        MigratingTableBug.DELETE_NO_LEAVE_TOMBSTONES_ETAG,
        MigratingTableBug.DELETE_PRIMARY_KEY,
        MigratingTableBug.ENSURE_PARTITION_SWITCHED_FROM_POPULATED,
        MigratingTableBug.TOMBSTONE_OUTPUT_ETAG,
        MigratingTableBug.QUERY_STREAMED_FILTER_SHADOWING,
    }
)

#: The deliberately introduced bugs (paper: "notional", marked ``*``).
NOTIONAL_BUGS: FrozenSet[MigratingTableBug] = frozenset(
    {
        MigratingTableBug.MIGRATE_SKIP_PREFER_OLD,
        MigratingTableBug.MIGRATE_SKIP_USE_NEW_WITH_TOMBSTONES,
        MigratingTableBug.INSERT_BEHIND_MIGRATOR,
    }
)

ALL_BUGS: FrozenSet[MigratingTableBug] = ORGANIC_BUGS | NOTIONAL_BUGS

#: Bugs injected into the MigratingTable client code paths.
CLIENT_SIDE_BUGS: FrozenSet[MigratingTableBug] = frozenset(
    {
        MigratingTableBug.QUERY_ATOMIC_FILTER_SHADOWING,
        MigratingTableBug.QUERY_STREAMED_LOCK,
        MigratingTableBug.QUERY_STREAMED_BACK_UP_NEW_STREAM,
        MigratingTableBug.DELETE_NO_LEAVE_TOMBSTONES_ETAG,
        MigratingTableBug.DELETE_PRIMARY_KEY,
        MigratingTableBug.TOMBSTONE_OUTPUT_ETAG,
        MigratingTableBug.QUERY_STREAMED_FILTER_SHADOWING,
        MigratingTableBug.INSERT_BEHIND_MIGRATOR,
    }
)

#: Bugs injected into the migrator job.
MIGRATOR_SIDE_BUGS: FrozenSet[MigratingTableBug] = ALL_BUGS - CLIENT_SIDE_BUGS
