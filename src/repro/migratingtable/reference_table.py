"""In-memory reference implementation of the IChainTable specification.

The same implementation plays two roles in the test environment of §4:

* it is the *reference table* (RT) against which the MigratingTable's
  observable behaviour is compared, and
* it is reused for the two *backend tables* (BTs), since the goal is to test
  the migration protocol, not Azure Tables themselves.

Versions (etags) start at 1 for a newly inserted row and increase by one on
every successful write, which is exactly the virtual versioning scheme the
MigratingTable maintains, so outcomes are directly comparable.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from .chain_table import IChainTable
from .table_types import (
    ErrorCode,
    OpKind,
    RowFilter,
    TableEntity,
    TableOperation,
    TableResult,
    matches_filter,
)


class InMemoryChainTable(IChainTable):
    """Dictionary-backed chain table with optimistic concurrency."""

    def __init__(self, name: str = "table") -> None:
        self.name = name
        self._rows: Dict[Tuple[str, str], TableEntity] = {}
        self.operations_applied = 0

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------
    def get(self, partition_key: str, row_key: str) -> Optional[TableEntity]:
        entity = self._rows.get((partition_key, row_key))
        return entity.copy() if entity is not None else None

    def query_atomic(self, partition_key: str, row_filter: Optional[RowFilter] = None) -> List[TableEntity]:
        rows = [
            entity.copy()
            for (pk, _rk), entity in sorted(self._rows.items())
            if pk == partition_key and matches_filter(entity, row_filter)
        ]
        return rows

    def query_streamed(self, partition_key: str, row_filter: Optional[RowFilter] = None) -> Iterable[TableEntity]:
        # The in-memory table is atomic, so the stream is simply the snapshot.
        return iter(self.query_atomic(partition_key, row_filter))

    def partition_keys(self) -> List[str]:
        return sorted({pk for (pk, _rk) in self._rows})

    def row_keys(self, partition_key: str) -> List[str]:
        return sorted(rk for (pk, rk) in self._rows if pk == partition_key)

    def __len__(self) -> int:
        return len(self._rows)

    # ------------------------------------------------------------------
    # writes
    # ------------------------------------------------------------------
    def execute(self, operation: TableOperation) -> TableResult:
        self.operations_applied += 1
        key = (operation.partition_key, operation.row_key)
        current = self._rows.get(key)

        if operation.kind is OpKind.INSERT:
            if current is not None:
                return TableResult.failure(ErrorCode.CONFLICT)
            return self._store(key, operation.properties, version=1)

        if operation.kind is OpKind.UPSERT:
            version = 1 if current is None else current.version + 1
            return self._store(key, operation.properties, version)

        # REPLACE / MERGE / DELETE require the row to exist.
        if current is None:
            return TableResult.failure(ErrorCode.NOT_FOUND)
        if operation.if_match is not None and operation.if_match != current.version:
            return TableResult.failure(ErrorCode.ETAG_MISMATCH)

        if operation.kind is OpKind.DELETE:
            del self._rows[key]
            return TableResult.success()
        if operation.kind is OpKind.REPLACE:
            return self._store(key, operation.properties, current.version + 1)
        if operation.kind is OpKind.MERGE:
            merged = dict(current.properties)
            merged.update(operation.properties)
            return self._store(key, merged, current.version + 1)
        raise ValueError(f"unsupported operation kind {operation.kind}")  # pragma: no cover

    def execute_batch(self, operations: List[TableOperation]) -> List[TableResult]:
        """Atomic batch: validate against a snapshot, apply only if all succeed."""
        if not operations:
            return []
        partitions = {op.partition_key for op in operations}
        if len(partitions) > 1:
            raise ValueError("a batch must target a single partition")
        snapshot = {k: v.copy() for k, v in self._rows.items()}
        results = [self.execute(op) for op in operations]
        if not all(result.ok for result in results):
            self._rows = snapshot
        return results

    # ------------------------------------------------------------------
    def _store(self, key: Tuple[str, str], properties: Dict[str, object], version: int) -> TableResult:
        self._rows[key] = TableEntity(key[0], key[1], dict(properties), version)
        return TableResult.success(version)

    def seed(self, partition_key: str, row_key: str, properties: Dict[str, object], version: int = 1) -> None:
        """Directly install a row (used to set up test scenarios)."""
        self._rows[(partition_key, row_key)] = TableEntity(partition_key, row_key, dict(properties), version)
