"""The MigratingTable: live migration of a key-value data set (§4).

A MigratingTable (MT) instance presents the IChainTable interface to the
application while the data set is being moved from the *old* backend table to
the *new* backend table by a background migrator.  Every logical operation is
implemented as a short protocol of backend operations chosen according to the
partition's current migration state (see :mod:`repro.migratingtable.migration`).

All protocol methods are written as **generators**: a bare ``yield`` marks the
boundary between backend operations, which is exactly where the systematic
testing runtime lets other machines (other MT instances, the migrator)
interleave.  Outside of testing, :meth:`MigratingTable.run_to_completion` can
drive any of these generators synchronously.

Versioning: the MT maintains a per-row virtual version in the internal
``_mt_version`` property, bumped on every successful logical write and carried
along by the migrator's copies, so that etag semantics survive migration.

The eleven re-introducible bugs of Table 2 are switched on through
:class:`MigratingTableConfig.bugs`; every faulty code path is annotated with
the corresponding :class:`~repro.migratingtable.bugs.MigratingTableBug` member.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional

from .bugs import MigratingTableBug
from .chain_table import IChainTable
from .migration import PartitionMeta, PartitionState, read_partition_meta
from .table_types import (
    ErrorCode,
    META_ROW_KEY,
    OpKind,
    RowFilter,
    TOMBSTONE_PROPERTY,
    TableEntity,
    TableOperation,
    TableResult,
    VERSION_PROPERTY,
    matches_filter,
)


@dataclass
class MigratingTableConfig:
    """Configuration of a MigratingTable instance."""

    bugs: FrozenSet[MigratingTableBug] = field(default_factory=frozenset)

    def has(self, bug: MigratingTableBug) -> bool:
        return bug in self.bugs


class MigratingTable:
    """Chain table that transparently migrates between two backend tables."""

    def __init__(
        self,
        old_table: IChainTable,
        new_table: IChainTable,
        config: Optional[MigratingTableConfig] = None,
    ) -> None:
        self.old = old_table
        self.new = new_table
        self.config = config or MigratingTableConfig()
        # Cached only to exercise the QueryStreamedLock bug: the correct code
        # always re-reads the partition meta, the buggy streamed path uses
        # this stale snapshot taken at construction time.
        self._initial_meta: Dict[str, PartitionMeta] = {}

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def _read_meta(self, partition_key: str) -> PartitionMeta:
        meta = read_partition_meta(self.new, partition_key)
        self._initial_meta.setdefault(partition_key, meta)
        return meta

    def _virtual_version(self, entity: Optional[TableEntity]) -> Optional[int]:
        if entity is None:
            return None
        return int(entity.properties.get(VERSION_PROPERTY, entity.version))

    def _to_virtual(self, entity: Optional[TableEntity]) -> Optional[TableEntity]:
        """Convert a backend row into the virtual-table view of that row."""
        if entity is None or entity.is_tombstone() or entity.row_key == META_ROW_KEY:
            return None
        return TableEntity(
            entity.partition_key,
            entity.row_key,
            entity.visible_properties(),
            self._virtual_version(entity),
        )

    # ------------------------------------------------------------------
    # single-row virtual read
    # ------------------------------------------------------------------
    def read_row(self, partition_key: str, row_key: str):
        """Generator: resolve the virtual view of one row."""
        meta = self._read_meta(partition_key)
        yield
        row = yield from self._read_row_in_state(partition_key, row_key, meta.state)
        return row

    def _read_row_in_state(self, partition_key: str, row_key: str, state: PartitionState):
        if state in (PartitionState.USE_OLD, PartitionState.PREFER_OLD):
            entity = self.old.get(partition_key, row_key)
            yield
            if entity is not None:
                return self._to_virtual(entity)
            # The migration may have advanced between reading the partition
            # state and reading the row (the old copy can already be cleaned
            # up); fall back to the new table so the read never misses a row
            # that has simply moved.
            moved = self.new.get(partition_key, row_key)
            yield
            return self._to_virtual(moved)
        if state is PartitionState.PREFER_NEW:
            entity = self.new.get(partition_key, row_key)
            yield
            if entity is not None:
                # A tombstone means the row was deleted after migration; do
                # not fall back to the stale old-table copy.
                return self._to_virtual(entity)
            old_entity = self.old.get(partition_key, row_key)
            yield
            return self._to_virtual(old_entity)
        if state is PartitionState.USE_NEW_WITH_TOMBSTONES:
            entity = self.new.get(partition_key, row_key)
            yield
            return self._to_virtual(entity)
        # USE_NEW: tombstones are assumed to have been cleaned up, so the raw
        # row is returned as-is (this is what makes skipping the cleanup phase
        # a real protocol bug).
        entity = self.new.get(partition_key, row_key)
        yield
        if entity is None or entity.row_key == META_ROW_KEY:
            return None
        return TableEntity(
            entity.partition_key,
            entity.row_key,
            entity.visible_properties(),
            self._virtual_version(entity),
        )

    # ------------------------------------------------------------------
    # writes
    # ------------------------------------------------------------------
    def execute(self, operation: TableOperation):
        """Generator: apply one logical write operation.

        The outcome is decided against the virtual view, then applied under
        the current migration state.  If the migration state advances while
        the operation is in flight, the already-decided outcome is re-applied
        under the new state, which keeps the operation from being stranded in
        a table that is about to be abandoned.
        """
        meta = self._read_meta(operation.partition_key)
        yield
        current = yield from self._read_row_in_state(
            operation.partition_key, operation.row_key, meta.state
        )
        outcome = self._evaluate(operation, current)
        if isinstance(outcome, TableResult):
            return outcome

        new_properties, new_version, is_delete = outcome
        applied_state = meta.state
        while True:
            if is_delete:
                yield from self._apply_delete(operation, applied_state)
            else:
                yield from self._apply_write(
                    operation.partition_key, operation.row_key, new_properties, new_version, applied_state
                )
            latest = self._read_meta(operation.partition_key)
            yield
            if latest.state == applied_state:
                break
            applied_state = latest.state
        if is_delete:
            return TableResult.success()
        return TableResult.success(new_version)

    def _evaluate(self, operation: TableOperation, current: Optional[TableEntity]):
        """Decide the outcome of ``operation`` against the virtual row ``current``."""
        kind = operation.kind
        if kind is OpKind.INSERT:
            if current is not None:
                return TableResult.failure(ErrorCode.CONFLICT)
            return dict(operation.properties), 1, False
        if kind is OpKind.UPSERT:
            version = 1 if current is None else current.version + 1
            return dict(operation.properties), version, False
        if current is None:
            return TableResult.failure(ErrorCode.NOT_FOUND)
        if operation.if_match is not None and operation.if_match != current.version:
            return TableResult.failure(ErrorCode.ETAG_MISMATCH)
        if kind is OpKind.DELETE:
            return {}, current.version + 1, True
        if kind is OpKind.REPLACE:
            return dict(operation.properties), current.version + 1, False
        if kind is OpKind.MERGE:
            merged = dict(current.properties)
            merged.update(operation.properties)
            return merged, current.version + 1, False
        raise ValueError(f"unsupported operation kind {kind}")  # pragma: no cover

    def _apply_write(
        self,
        partition_key: str,
        row_key: str,
        properties: Dict[str, object],
        version: int,
        state: PartitionState,
    ):
        stored = dict(properties)
        stored[VERSION_PROPERTY] = version
        write = TableOperation(OpKind.UPSERT, partition_key, row_key, stored)

        if state is PartitionState.USE_OLD:
            self.old.execute(write)
            yield
            return
        if state is PartitionState.PREFER_OLD:
            self.old.execute(write)
            yield
            if (yield from self._should_mirror(partition_key, row_key)):
                self.new.execute(write)
                yield
            return
        # PREFER_NEW / USE_NEW_WITH_TOMBSTONES / USE_NEW: the new table is
        # authoritative.  Writing over a tombstone must fully replace it.
        if self.config.has(MigratingTableBug.TOMBSTONE_OUTPUT_ETAG):
            existing = self.new.get(partition_key, row_key)
            yield
            if existing is not None and existing.is_tombstone():
                # BUG (TombstoneOutputETag): the write merges into the
                # tombstone row instead of replacing it, so the tombstone
                # marker (and its etag) leaks into the stored row.
                merged = dict(existing.properties)
                merged.update(stored)
                self.new.execute(TableOperation(OpKind.UPSERT, partition_key, row_key, merged))
                yield
                return
        self.new.execute(write)
        yield

    def _should_mirror(self, partition_key: str, row_key: str):
        """During PREFER_OLD, decide whether a write must also go to the new table.

        The correct protocol mirrors a write when the new table already holds
        the row or when the row key lies at or behind the migrator's copy
        cursor; keys ahead of the cursor are left to the migrator's ongoing
        copy pass (and to the safe pre-cleanup re-check).
        """
        if self.config.has(MigratingTableBug.INSERT_BEHIND_MIGRATOR):
            # BUG (InsertBehindMigrator): writes at or behind the migrator's
            # copy cursor are assumed to be "already handled" and are applied
            # to the old table only, so the new table keeps a stale copy the
            # migrator never refreshes.
            meta = self._read_meta(partition_key)
            yield
            if row_key <= meta.copy_cursor:
                return False
        existing = self.new.get(partition_key, row_key)
        yield
        if existing is not None:
            return True
        meta = self._read_meta(partition_key)
        yield
        return row_key <= meta.copy_cursor

    def _apply_delete(self, operation: TableOperation, state: PartitionState):
        partition_key, row_key = operation.partition_key, operation.row_key
        delete = TableOperation(OpKind.DELETE, partition_key, row_key)

        if state is PartitionState.USE_OLD:
            self.old.execute(delete)
            yield
            return
        if state is PartitionState.PREFER_OLD:
            self.old.execute(delete)
            yield
            if self.config.has(MigratingTableBug.DELETE_PRIMARY_KEY):
                # BUG (DeletePrimaryKey): only the primary (old-table) copy is
                # deleted; the already-copied row in the new table survives and
                # resurrects once the partition switches to PREFER_NEW.
                return
            # Record the deletion in the new table as a tombstone so that a
            # concurrent (or already completed) migrator copy cannot
            # resurrect the row once the partition switches to PREFER_NEW.
            self.new.execute(
                TableOperation(
                    OpKind.UPSERT,
                    partition_key,
                    row_key,
                    {TOMBSTONE_PROPERTY: True, VERSION_PROPERTY: 0},
                )
            )
            yield
            return
        if state is PartitionState.PREFER_NEW:
            if (
                self.config.has(MigratingTableBug.DELETE_NO_LEAVE_TOMBSTONES_ETAG)
                and operation.if_match is not None
            ):
                # BUG (DeleteNoLeaveTombstonesEtag): the etag-conditional
                # delete path removes the row without leaving a tombstone, so
                # reads fall back to the stale old-table copy.
                self.new.execute(delete)
                yield
                return
            tombstone = TableOperation(
                OpKind.UPSERT,
                partition_key,
                row_key,
                {TOMBSTONE_PROPERTY: True, VERSION_PROPERTY: 0},
            )
            self.new.execute(tombstone)
            yield
            return
        # USE_NEW_WITH_TOMBSTONES / USE_NEW: the old table is out of the
        # picture, a plain delete suffices.
        self.new.execute(delete)
        yield

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def query_atomic(self, partition_key: str, row_filter: Optional[RowFilter] = None):
        """Generator: atomic snapshot query of one partition."""
        while True:
            meta = self._read_meta(partition_key)
            yield
            rows = yield from self._query_in_state(partition_key, row_filter, meta.state)
            check = self._read_meta(partition_key)
            yield
            if check.state == meta.state:
                return rows
            # The migration advanced mid-query; retry under the new state so
            # that the result reflects a single consistent protocol phase.

    def _query_in_state(
        self, partition_key: str, row_filter: Optional[RowFilter], state: PartitionState
    ):
        shadowing_bug = self.config.has(MigratingTableBug.QUERY_ATOMIC_FILTER_SHADOWING)
        backend_filter = row_filter if shadowing_bug else None

        if state in (PartitionState.USE_OLD, PartitionState.PREFER_OLD):
            rows = self.old.query_atomic(partition_key, backend_filter)
            yield
            merged = {row.row_key: row for row in rows}
        elif state is PartitionState.PREFER_NEW:
            # BUG (QueryAtomicFilterShadowing): when the filter is pushed down
            # to the backends, a new-table row that does not match the filter
            # no longer shadows its stale old-table version, so deleted or
            # updated rows reappear in the result.
            new_rows = self.new.query_atomic(partition_key, backend_filter)
            yield
            old_rows = self.old.query_atomic(partition_key, backend_filter)
            yield
            merged = {row.row_key: row for row in old_rows}
            for row in new_rows:
                merged[row.row_key] = row
        else:
            rows = self.new.query_atomic(partition_key, backend_filter)
            yield
            merged = {row.row_key: row for row in rows}
            if state is PartitionState.USE_NEW_WITH_TOMBSTONES:
                merged = {rk: row for rk, row in merged.items() if not row.is_tombstone()}
            # USE_NEW: tombstones are assumed cleaned, rows pass through.

        result = []
        for row_key in sorted(merged):
            virtual = self._present_row(merged[row_key], state)
            if virtual is None:
                continue
            if matches_filter(virtual, row_filter):
                result.append(virtual)
        return result

    def _present_row(self, entity: TableEntity, state: PartitionState) -> Optional[TableEntity]:
        if entity.row_key == META_ROW_KEY:
            return None
        if state is not PartitionState.USE_NEW and entity.is_tombstone():
            return None
        return TableEntity(
            entity.partition_key,
            entity.row_key,
            entity.visible_properties(),
            self._virtual_version(entity),
        )

    def query_streamed(self, partition_key: str, row_filter: Optional[RowFilter] = None):
        """Generator: streamed query returning rows in row-key order.

        Each produced row reflects the table state at some point between the
        start of the stream and the moment the row is read (the IChainTable
        streaming guarantee).
        """
        lock_bug = self.config.has(MigratingTableBug.QUERY_STREAMED_LOCK)
        while True:
            if lock_bug:
                # BUG (QueryStreamedLock): the stream uses the partition state
                # observed when this MigratingTable instance was created
                # instead of re-reading it, so a migration that progressed
                # since then is ignored for the whole stream.
                meta = self._initial_meta.get(partition_key) or self._read_meta(partition_key)
            else:
                meta = self._read_meta(partition_key)
            yield
            new_keys = [row.row_key for row in self.new.query_atomic(partition_key)]
            yield
            old_keys = [row.row_key for row in self.old.query_atomic(partition_key)]
            yield
            if lock_bug:
                break
            check = self._read_meta(partition_key)
            yield
            if check.state == meta.state:
                # The key snapshots were taken within a single protocol phase;
                # otherwise the migrator may have moved rows between the two
                # snapshots and the union could miss keys, so retry.
                break
        if self.config.has(MigratingTableBug.QUERY_STREAMED_BACK_UP_NEW_STREAM) and meta.state in (
            PartitionState.PREFER_OLD,
            PartitionState.PREFER_NEW,
        ):
            # BUG (QueryStreamedBackUpNewStream): during the merge the new-table
            # stream is not backed up, so a row whose old-table copy was just
            # deleted by the migrator (but which lives on in the new table) is
            # skipped entirely.
            keys = sorted(set(old_keys))
        else:
            keys = sorted(set(old_keys) | set(new_keys))

        results: List[TableEntity] = []
        for row_key in keys:
            if row_key == META_ROW_KEY:
                continue
            if self.config.has(MigratingTableBug.QUERY_STREAMED_LOCK):
                state = meta.state
            else:
                state = (self._read_meta(partition_key)).state
            yield
            row = yield from self._stream_read_row(partition_key, row_key, state, row_filter)
            if row is not None:
                results.append(row)
        return results

    def _stream_read_row(
        self,
        partition_key: str,
        row_key: str,
        state: PartitionState,
        row_filter: Optional[RowFilter],
    ):
        if state is PartitionState.PREFER_NEW and self.config.has(
            MigratingTableBug.QUERY_STREAMED_FILTER_SHADOWING
        ):
            # BUG (QueryStreamedFilterShadowing): the filter is tested on the
            # new-table row first and, when it does not match, the stream falls
            # back to the old-table row instead of concluding that the key is
            # excluded — resurrecting stale rows that happen to match.
            new_entity = self.new.get(partition_key, row_key)
            yield
            virtual = self._to_virtual(new_entity)
            if virtual is not None and matches_filter(virtual, row_filter):
                return virtual
            old_entity = self.old.get(partition_key, row_key)
            yield
            virtual_old = self._to_virtual(old_entity)
            if virtual_old is not None and matches_filter(virtual_old, row_filter):
                return virtual_old
            return None
        row = yield from self._read_row_in_state(partition_key, row_key, state)
        if row is None or not matches_filter(row, row_filter):
            return None
        return row

    # ------------------------------------------------------------------
    # synchronous convenience wrapper (production use, examples, unit tests)
    # ------------------------------------------------------------------
    @staticmethod
    def run_to_completion(generator):
        """Drive one of the protocol generators to completion synchronously."""
        try:
            while True:
                next(generator)
        except StopIteration as stop:
            return stop.value
