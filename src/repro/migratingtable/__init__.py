"""Case study 2: Live Table Migration (MigratingTable, §4).

The system-under-test is :class:`~repro.migratingtable.migrating_table.MigratingTable`,
a library that transparently migrates a key-value data set between two backend
tables (both presenting the :class:`~repro.migratingtable.chain_table.IChainTable`
interface) while applications keep reading and writing, together with the
background :class:`~repro.migratingtable.migrator.Migrator`.  The harness in
:mod:`repro.migratingtable.harness` checks complete compliance with the
IChainTable specification against a reference implementation, with the eleven
Table 2 bugs re-introducible through
:class:`~repro.migratingtable.bugs.MigratingTableBug`.
"""

from .bugs import ALL_BUGS, CLIENT_SIDE_BUGS, MIGRATOR_SIDE_BUGS, NOTIONAL_BUGS, ORGANIC_BUGS, MigratingTableBug
from .chain_table import IChainTable
from .migrating_table import MigratingTable, MigratingTableConfig
from .migration import PartitionMeta, PartitionState, read_partition_meta, write_partition_meta
from .migrator import Migrator, MigratorConfig
from .reference_table import InMemoryChainTable
from .table_types import (
    ErrorCode,
    META_ROW_KEY,
    OpKind,
    RowFilter,
    TOMBSTONE_PROPERTY,
    TableEntity,
    TableOperation,
    TableResult,
    VERSION_PROPERTY,
)

__all__ = [
    "ALL_BUGS",
    "CLIENT_SIDE_BUGS",
    "ErrorCode",
    "IChainTable",
    "InMemoryChainTable",
    "META_ROW_KEY",
    "MIGRATOR_SIDE_BUGS",
    "MigratingTable",
    "MigratingTableBug",
    "MigratingTableConfig",
    "Migrator",
    "MigratorConfig",
    "NOTIONAL_BUGS",
    "ORGANIC_BUGS",
    "OpKind",
    "PartitionMeta",
    "PartitionState",
    "RowFilter",
    "TOMBSTONE_PROPERTY",
    "TableEntity",
    "TableOperation",
    "TableResult",
    "VERSION_PROPERTY",
    "read_partition_meta",
    "write_partition_meta",
]
