"""P#-style test harness for the MigratingTable case study (Figure 12)."""

from .machines import MigratorMachine, ServiceMachine, split_bugs
from .scenarios import (
    build_directed_test,
    build_migration_test,
    directed_operations_for,
    seed_initial_rows,
)

__all__ = [
    "MigratorMachine",
    "ServiceMachine",
    "build_directed_test",
    "build_migration_test",
    "directed_operations_for",
    "seed_initial_rows",
    "split_bugs",
]
