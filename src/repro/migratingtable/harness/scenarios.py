"""Test-entry factories for the MigratingTable case study.

``build_migration_test`` is the default harness of §4: a set of service
machines issue controlled-random operation sequences against MigratingTable
instances while the migrator runs concurrently.  ``build_directed_test``
builds the "custom test case with a specific input" the paper resorted to for
the bugs whose triggering inputs are too rare under the default distribution.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional

from repro.core import TestRuntime
from repro.core.registry import TestCase, register

from ..bugs import MigratingTableBug
from ..migrating_table import MigratingTableConfig
from ..migrator import MigratorConfig
from ..reference_table import InMemoryChainTable
from ..table_types import OpKind, RowFilter, TableOperation, VERSION_PROPERTY
from .machines import MigratorMachine, ServiceMachine, split_bugs


def seed_initial_rows(
    old_table: InMemoryChainTable,
    partition_keys: Iterable[str],
    row_keys: Iterable[str],
    base_value: int = 2,
) -> None:
    """Populate the pre-migration data set in the old backend table."""
    for partition_key in partition_keys:
        for index, row_key in enumerate(row_keys):
            old_table.seed(
                partition_key,
                row_key,
                {"value": base_value + index, VERSION_PROPERTY: 1},
                version=1,
            )


def build_migration_test(
    bugs: Iterable[MigratingTableBug] = (),
    num_services: int = 1,
    operations_per_service: int = 8,
    row_keys: Optional[List[str]] = None,
    scripted_operations: Optional[List[object]] = None,
) -> Callable[[TestRuntime], None]:
    """Build the default MigratingTable harness with the given bugs enabled."""
    bug_set = frozenset(bugs)
    client_bugs, migrator_bugs = split_bugs(bug_set)
    keys = row_keys or ["r0", "r1", "r2", "r3"]

    def test_entry(runtime: TestRuntime) -> None:
        old_table = InMemoryChainTable("old")
        new_table = InMemoryChainTable("new")
        partitions = [f"P{i}" for i in range(num_services)]
        seed_initial_rows(old_table, partitions, keys)
        runtime.create_machine(
            MigratorMachine,
            old_table,
            new_table,
            partitions,
            MigratorConfig(bugs=migrator_bugs),
            name="Migrator",
        )
        for partition_key in partitions:
            initial_rows = old_table.query_atomic(partition_key)
            runtime.create_machine(
                ServiceMachine,
                old_table,
                new_table,
                partition_key,
                MigratingTableConfig(bugs=client_bugs),
                operations_per_service,
                list(keys),
                scripted_operations=scripted_operations,
                initial_rows=initial_rows,
                name=f"Service-{partition_key}",
            )

    return test_entry


def directed_operations_for(bug: MigratingTableBug) -> List[object]:
    """A scripted operation sequence that targets one specific bug.

    This plays the role of the paper's "custom test case with a specific
    input that triggers it": the schedule is still explored systematically,
    but the inputs are fixed to the shape that makes the bug reachable.
    """
    pk = "P0"
    low_filter = RowFilter("value", "<=", 4)
    if bug in (MigratingTableBug.QUERY_ATOMIC_FILTER_SHADOWING, MigratingTableBug.QUERY_STREAMED_FILTER_SHADOWING):
        # Repeatedly flip a row's value across the filter threshold and query
        # with the filter, so that some replace/query pair lands inside the
        # PREFER_NEW window where the old table still holds the stale copy.
        query = "query_atomic" if bug is MigratingTableBug.QUERY_ATOMIC_FILTER_SHADOWING else "query_streamed"
        ops: List[object] = []
        for round_index in range(6):
            ops.append(TableOperation(OpKind.REPLACE, pk, "r2", {"value": 9 if round_index % 2 == 0 else 3}))
            ops.append((query, low_filter))
        return ops
    if bug is MigratingTableBug.QUERY_STREAMED_BACK_UP_NEW_STREAM:
        return [("query_streamed", None), ("query_streamed", None), ("query_streamed", None)]
    if bug is MigratingTableBug.QUERY_STREAMED_LOCK:
        return [("query_streamed", None), ("query_streamed", None), ("query_streamed", None)]
    if bug is MigratingTableBug.DELETE_NO_LEAVE_TOMBSTONES_ETAG:
        return [
            TableOperation(OpKind.DELETE, pk, "r0", if_match=1),
            ("query_atomic", None),
            TableOperation(OpKind.DELETE, pk, "r1", if_match=1),
            ("query_atomic", None),
        ]
    if bug is MigratingTableBug.DELETE_PRIMARY_KEY:
        return [
            TableOperation(OpKind.DELETE, pk, "r0"),
            ("query_atomic", None),
            TableOperation(OpKind.DELETE, pk, "r1"),
            ("query_atomic", None),
        ]
    if bug is MigratingTableBug.TOMBSTONE_OUTPUT_ETAG:
        return [
            TableOperation(OpKind.DELETE, pk, "r0"),
            TableOperation(OpKind.INSERT, pk, "r0", {"value": 7}),
            ("query_atomic", None),
            TableOperation(OpKind.DELETE, pk, "r1"),
            TableOperation(OpKind.INSERT, pk, "r1", {"value": 6}),
            ("query_atomic", None),
        ]
    if bug is MigratingTableBug.ENSURE_PARTITION_SWITCHED_FROM_POPULATED:
        # Spread inserts of brand-new row keys across the whole execution so
        # that one of them lands between the migrator's final copy pass and
        # the old-table cleanup.
        ops = []
        for index in range(5):
            ops.append(TableOperation(OpKind.INSERT, pk, f"r{5 + index}", {"value": 5}))
            ops.append(("query_atomic", None))
        return ops
    if bug is MigratingTableBug.INSERT_BEHIND_MIGRATOR:
        # Keep updating the lowest row keys (the ones most likely to be behind
        # the migrator's copy cursor during PREFER_OLD) and re-reading them.
        ops = []
        for index in range(5):
            ops.append(TableOperation(OpKind.REPLACE, pk, "r0" if index % 2 == 0 else "r1", {"value": 9 - index}))
            ops.append(("query_atomic", None))
        return ops
    if bug is MigratingTableBug.MIGRATE_SKIP_PREFER_OLD:
        return [
            TableOperation(OpKind.REPLACE, pk, "r0", {"value": 9}),
            TableOperation(OpKind.REPLACE, pk, "r1", {"value": 9}),
            ("query_atomic", None),
            ("query_atomic", None),
        ]
    if bug is MigratingTableBug.MIGRATE_SKIP_USE_NEW_WITH_TOMBSTONES:
        return [
            TableOperation(OpKind.DELETE, pk, "r0"),
            ("query_atomic", None),
            TableOperation(OpKind.DELETE, pk, "r1"),
            ("query_atomic", None),
            ("query_atomic", None),
        ]
    raise ValueError(f"no directed scenario for {bug}")


def build_directed_test(bug: MigratingTableBug) -> Callable[[TestRuntime], None]:
    """Default harness restricted to a scripted input targeting ``bug``."""
    return build_migration_test(
        bugs=[bug], num_services=1, scripted_operations=directed_operations_for(bug)
    )


# ---------------------------------------------------------------------------
# registered scenarios: one default-harness and one directed scenario per
# re-introducible Table 2 bug, plus the bug-free harness as a clean run.
# ---------------------------------------------------------------------------
def _register_scenarios() -> None:
    from ..bugs import NOTIONAL_BUGS

    for bug in MigratingTableBug:
        notional = ("notional",) if bug in NOTIONAL_BUGS else ()
        register(
            TestCase(
                name=f"migratingtable/{bug.value}",
                build=lambda bug=bug: build_migration_test([bug]),
                tags=("migratingtable", "safety", "bug", "table2") + notional,
                description=f"default migration harness with the {bug.value} bug re-introduced",
                expected_bug=bug.value,
                expected_bug_kind="safety",
                max_steps=4000,
                case_study=2,
            )
        )
        register(
            TestCase(
                name=f"migratingtable/{bug.value}/directed",
                build=lambda bug=bug: build_directed_test(bug),
                tags=("migratingtable", "safety", "bug", "directed") + notional,
                description=f"directed (scripted-input) harness targeting the {bug.value} bug",
                expected_bug=bug.value,
                expected_bug_kind="safety",
                max_steps=4000,
                case_study=2,
            )
        )
    register(
        TestCase(
            name="migratingtable/no-bugs",
            build=lambda: build_migration_test([]),
            tags=("migratingtable", "clean"),
            description="default migration harness with no bug re-introduced — clean run",
            max_steps=4000,
            case_study=2,
        )
    )


_register_scenarios()
