"""Test harness machines for the MigratingTable case study (Figure 12).

* Each :class:`ServiceMachine` plays one application process: it owns a
  MigratingTable instance over the shared backend tables, issues a controlled
  random sequence of logical operations against it, and checks every outcome
  against a reference table running the reference IChainTable implementation.
  Each service uses its own partition, so the reference outcome of its
  operations is independent of other services (migration itself never changes
  logical content), which keeps the specification check free of false
  positives without needing cross-machine linearization-point coordination.
* The :class:`MigratorMachine` runs the background migrator.

Backend tables are shared plain objects; every backend operation boundary is a
scheduling point (a bare ``yield`` inside the MigratingTable / Migrator code),
so the testing engine explores interleavings of application operations and
migration steps at backend-operation granularity — the role played by the
Tables machine in the paper's harness.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core import Machine, State

from ..bugs import CLIENT_SIDE_BUGS, MIGRATOR_SIDE_BUGS
from ..chain_table import IChainTable
from ..migrating_table import MigratingTable, MigratingTableConfig
from ..migrator import Migrator, MigratorConfig
from ..reference_table import InMemoryChainTable
from ..table_types import (
    OpKind,
    RowFilter,
    TableEntity,
    TableOperation,
    TableResult,
    VERSION_PROPERTY,
)


def split_bugs(bugs) -> tuple:
    """Split a bug set into (client-side bugs, migrator-side bugs)."""
    bug_set = frozenset(bugs)
    return bug_set & CLIENT_SIDE_BUGS, bug_set & MIGRATOR_SIDE_BUGS


class MigratorMachine(Machine):
    """Runs the background migration, one backend step per scheduling point."""

    class Migrating(State, initial=True):
        """Single protocol phase: the migration loop lives in ``on_start``."""

    def on_start(
        self,
        old_table: IChainTable,
        new_table: IChainTable,
        partition_keys: List[str],
        config: Optional[MigratorConfig] = None,
    ):
        self.migrator = Migrator(old_table, new_table, partition_keys, config)
        yield from self.migrator.run()
        self.log(f"migration finished for partitions {partition_keys}")


class ServiceMachine(Machine):
    """One application process issuing random operations through its MT."""

    class Issuing(State, initial=True):
        """Single protocol phase: the operation loop lives in ``on_start``."""

    #: Operation mix explored by the controlled random choices.
    WRITE_KINDS = (OpKind.INSERT, OpKind.REPLACE, OpKind.MERGE, OpKind.UPSERT, OpKind.DELETE)

    def on_start(
        self,
        old_table: IChainTable,
        new_table: IChainTable,
        partition_key: str,
        table_config: Optional[MigratingTableConfig] = None,
        num_operations: int = 8,
        row_keys: Optional[List[str]] = None,
        value_range: int = 10,
        filter_threshold: int = 4,
        scripted_operations: Optional[List[object]] = None,
        initial_rows: Optional[List[TableEntity]] = None,
    ):
        self.partition_key = partition_key
        self.table = MigratingTable(old_table, new_table, table_config)
        self.reference = InMemoryChainTable(f"reference-{partition_key}")
        self.row_keys = row_keys or ["r0", "r1", "r2", "r3"]
        self.value_range = value_range
        self.filter_threshold = filter_threshold
        self.operations_checked = 0

        # The reference table starts from the same logical content as the
        # pre-migration data set.  The rows are passed in explicitly (rather
        # than read from the old backend table here) because the migrator may
        # already have moved data by the time this machine is scheduled.
        seed_rows = initial_rows
        if seed_rows is None:
            seed_rows = old_table.query_atomic(partition_key)
        for row in seed_rows:
            version = int(row.properties.get(VERSION_PROPERTY, row.version))
            self.reference.seed(partition_key, row.row_key, row.visible_properties(), version)

        if scripted_operations is not None:
            for item in scripted_operations:
                yield from self._perform(item)
        else:
            for _ in range(num_operations):
                yield from self._perform(self._generate_action())

        # Final end-to-end check: the virtual table must equal the reference.
        actual = yield from self.table.query_atomic(self.partition_key)
        self._check_rows(actual, self.reference.query_atomic(self.partition_key), "final snapshot")

    # ------------------------------------------------------------------
    # action generation (all nondeterminism is controlled by the scheduler)
    # ------------------------------------------------------------------
    def _generate_action(self):
        action = self.random_integer(4)
        if action == 0:
            return ("query_atomic", self._generate_filter())
        if action == 1:
            return ("query_streamed", self._generate_filter())
        return self._generate_write()

    def _generate_filter(self) -> Optional[RowFilter]:
        if self.random():
            return RowFilter("value", "<=", self.filter_threshold)
        return None

    def _generate_write(self) -> TableOperation:
        kind = self.choose(self.WRITE_KINDS)
        row_key = self.choose(self.row_keys)
        properties = {"value": self.random_integer(self.value_range)}
        if_match = None
        if kind in (OpKind.REPLACE, OpKind.MERGE, OpKind.DELETE) and self.random():
            current = self.reference.get(self.partition_key, row_key)
            known_version = current.version if current is not None else 1
            # Occasionally use a deliberately wrong etag to exercise the
            # mismatch path of the protocol.
            if_match = known_version if self.random() else known_version + 7
        return TableOperation(kind, self.partition_key, row_key, properties, if_match)

    # ------------------------------------------------------------------
    # specification checking
    # ------------------------------------------------------------------
    def _perform(self, action):
        if isinstance(action, TableOperation):
            expected = self.reference.execute(action)
            actual = yield from self.table.execute(action)
            self._check_result(action, expected, actual)
        else:
            query_kind, row_filter = action
            expected_rows = self.reference.query_atomic(self.partition_key, row_filter)
            if query_kind == "query_atomic":
                actual_rows = yield from self.table.query_atomic(self.partition_key, row_filter)
            else:
                actual_rows = yield from self.table.query_streamed(self.partition_key, row_filter)
            self._check_rows(actual_rows, expected_rows, query_kind)
        self.operations_checked += 1

    def _check_result(self, operation: TableOperation, expected: TableResult, actual: TableResult) -> None:
        self.assert_that(
            (expected.ok, expected.error, expected.version)
            == (actual.ok, actual.error, actual.version),
            f"{operation.kind.value} on {operation.row_key}: "
            f"MigratingTable returned {actual}, the reference implementation returned {expected}",
        )

    def _check_rows(self, actual: List[TableEntity], expected: List[TableEntity], label: str) -> None:
        def normalize(rows):
            return [(row.row_key, tuple(sorted(row.visible_properties().items())), row.version) for row in rows]

        self.assert_that(
            normalize(actual) == normalize(expected),
            f"{label} mismatch on partition {self.partition_key}: "
            f"MigratingTable returned {normalize(actual)}, reference has {normalize(expected)}",
        )
