"""Data model of the IChainTable interface (case study 2, §4).

The types here deliberately mirror the Azure Table data model the paper's
MigratingTable builds on: entities addressed by (partition key, row key) with
free-form properties and an etag used for optimistic concurrency.  In this
reproduction the etag is a per-row *version number* that both the reference
implementation and the MigratingTable maintain identically, which makes
results directly comparable during specification checking.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Optional

#: Internal property holding the virtual version (etag) maintained by the
#: MigratingTable; it travels with the row when the migrator copies it.
VERSION_PROPERTY = "_mt_version"
#: Internal property marking a tombstone row (a deletion recorded in the new
#: table so that reads do not fall back to the stale old-table row).
TOMBSTONE_PROPERTY = "_tombstone"
#: Row key of the per-partition migration metadata row (stored in the new table).
META_ROW_KEY = "__migration_meta__"

INTERNAL_PROPERTIES = (VERSION_PROPERTY, TOMBSTONE_PROPERTY)


class OpKind(str, enum.Enum):
    """Write operations supported by the IChainTable interface."""

    INSERT = "insert"
    REPLACE = "replace"
    MERGE = "merge"
    UPSERT = "upsert"
    DELETE = "delete"


class ErrorCode(str, enum.Enum):
    """Failure outcomes of a table operation."""

    CONFLICT = "conflict"
    NOT_FOUND = "not-found"
    ETAG_MISMATCH = "etag-mismatch"


@dataclass
class TableEntity:
    """A row: partition key, row key, properties, and a version (etag)."""

    partition_key: str
    row_key: str
    properties: Dict[str, object] = field(default_factory=dict)
    version: int = 0

    def copy(self) -> "TableEntity":
        return TableEntity(self.partition_key, self.row_key, dict(self.properties), self.version)

    @property
    def key(self) -> tuple:
        return (self.partition_key, self.row_key)

    def visible_properties(self) -> Dict[str, object]:
        """Properties without the protocol-internal bookkeeping fields."""
        return {k: v for k, v in self.properties.items() if k not in INTERNAL_PROPERTIES}

    def is_tombstone(self) -> bool:
        return bool(self.properties.get(TOMBSTONE_PROPERTY))


@dataclass(frozen=True)
class TableOperation:
    """One write operation against a single row.

    ``if_match`` of ``None`` means the operation is unconditional; otherwise
    the operation only applies when the row's current version equals it.
    """

    kind: OpKind
    partition_key: str
    row_key: str
    properties: Dict[str, object] = field(default_factory=dict)
    if_match: Optional[int] = None

    def __post_init__(self) -> None:
        if not isinstance(self.kind, OpKind):
            object.__setattr__(self, "kind", OpKind(self.kind))


@dataclass(frozen=True)
class TableResult:
    """Outcome of a write operation."""

    ok: bool
    error: Optional[ErrorCode] = None
    version: Optional[int] = None

    @staticmethod
    def success(version: Optional[int] = None) -> "TableResult":
        return TableResult(True, None, version)

    @staticmethod
    def failure(error: ErrorCode) -> "TableResult":
        return TableResult(False, error, None)


@dataclass(frozen=True)
class RowFilter:
    """A simple property predicate used by queries (``property <op> value``)."""

    property_name: str
    comparison: str  # one of "<=", ">=", "==", "<", ">"
    value: object

    _OPS = {
        "<=": lambda a, b: a <= b,
        ">=": lambda a, b: a >= b,
        "==": lambda a, b: a == b,
        "<": lambda a, b: a < b,
        ">": lambda a, b: a > b,
    }

    def matches(self, entity: TableEntity) -> bool:
        if self.property_name not in entity.properties:
            return False
        try:
            return self._OPS[self.comparison](entity.properties[self.property_name], self.value)
        except TypeError:
            return False


def matches_filter(entity: TableEntity, row_filter: Optional[RowFilter]) -> bool:
    return row_filter is None or row_filter.matches(entity)
