"""Table 1: cost of environment modeling.

Computes, for each case study, the size of the system-under-test, the size of
the test harness, and the structural statistics of the harness (#machines,
#states, #state transitions, #action handlers, #deferred/#ignored event
declarations), mirroring Table 1 of the paper.
"""

from __future__ import annotations

from typing import List

from repro.core.statistics import HarnessDescription, HarnessStatistics


def case_study_descriptions() -> List[HarnessDescription]:
    """The three case-study rows (plus the §2.2 example as a bonus row)."""
    import repro.examplesys.harness.machines as example_machines
    import repro.examplesys.harness.monitors as example_monitors
    import repro.examplesys.harness.scenarios as example_scenarios
    import repro.examplesys.messages as example_messages
    import repro.examplesys.server as example_server
    import repro.fabric.harness as fabric_harness
    import repro.fabric.model as fabric_model
    import repro.migratingtable.bugs as mt_bugs
    import repro.migratingtable.chain_table as mt_chain
    import repro.migratingtable.harness.machines as mt_machines
    import repro.migratingtable.harness.scenarios as mt_scenarios
    import repro.migratingtable.migrating_table as mt_table
    import repro.migratingtable.migration as mt_migration
    import repro.migratingtable.migrator as mt_migrator
    import repro.migratingtable.reference_table as mt_reference
    import repro.migratingtable.table_types as mt_types
    import repro.vnext.extent as vnext_extent
    import repro.vnext.extent_manager as vnext_manager
    import repro.vnext.extent_node as vnext_node
    import repro.vnext.harness.events as vnext_events
    import repro.vnext.harness.machines as vnext_machines
    import repro.vnext.harness.monitor as vnext_monitor
    import repro.vnext.harness.scenarios as vnext_scenarios
    import repro.vnext.messages as vnext_messages

    from repro.examplesys.harness.machines import ClientMachine, ServerMachine, StorageNodeMachine
    from repro.examplesys.harness.monitors import AckLivenessMonitor, ReplicaSafetyMonitor
    from repro.fabric.harness import ClusterManagerMachine, FabricTestDriver, ReplicaMachine
    from repro.fabric.model import PrimaryLivenessMonitor, PromotionSafetyMonitor
    from repro.migratingtable.harness.machines import MigratorMachine, ServiceMachine
    from repro.vnext.harness.machines import (
        ExtentManagerMachine,
        ExtentNodeMachine,
        TestingDriverMachine,
    )
    from repro.vnext.harness.monitor import RepairMonitor
    from repro.core.timer import TimerMachine

    return [
        HarnessDescription(
            name="vNext Extent Manager",
            system_modules=[vnext_extent, vnext_manager, vnext_node, vnext_messages],
            harness_modules=[vnext_events, vnext_machines, vnext_monitor, vnext_scenarios],
            machine_classes=[
                ExtentManagerMachine,
                ExtentNodeMachine,
                TestingDriverMachine,
                TimerMachine,
                RepairMonitor,
            ],
            bugs_found=1,
        ),
        HarnessDescription(
            name="MigratingTable",
            system_modules=[
                mt_types,
                mt_chain,
                mt_reference,
                mt_migration,
                mt_table,
                mt_migrator,
                mt_bugs,
            ],
            harness_modules=[mt_machines, mt_scenarios],
            machine_classes=[ServiceMachine, MigratorMachine],
            bugs_found=11,
        ),
        HarnessDescription(
            name="Fabric user service",
            system_modules=[fabric_model],
            harness_modules=[fabric_harness],
            machine_classes=[
                ClusterManagerMachine,
                ReplicaMachine,
                FabricTestDriver,
                PromotionSafetyMonitor,
                PrimaryLivenessMonitor,
            ],
            bugs_found=2,
        ),
        HarnessDescription(
            name="Example replication system (§2.2)",
            system_modules=[example_server, example_messages],
            harness_modules=[example_machines, example_monitors, example_scenarios],
            machine_classes=[
                ServerMachine,
                StorageNodeMachine,
                ClientMachine,
                TimerMachine,
                ReplicaSafetyMonitor,
                AckLivenessMonitor,
            ],
            bugs_found=2,
        ),
    ]


def generate_table1() -> List[HarnessStatistics]:
    """Compute every Table 1 row."""
    return [description.compute() for description in case_study_descriptions()]


def format_table1(rows: List[HarnessStatistics]) -> str:
    header = (
        f"{'System-under-test':38s} {'sysLoC':>7s} {'#B':>3s} "
        f"{'harnessLoC':>11s} {'#M':>4s} {'#S':>4s} {'#ST':>4s} {'#AH':>4s} "
        f"{'#DE':>4s} {'#IE':>4s}"
    )
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row.name:38s} {row.system_loc:7d} {row.bugs_found:3d} "
            f"{row.harness_loc:11d} {row.num_machines:4d} {row.num_states:4d} "
            f"{row.num_state_transitions:4d} {row.num_action_handlers:4d} "
            f"{row.num_deferred_events:4d} {row.num_ignored_events:4d}"
        )
    return "\n".join(lines)


def main() -> None:  # pragma: no cover - CLI entry
    print("Table 1: cost of environment modeling (this reproduction)")
    print(format_table1(generate_table1()))


if __name__ == "__main__":  # pragma: no cover
    main()
