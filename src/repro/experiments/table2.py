"""Table 2: cost of systematic testing.

For every re-introducible bug, run the random and the priority-based (PCT)
schedulers for a configurable execution budget and report whether the bug was
found (BF?), the time to the first buggy execution, and the number of
nondeterministic choices in that execution (#NDC) — the three quantities of
Table 2 in the paper.  Bugs that the default harness does not reach within the
budget are retried with the directed ("custom test case") harness, exactly as
the paper did; those results are marked accordingly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.core import TestingConfig, run_scenario

from .bug_registry import BugEntry, all_bug_entries


@dataclass
class Table2Cell:
    """Result of hunting one bug with one scheduler."""

    bug_found: bool
    used_directed_test: bool = False
    time_to_bug: Optional[float] = None
    nondeterministic_choices: Optional[int] = None
    iterations: int = 0

    @property
    def marker(self) -> str:
        if not self.bug_found:
            return "not found"
        return "found (custom test)" if self.used_directed_test else "found"


@dataclass
class Table2Row:
    case_study: int
    identifier: str
    random: Table2Cell
    pct: Table2Cell


def _hunt(entry: BugEntry, strategy: str, iterations: int, seed: int) -> Table2Cell:
    config = TestingConfig(
        iterations=iterations, max_steps=entry.max_steps, seed=seed, strategy=strategy
    )
    report = run_scenario(entry.scenario, config)
    if report.bug_found:
        return Table2Cell(
            True,
            False,
            report.time_to_first_bug,
            report.num_nondeterministic_choices,
            report.iterations_executed,
        )
    if entry.directed_scenario is None:
        return Table2Cell(False, iterations=report.iterations_executed)
    directed_report = run_scenario(entry.directed_scenario, config)
    if directed_report.bug_found:
        return Table2Cell(
            True,
            True,
            directed_report.time_to_first_bug,
            directed_report.num_nondeterministic_choices,
            directed_report.iterations_executed,
        )
    return Table2Cell(False, iterations=report.iterations_executed + directed_report.iterations_executed)


def generate_table2(iterations: int = 300, seed: int = 5, bugs: Optional[List[str]] = None) -> List[Table2Row]:
    """Run the Table 2 experiment.

    ``iterations`` is the per-scheduler execution budget (the paper used
    100,000; the default here is CI-scale and can be raised).
    """
    rows = []
    for entry in all_bug_entries():
        if bugs is not None and entry.identifier not in bugs:
            continue
        rows.append(
            Table2Row(
                case_study=entry.case_study,
                identifier=entry.identifier,
                random=_hunt(entry, "random", iterations, seed),
                pct=_hunt(entry, "pct", iterations, seed),
            )
        )
    return rows


def format_table2(rows: List[Table2Row]) -> str:
    header = (
        f"{'CS':>2s} {'Bug identifier':40s} "
        f"{'BF?(rand)':>20s} {'t(s)':>8s} {'#NDC':>7s} "
        f"{'BF?(pct)':>20s} {'t(s)':>8s} {'#NDC':>7s}"
    )
    lines = [header, "-" * len(header)]
    for row in rows:
        def cell(c: Table2Cell) -> str:
            time_str = f"{c.time_to_bug:.2f}" if c.time_to_bug is not None else "-"
            ndc = str(c.nondeterministic_choices) if c.nondeterministic_choices is not None else "-"
            return f"{c.marker:>20s} {time_str:>8s} {ndc:>7s}"

        lines.append(f"{row.case_study:2d} {row.identifier:40s} {cell(row.random)} {cell(row.pct)}")
    return "\n".join(lines)


def main() -> None:  # pragma: no cover - CLI entry
    rows = generate_table2()
    print("Table 2: cost of systematic testing (this reproduction)")
    print(format_table2(rows))


if __name__ == "__main__":  # pragma: no cover
    main()
