"""Experiment generators for the paper's evaluation (Table 1 and Table 2)."""

from .bug_registry import BugEntry, all_bug_entries, bug_entry
from .table1 import case_study_descriptions, format_table1, generate_table1
from .table2 import Table2Cell, Table2Row, format_table2, generate_table2

__all__ = [
    "BugEntry",
    "Table2Cell",
    "Table2Row",
    "all_bug_entries",
    "bug_entry",
    "case_study_descriptions",
    "format_table1",
    "format_table2",
    "generate_table1",
    "generate_table2",
]
