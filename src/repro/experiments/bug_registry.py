"""Registry of every re-introducible bug evaluated in Table 2."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.core import TestRuntime
from repro.migratingtable import ALL_BUGS, MigratingTableBug
from repro.migratingtable.harness import build_directed_test, build_migration_test
from repro.vnext.harness import build_failover_test

TestFactory = Callable[[], Callable[[TestRuntime], None]]


@dataclass(frozen=True)
class BugEntry:
    """One row of Table 2: a re-introducible bug and how to hunt it."""

    case_study: int
    identifier: str
    build_default_test: TestFactory
    build_directed_test: Optional[TestFactory]
    #: Step bound needed by this bug's harness (the liveness bug needs long executions).
    max_steps: int
    kind: str  # "liveness" or "safety"
    notional: bool = False


def _vnext_entry() -> BugEntry:
    return BugEntry(
        case_study=1,
        identifier="ExtentNodeLivenessViolation",
        build_default_test=lambda: build_failover_test(fixed=False),
        build_directed_test=None,
        max_steps=3000,
        kind="liveness",
    )


def _migratingtable_entry(bug: MigratingTableBug) -> BugEntry:
    from repro.migratingtable.bugs import NOTIONAL_BUGS

    return BugEntry(
        case_study=2,
        identifier=bug.value,
        build_default_test=lambda bug=bug: build_migration_test([bug]),
        build_directed_test=lambda bug=bug: build_directed_test(bug),
        max_steps=4000,
        kind="safety",
        notional=bug in NOTIONAL_BUGS,
    )


#: The order in which the bugs appear in Table 2 of the paper.
TABLE2_ORDER = [
    "ExtentNodeLivenessViolation",
    "QueryAtomicFilterShadowing",
    "QueryStreamedLock",
    "QueryStreamedBackUpNewStream",
    "DeleteNoLeaveTombstonesEtag",
    "DeletePrimaryKey",
    "EnsurePartitionSwitchedFromPopulated",
    "TombstoneOutputETag",
    "QueryStreamedFilterShadowing",
    "MigrateSkipPreferOld",
    "MigrateSkipUseNewWithTombstones",
    "InsertBehindMigrator",
]


def all_bug_entries() -> List[BugEntry]:
    """Every Table 2 bug, in the paper's order."""
    entries = {entry.identifier: entry for entry in
               [_vnext_entry()] + [_migratingtable_entry(bug) for bug in ALL_BUGS]}
    return [entries[name] for name in TABLE2_ORDER]


def bug_entry(identifier: str) -> BugEntry:
    for entry in all_bug_entries():
        if entry.identifier == identifier:
            return entry
    raise KeyError(f"unknown bug identifier {identifier!r}")
