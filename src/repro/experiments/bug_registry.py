"""Registry of every re-introducible bug evaluated in Table 2.

Since the scenario-registry redesign, this module no longer wires harnesses
up by hand: every Table 2 bug is a registered scenario (tagged ``table2``)
in :mod:`repro.core.registry`, and :class:`BugEntry` is a thin, backward
compatible view derived from it.  ``all_bug_entries``/``bug_entry`` keep
their original signatures for the experiment generators and benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.core import TestRuntime
from repro.core.registry import TestCase, all_scenarios

TestFactory = Callable[[], Callable[[TestRuntime], None]]


@dataclass(frozen=True)
class BugEntry:
    """One row of Table 2: a re-introducible bug and how to hunt it."""

    case_study: int
    identifier: str
    build_default_test: TestFactory
    build_directed_test: Optional[TestFactory]
    #: Step bound needed by this bug's harness (the liveness bug needs long executions).
    max_steps: int
    kind: str  # "liveness" or "safety"
    notional: bool = False
    #: Name of the backing registered scenario (for portfolio/CLI runs).
    scenario: str = ""
    #: Name of the backing directed scenario, when one exists.
    directed_scenario: Optional[str] = None


#: The order in which the bugs appear in Table 2 of the paper.
TABLE2_ORDER = [
    "ExtentNodeLivenessViolation",
    "QueryAtomicFilterShadowing",
    "QueryStreamedLock",
    "QueryStreamedBackUpNewStream",
    "DeleteNoLeaveTombstonesEtag",
    "DeletePrimaryKey",
    "EnsurePartitionSwitchedFromPopulated",
    "TombstoneOutputETag",
    "QueryStreamedFilterShadowing",
    "MigrateSkipPreferOld",
    "MigrateSkipUseNewWithTombstones",
    "InsertBehindMigrator",
]


def _entry_from_scenarios(default: TestCase, directed: Optional[TestCase]) -> BugEntry:
    return BugEntry(
        case_study=default.case_study or 0,
        identifier=default.expected_bug,
        build_default_test=default.build,
        build_directed_test=directed.build if directed is not None else None,
        max_steps=default.max_steps,
        kind=default.expected_bug_kind or "safety",
        notional="notional" in default.tags,
        scenario=default.name,
        directed_scenario=directed.name if directed is not None else None,
    )


def all_bug_entries() -> List[BugEntry]:
    """Every Table 2 bug, in the paper's order, from the scenario registry."""
    defaults = {case.expected_bug: case for case in all_scenarios(tag="table2")}
    directed = {
        case.expected_bug: case
        for case in all_scenarios(tag="directed")
        if case.expected_bug is not None
    }
    return [
        _entry_from_scenarios(defaults[name], directed.get(name)) for name in TABLE2_ORDER
    ]


def bug_entry(identifier: str) -> BugEntry:
    for entry in all_bug_entries():
        if entry.identifier == identifier:
            return entry
    raise KeyError(f"unknown bug identifier {identifier!r}")
