"""Static independence facts for dependence-aware schedule search.

Two pending dispatches *commute* when executing them in either order reaches
the same program state and enables the same bugs.  This module derives a
conservative per-``(machine class, event type)`` **footprint** from the
extraction layer, split (since table version 2) into the machines a dispatch
can *write* (send to, halt) and the machines it only *reads* (inbox
queries), plus the monitors it can notify and whether it allocates machine
ids.  The ``dpor-lite`` strategy resolves these symbolic footprints against
the live machine table at every scheduling point and treats two dispatches
as independent only when a write of one provably cannot touch anything the
other reads or writes — read/read overlaps commute.

The discipline matches the analyzer's never-guess rule, inverted for safety:
anything unresolvable degrades to **dependent**.  A method that calls into
an object the model does not confine, leaks ``self``, mutates a payload, or
targets a machine we cannot name makes its whole footprint *opaque* — an
opaque dispatch conflicts with everything, so pruning never skips a schedule
it cannot prove redundant.

Footprint item grammar (JSON-safe, see :func:`build_independence_table`):

- ``"self"`` — the dispatching machine itself
- ``{"attr": name}`` — the machine stored the target id on ``self.<name>``;
  resolved via ``getattr`` at choice time (sound because only a machine's own
  dispatches rebind its attributes, and any attribute the dispatch closure
  itself rebinds degrades the footprint to opaque)
- ``{"attr-values": name}`` — the target is drawn from the members of the
  confined container ``self.<name>`` (``self.peers[k]`` / ``self.peers.get(k)``);
  resolved at choice time to *every* machine id the container holds — a sound
  superset, provided no method in the dispatch closure can grow the container
  with non-fresh values mid-dispatch (checked statically, else opaque)
- ``{"class": qualname}`` — a freshly created machine of that class
- ``{"event-field": name}`` *(version 2)* — the target id is carried in the
  dispatched event's payload (``self.send(event.requester, ...)``); resolved
  at choice time by reading the field off the machine's head event.  Sound
  because a sleeping machine's head event cannot change (sends append at the
  back, raised events drain first, disciplines depend only on the sleeper's
  own state), and any other dispatch that could mutate the payload object is
  itself opaque (payload mutation degrades its method to external).  Emitted
  only for sites in handler methods directly registered for the dispatched
  event type — helper methods may receive a different second argument.

Version-1 tables remain buildable (``build_independence_table(program,
version=1)``): they use the coarser historical footprints — the v1 external
discipline (no effect-confined helper objects, no constructor-``self``
relaxation) and no event-field items — which is what the benchmark gate
compares the field-level tables against.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.core.events import Halt, StartEvent

from .model import MachineModel, ProgramModel

#: current table format version, bumped on any incompatible change
TABLE_VERSION = 2

#: the PR 7 format: merged ``sends``/``queries`` item lists, v1 external
#: discipline; still produced on request for precision comparisons
LEGACY_TABLE_VERSION = 1


def type_key(cls: type) -> str:
    """Stable JSON key for a class: ``module.QualName``."""
    return f"{cls.__module__}.{cls.__qualname__}"


def _external_methods(model: MachineModel, version: int) -> Set[str]:
    """The external-method set under the requested table semantics."""
    if version >= 2:
        return model.method_external
    return model.method_external | model.method_external_legacy


# ---------------------------------------------------------------------------
# closure computation
# ---------------------------------------------------------------------------
def _seed_methods(model: MachineModel, event_type: type) -> Set[str]:
    """Handler methods the dispatch of ``event_type`` enters directly (the
    methods whose event parameter *is* the dispatched event)."""
    seeds: Set[str] = set()
    for (_state, registered), info in model.spec.handlers.items():
        if registered is event_type or (
            isinstance(registered, type) and issubclass(event_type, registered)
        ):
            seeds.add(info.method_name)
    if event_type is StartEvent and "on_start" in model.method_refs:
        seeds.add("on_start")
    return seeds


def _dispatch_methods(model: MachineModel, event_type: type) -> Optional[Set[str]]:
    """Every own method a dispatch of ``event_type`` can reach, or ``None``
    when the closure escapes the analyzable method set."""
    seeds = _seed_methods(model, event_type)
    # a handler may transition, so entry/exit actions are always reachable
    seeds.update(model.spec.entry_actions.values())
    seeds.update(model.spec.exit_actions.values())
    if event_type is Halt or any(m in model.method_halts for m in _closure(model, seeds)):
        if "on_halt" in model.method_refs:
            seeds.add("on_halt")
    closure = _closure(model, seeds)
    for name in closure:
        if name not in model.method_refs:
            return None  # calls something we never extracted
    return closure


def _closure(model: MachineModel, seeds: Iterable[str]) -> Set[str]:
    seen: Set[str] = set()
    frontier: List[str] = list(seeds)
    while frontier:
        name = frontier.pop()
        if name in seen:
            continue
        seen.add(name)
        frontier.extend(model.method_calls.get(name, ()))
    return seen


# ---------------------------------------------------------------------------
# footprints
# ---------------------------------------------------------------------------
def _monitor_is_transparent(
    program: ProgramModel, monitor: type, event_type: Optional[type], version: int
) -> bool:
    """Monitor handlers run inline during ``notify_monitor``; their effects
    stay monitor-local only when the notified handler closure is effect-clean."""
    model = program.model_for(monitor)
    if model is None or model.partial or event_type is None:
        return False
    methods = _dispatch_methods(model, event_type)
    if methods is None:
        return False
    return not (methods & _external_methods(model, version))


def _item_of(
    expr: Tuple[str, str],
    rebound: Set[str],
    container_grown: Set[str],
    allow_event_field: bool,
):
    """Map a symbolic target expression to a footprint item (None = opaque)."""
    kind, payload = expr
    if kind == "self":
        return "self"
    if kind == "attr":
        if payload in rebound:
            return None  # choice-time getattr could observe a stale binding
        return {"attr": payload}
    if kind == "attr_item":
        if payload in rebound or payload in container_grown:
            # the dispatch itself can rebind the container or insert members
            # the choice-time snapshot never saw
            return None
        return {"attr-values": payload}
    if kind == "class":
        return {"class": payload}
    if kind == "event_field" and allow_event_field:
        return {"event-field": payload}
    return None


def footprint_for(
    program: ProgramModel,
    model: MachineModel,
    event_type: type,
    version: int = TABLE_VERSION,
) -> Optional[dict]:
    """Concrete footprint for one ``(machine, event-type)`` dispatch pair;
    ``None`` means opaque (dependent with everything)."""
    if model.partial:
        return None
    methods = _dispatch_methods(model, event_type)
    if methods is None:
        return None
    if methods & _external_methods(model, version):
        return None
    seeds = _seed_methods(model, event_type) if version >= 2 else frozenset()
    rebound: Set[str] = set()
    container_grown: Set[str] = set()
    for name in methods:
        rebound.update(model.method_attr_stores.get(name, ()))
        container_grown.update(model.method_container_stores.get(name, ()))

    writes: List[object] = []
    reads: List[object] = []
    monitors: Set[str] = set()
    creates = False
    for site in model.sends:
        if site.method not in methods:
            continue
        item = _item_of(
            site.target_expr, rebound, container_grown, site.method in seeds
        )
        if item is None:
            return None
        if item not in writes:
            writes.append(item)
    for query in model.queries:
        if query.method not in methods:
            continue
        item = _item_of(
            query.target_expr, rebound, container_grown, query.method in seeds
        )
        if item is None:
            return None
        if item not in reads:
            reads.append(item)
    for site in model.notifies:
        if site.method not in methods:
            continue
        if site.monitor is None or not _monitor_is_transparent(
            program, site.monitor, site.event_type, version
        ):
            return None
        monitors.add(type_key(site.monitor))
    for site in model.creates:
        if site.method in methods:
            creates = True
    if version < 2:
        return {
            "creates": creates,
            "monitors": sorted(monitors),
            "sends": _sorted_items(writes),
            "queries": _sorted_items(reads),
        }
    return {
        "creates": creates,
        "monitors": sorted(monitors),
        "writes": _sorted_items(writes),
        "reads": _sorted_items(reads),
    }


def _sorted_items(items: List[object]) -> List[object]:
    def key(item: object) -> Tuple[str, str]:
        if item == "self":
            return ("", "")
        assert isinstance(item, dict)
        (kind, value), = item.items()
        return (kind, value)

    return sorted(items, key=key)


# ---------------------------------------------------------------------------
# the table
# ---------------------------------------------------------------------------
def build_independence_table(
    program: ProgramModel, version: int = TABLE_VERSION
) -> dict:
    """Whole-program independence table, JSON-safe and byte-stable.

    ``table["machines"][machine_key]["events"][event_key]`` is either a
    concrete footprint dict or ``{"opaque": true}``.  Machines and events
    absent from the table are opaque by construction — the consumer side
    (:class:`repro.core.strategy.dpor_lite.DporLiteStrategy`) treats every
    lookup miss as dependent-with-everything.

    ``version`` selects the footprint semantics: :data:`TABLE_VERSION`
    (field-level read/write sets) or :data:`LEGACY_TABLE_VERSION` (the PR 7
    format, kept for precision comparisons).
    """
    if version not in (LEGACY_TABLE_VERSION, TABLE_VERSION):
        raise ValueError(f"unsupported independence table version: {version!r}")
    machines: Dict[str, dict] = {}
    for model in sorted(program, key=lambda m: (m.module, m.line, m.name)):
        if model.kind != "machine":
            continue
        events: Dict[str, dict] = {}
        event_types = {
            registered
            for (_state, registered) in model.spec.handlers
            if isinstance(registered, type)
        }
        event_types.add(Halt)
        event_types.add(StartEvent)
        for event_type in event_types:
            footprint = footprint_for(program, model, event_type, version)
            events[type_key(event_type)] = (
                {"opaque": True} if footprint is None else footprint
            )
        machines[type_key(model.cls)] = {"events": dict(sorted(events.items()))}
    return {"version": version, "machines": machines}


def independence_for_classes(
    classes: Iterable[type], version: int = TABLE_VERSION
) -> dict:
    """Convenience: build the table straight from root machine classes."""
    from .extract import build_program

    return build_independence_table(build_program(classes), version)


__all__ = [
    "LEGACY_TABLE_VERSION",
    "TABLE_VERSION",
    "build_independence_table",
    "footprint_for",
    "independence_for_classes",
    "type_key",
]
