"""On-disk incremental cache for extraction + dataflow products.

``analyze`` and ``run --prune`` re-derive the whole program model — parse
every machine's source, walk every handler AST, build footprints — on every
invocation, even when nothing changed.  This module caches the *products*
(the JSON-safe analysis report and independence table) keyed on a blake2b
digest of every loaded source module under the analyzed classes' top-level
packages, so an unchanged tree costs one digest pass instead of a re-parse.

Key discipline: the key covers the cache format version, the independence
table version, the analyzed class identities, any caller-provided extras
(scenario names, rule-set markers), and a ``(module name, source digest)``
pair for every candidate module.  The analyzer's own sources live under the
same top-level package (``repro``) as the machines it analyzes here, so
editing the analyzer invalidates the cache automatically — no stale results
after a rule change.  Classes defined inside function bodies (``<locals>``)
have no stable identity across runs and disable caching for that call.

Storage is one JSON file per key under ``.repro-cache/`` (override with the
``REPRO_ANALYSIS_CACHE`` environment variable), written atomically so a
crashed run never leaves a torn entry.
"""

from __future__ import annotations

import hashlib
import json
import os
import sys
import tempfile
from typing import Dict, Iterable, Optional, Sequence, Tuple

#: bumped whenever the cached payload shape changes
CACHE_VERSION = 1

#: environment variable overriding the cache directory
CACHE_ENV = "REPRO_ANALYSIS_CACHE"

#: default cache directory, relative to the working directory
DEFAULT_CACHE_DIR = ".repro-cache"


def _digest_file(path: str) -> Optional[str]:
    try:
        with open(path, "rb") as handle:
            return hashlib.blake2b(handle.read(), digest_size=16).hexdigest()
    except OSError:
        return None


class AnalysisCache:
    """A content-keyed store for analysis products.

    ``enabled=False`` keeps the object usable (key computation, hit/miss
    counters stay at zero) while every lookup misses and every store is a
    no-op — callers thread one object through unconditionally.
    """

    def __init__(self, directory: Optional[str] = None, enabled: bool = True) -> None:
        if directory is None:
            directory = os.environ.get(CACHE_ENV) or DEFAULT_CACHE_DIR
        self.directory = directory
        self.enabled = enabled
        self.hits = 0
        self.misses = 0
        self._digests: Dict[str, Optional[str]] = {}

    # ------------------------------------------------------------------
    # keys
    # ------------------------------------------------------------------
    def _module_digests(
        self, roots: Iterable[str]
    ) -> Sequence[Tuple[str, str]]:
        root_set = set(roots)
        pairs = []
        for name in sorted(sys.modules):
            if name.split(".")[0] not in root_set:
                continue
            module = sys.modules.get(name)
            path = getattr(module, "__file__", None)
            if not path or not path.endswith(".py"):
                continue
            if path not in self._digests:
                self._digests[path] = _digest_file(path)
            digest = self._digests[path]
            if digest is not None:
                pairs.append((name, digest))
        return pairs

    def key_for(
        self, classes: Iterable[type], extra: Iterable[str] = ()
    ) -> Optional[str]:
        """Digest identifying one analysis call; ``None`` when uncacheable.

        Covers every loaded ``.py`` module under the classes' top-level
        packages — a superset of what extraction actually parses, which only
        costs spurious invalidations, never stale hits.
        """
        from .independence import TABLE_VERSION, type_key

        names = []
        roots = set()
        for cls in sorted(set(classes), key=type_key):
            if "<locals>" in cls.__qualname__:
                return None  # no stable cross-run identity
            names.append(type_key(cls))
            roots.add(cls.__module__.split(".")[0])
        payload = json.dumps(
            {
                "cache_version": CACHE_VERSION,
                "table_version": TABLE_VERSION,
                "classes": names,
                "extra": sorted(extra),
                "modules": self._module_digests(roots),
            },
            sort_keys=True,
        )
        return hashlib.blake2b(payload.encode("utf-8"), digest_size=16).hexdigest()

    # ------------------------------------------------------------------
    # storage
    # ------------------------------------------------------------------
    def _path_for(self, key: str) -> str:
        return os.path.join(self.directory, f"{key}.json")

    def get(self, key: Optional[str]) -> Optional[dict]:
        """Cached payload for ``key``, or ``None`` (counted as a miss)."""
        if not self.enabled or key is None:
            return None
        try:
            with open(self._path_for(key), "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, ValueError):
            self.misses += 1
            return None
        self.hits += 1
        return payload

    def put(self, key: Optional[str], payload: dict) -> None:
        """Atomically store ``payload`` under ``key`` (no-op when disabled)."""
        if not self.enabled or key is None:
            return
        try:
            os.makedirs(self.directory, exist_ok=True)
            fd, temp_path = tempfile.mkstemp(
                dir=self.directory, prefix=".tmp-", suffix=".json"
            )
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as handle:
                    json.dump(payload, handle, sort_keys=True)
                os.replace(temp_path, self._path_for(key))
            except BaseException:
                try:
                    os.unlink(temp_path)
                except OSError:
                    pass
                raise
        except OSError:
            pass  # a read-only tree degrades to cacheless operation

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def describe(self) -> str:
        return (
            f"analysis cache: {self.hits} hit(s), {self.misses} miss(es) "
            f"({self.hit_rate():.0%} hit rate) in {self.directory}"
        )


__all__ = [
    "CACHE_ENV",
    "CACHE_VERSION",
    "DEFAULT_CACHE_DIR",
    "AnalysisCache",
]
