"""Whole-program communication graph (the analyzer's cross-machine view).

Nodes are machine, monitor and event *types*; edges are the statically
extracted interactions between them — ``create`` / ``send`` / ``raise`` /
``notify`` — each anchored to ``file:line`` and annotated with the sending
state set and the payload fields the site populates.  Unresolvable endpoints
stay in the graph as ``None`` (rendered ``"?"``): the graph shows what the
analyzer could *not* see just as much as what it could, since every unknown
edge is a place where the independence relation degrades to dependent.

Everything serializes deterministically: nodes and edges are emitted in a
fixed sort order and :meth:`CommGraph.to_json` output is byte-stable across
runs and processes (paths are repo-relativized, no ids or hashes).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.core.events import Event

from .model import MachineModel, ProgramModel
from .report import display_path

#: edge kinds, in legend order
CREATE = "create"
SEND = "send"
RAISE = "raise"
NOTIFY = "notify"


def _type_key(cls: Optional[type]) -> Optional[str]:
    if cls is None:
        return None
    return f"{cls.__module__}.{cls.__qualname__}"


@dataclass(frozen=True)
class GraphNode:
    """One machine/monitor/event type."""

    key: str  # module.QualName
    kind: str  # "machine" | "monitor" | "event"
    name: str  # class name, for display
    file: str = ""
    line: int = 0

    def to_dict(self) -> dict:
        payload = {"key": self.key, "kind": self.kind, "name": self.name}
        if self.file:
            payload["anchor"] = f"{display_path(self.file)}:{self.line}"
        return payload


@dataclass(frozen=True)
class GraphEdge:
    """One interaction site.

    ``dst is None`` means the target did not statically resolve; ``event`` is
    the event-type key (``None`` for unresolvable event expressions and for
    ``create`` edges, which carry no event).
    """

    kind: str
    src: str
    dst: Optional[str]
    event: Optional[str]
    states: Tuple[str, ...]
    file: str
    line: int
    payload_fields: Tuple[str, ...] = ()

    def sort_key(self):
        return (
            self.src,
            self.kind,
            self.dst or "",
            self.event or "",
            self.file,
            self.line,
        )

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "src": self.src,
            "dst": self.dst,
            "event": self.event,
            "states": list(self.states),
            "anchor": f"{display_path(self.file)}:{self.line}",
            "payload_fields": list(self.payload_fields),
        }


@dataclass
class CommGraph:
    """The assembled whole-program graph."""

    nodes: List[GraphNode] = field(default_factory=list)
    edges: List[GraphEdge] = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "nodes": [node.to_dict() for node in self.nodes],
            "edges": [edge.to_dict() for edge in self.edges],
        }

    def to_json(self) -> str:
        import json

        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"

    def to_dot(self) -> str:
        """Graphviz rendering: machines are boxes, monitors are diamonds,
        events ride on edge labels, unresolved endpoints collapse to "?"."""
        shapes = {"machine": "box", "monitor": "diamond", "event": "ellipse"}
        styles = {CREATE: "dashed", SEND: "solid", RAISE: "solid", NOTIFY: "dotted"}
        lines = ["digraph commgraph {", "  rankdir=LR;", "  node [fontsize=10];"]
        for node in self.nodes:
            if node.kind == "event":
                continue  # events appear as edge labels, not nodes
            lines.append(
                f'  "{node.key}" [label="{node.name}", shape={shapes[node.kind]}];'
            )
        if any(edge.dst is None for edge in self.edges):
            lines.append('  "?" [label="?", shape=circle];')
        for edge in self.edges:
            dst = edge.dst if edge.dst is not None else "?"
            event = edge.event.rsplit(".", 1)[-1] if edge.event else "?"
            label = edge.kind if edge.kind == CREATE else f"{edge.kind} {event}"
            lines.append(
                f'  "{edge.src}" -> "{dst}" '
                f'[label="{label}", style={styles[edge.kind]}];'
            )
        lines.append("}")
        return "\n".join(lines) + "\n"


def _event_types_of(model: MachineModel) -> Set[type]:
    """Every event type a model declares or references."""
    events: Set[type] = set()
    for (_state, registered) in model.spec.handlers:
        if isinstance(registered, type):
            events.add(registered)
    for site in model.sends:
        if site.event_type is not None:
            events.add(site.event_type)
    for site in model.raises:
        if site.event_type is not None:
            events.add(site.event_type)
    for site in model.notifies:
        if site.event_type is not None:
            events.add(site.event_type)
    events.update(model.receive_types)
    return {cls for cls in events if cls is not Event}


def build_comm_graph(program: ProgramModel) -> CommGraph:
    """Assemble the deterministic whole-program communication graph."""
    nodes: Dict[str, GraphNode] = {}
    edges: List[GraphEdge] = []

    for model in program:
        key = _type_key(model.cls)
        nodes[key] = GraphNode(
            key=key, kind=model.kind, name=model.name, file=model.file, line=model.line
        )
        for event_type in _event_types_of(model):
            event_key = _type_key(event_type)
            if event_key not in nodes:
                nodes[event_key] = GraphNode(
                    key=event_key, kind="event", name=event_type.__name__
                )

    for model in program:
        src = _type_key(model.cls)
        for create in model.creates:
            edges.append(
                GraphEdge(
                    kind=CREATE,
                    src=src,
                    dst=_type_key(create.machine),
                    event=None,
                    states=(),
                    file=create.ref.file,
                    line=create.ref.line,
                )
            )
        for send in model.sends:
            edges.append(
                GraphEdge(
                    kind=SEND,
                    src=src,
                    dst=_type_key(send.target),
                    event=_type_key(send.event_type),
                    states=tuple(sorted(send.states)),
                    file=send.ref.file,
                    line=send.ref.line,
                    payload_fields=send.payload_fields,
                )
            )
        for raise_site in model.raises:
            edges.append(
                GraphEdge(
                    kind=RAISE,
                    src=src,
                    dst=src,  # raise_event is handler-local delivery
                    event=_type_key(raise_site.event_type),
                    states=tuple(sorted(raise_site.states)),
                    file=raise_site.ref.file,
                    line=raise_site.ref.line,
                    payload_fields=raise_site.payload_fields,
                )
            )
        for notify in model.notifies:
            edges.append(
                GraphEdge(
                    kind=NOTIFY,
                    src=src,
                    dst=_type_key(notify.monitor),
                    event=_type_key(notify.event_type),
                    states=tuple(sorted(notify.states)),
                    file=notify.ref.file,
                    line=notify.ref.line,
                    payload_fields=notify.payload_fields,
                )
            )

    graph = CommGraph(
        nodes=sorted(nodes.values(), key=lambda n: (n.kind, n.key)),
        edges=sorted(edges, key=GraphEdge.sort_key),
    )
    return graph


__all__ = [
    "CREATE",
    "SEND",
    "RAISE",
    "NOTIFY",
    "CommGraph",
    "GraphEdge",
    "GraphNode",
    "build_comm_graph",
]
