"""Whole-program static analysis for machine programs.

The analyzer models each machine/monitor class without running a single
schedule (states, transitions, sends with resolved event/target types,
defer/ignore disciplines) and checks the model against a fixed rule catalog —
per-machine rules (``unhandled-event``, ``unreachable-state``,
``dead-handler``, ``pop-underflow``, ``stuck-deferral``, ``hot-forever``,
``payload-alias``) plus whole-program graph rules (``dead-event``,
``unreachable-machine``, ``monitor-never-notified``,
``unbounded-send-cycle``) and pragma hygiene (``unused-ignore``).

The same extraction layer feeds two machine-readable artifacts:

* the **communication graph** (:func:`build_comm_graph` /
  ``python -m repro analyze --graph [--dot|--json]``) — machine, monitor and
  event types with every create/send/raise/notify site as an anchored edge;
* the **independence table** (:func:`build_independence_table`) — the static
  per-``(machine, event-type)`` footprints the ``dpor-lite`` strategy uses to
  prune the schedule search (``python -m repro run --prune``).

Run the analyzer via ``python -m repro analyze`` or programmatically::

    from repro.analysis import analyze_scenarios
    from repro.core.registry import all_scenarios, load_builtin_scenarios

    load_builtin_scenarios()
    report = analyze_scenarios(all_scenarios())
    print(report.render())

Diagnostics are suppressed inline with ``# repro: ignore[rule-id]``.
"""

from .checkers import (
    RULES,
    check_unused_ignores,
    is_handleable,
    reachable_states,
    run_checkers,
)
from .commgraph import CommGraph, GraphEdge, GraphNode, build_comm_graph
from .extract import (
    build_program,
    clear_model_cache,
    discover_classes,
    discover_event_types,
    extract_machine_model,
)
from .independence import (
    TABLE_VERSION,
    build_independence_table,
    footprint_for,
    independence_for_classes,
    type_key,
)
from .model import MachineModel, ProgramModel, QuerySite, SourceRef
from .report import ERROR, WARNING, AnalysisReport, Diagnostic
from .runner import (
    analyze_classes,
    analyze_scenarios,
    graph_for_scenarios,
    independence_for_scenarios,
)

__all__ = [
    "AnalysisReport",
    "CommGraph",
    "Diagnostic",
    "ERROR",
    "GraphEdge",
    "GraphNode",
    "MachineModel",
    "ProgramModel",
    "QuerySite",
    "RULES",
    "SourceRef",
    "TABLE_VERSION",
    "WARNING",
    "analyze_classes",
    "analyze_scenarios",
    "build_comm_graph",
    "build_independence_table",
    "build_program",
    "check_unused_ignores",
    "clear_model_cache",
    "discover_classes",
    "discover_event_types",
    "extract_machine_model",
    "footprint_for",
    "graph_for_scenarios",
    "independence_for_classes",
    "independence_for_scenarios",
    "is_handleable",
    "reachable_states",
    "run_checkers",
    "type_key",
]
