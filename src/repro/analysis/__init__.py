"""Whole-program static analysis for machine programs.

The analyzer models each machine/monitor class without running a single
schedule (states, transitions, sends with resolved event/target types,
defer/ignore disciplines) and checks the model against a fixed rule catalog:
``unhandled-event``, ``unreachable-state``, ``dead-handler``,
``pop-underflow``, ``stuck-deferral``, ``hot-forever`` and ``payload-alias``.

Run it via ``python -m repro analyze`` or programmatically::

    from repro.analysis import analyze_scenarios
    from repro.core.registry import all_scenarios, load_builtin_scenarios

    load_builtin_scenarios()
    report = analyze_scenarios(all_scenarios())
    print(report.render())

Diagnostics are suppressed inline with ``# repro: ignore[rule-id]``.
"""

from .checkers import RULES, is_handleable, reachable_states, run_checkers
from .extract import (
    build_program,
    clear_model_cache,
    discover_classes,
    extract_machine_model,
)
from .model import MachineModel, ProgramModel, SourceRef
from .report import ERROR, WARNING, AnalysisReport, Diagnostic
from .runner import analyze_classes, analyze_scenarios

__all__ = [
    "AnalysisReport",
    "Diagnostic",
    "ERROR",
    "WARNING",
    "MachineModel",
    "ProgramModel",
    "RULES",
    "SourceRef",
    "analyze_classes",
    "analyze_scenarios",
    "build_program",
    "clear_model_cache",
    "discover_classes",
    "extract_machine_model",
    "is_handleable",
    "reachable_states",
    "run_checkers",
]
