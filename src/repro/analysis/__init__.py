"""Whole-program static analysis for machine programs.

The analyzer models each machine/monitor class without running a single
schedule (states, transitions, sends with resolved event/target types,
defer/ignore disciplines) and checks the model against a fixed rule catalog —
per-machine rules (``unhandled-event``, ``unreachable-state``,
``dead-handler``, ``pop-underflow``, ``stuck-deferral``, ``hot-forever``,
``payload-alias``, ``nondeterministic-handler``) plus whole-program graph
and dataflow rules (``dead-event``, ``unreachable-machine``,
``monitor-never-notified``, ``unbounded-send-cycle``,
``payload-missing-field``, ``payload-dead-field``) and pragma hygiene
(``unused-ignore``).

The same extraction layer feeds three machine-readable artifacts:

* the **communication graph** (:func:`build_comm_graph` /
  ``python -m repro analyze --graph [--dot|--json]``) — machine, monitor and
  event types with every create/send/raise/notify site as an anchored edge;
* the **payload dataflow** (:func:`build_dataflow`) — field-sensitive
  def-use facts joining what each producing site constructs with what each
  receiving handler reads;
* the **independence table** (:func:`build_independence_table`) — the static
  per-``(machine, event-type)`` read/write footprints the ``dpor-lite``
  strategy uses to prune the schedule search (``python -m repro run
  --prune``).

Repeated runs over an unchanged tree are served from an on-disk incremental
cache (:class:`AnalysisCache`, ``.repro-cache/``) keyed on per-module source
digests; ``--no-cache`` bypasses it.

Run the analyzer via ``python -m repro analyze`` or programmatically::

    from repro.analysis import analyze_scenarios
    from repro.core.registry import all_scenarios, load_builtin_scenarios

    load_builtin_scenarios()
    report = analyze_scenarios(all_scenarios())
    print(report.render())

Diagnostics are suppressed inline with ``# repro: ignore[rule-id]``.
"""

from .cache import CACHE_VERSION, AnalysisCache
from .checkers import (
    RULES,
    check_unused_ignores,
    is_handleable,
    reachable_states,
    run_checkers,
)
from .commgraph import CommGraph, GraphEdge, GraphNode, build_comm_graph
from .dataflow import (
    HandlerReads,
    NondetFinding,
    ProducerSite,
    ProgramDataflow,
    build_dataflow,
    clear_dataflow_cache,
    event_ctor_fields,
    event_has_own_methods,
)
from .extract import (
    build_program,
    clear_model_cache,
    discover_classes,
    discover_event_types,
    extract_machine_model,
)
from .independence import (
    LEGACY_TABLE_VERSION,
    TABLE_VERSION,
    build_independence_table,
    footprint_for,
    independence_for_classes,
    type_key,
)
from .model import MachineModel, ProgramModel, QuerySite, SourceRef
from .report import ERROR, WARNING, AnalysisReport, Diagnostic
from .runner import (
    analyze_classes,
    analyze_scenarios,
    graph_for_scenarios,
    independence_for_scenarios,
)

__all__ = [
    "AnalysisCache",
    "AnalysisReport",
    "CACHE_VERSION",
    "CommGraph",
    "Diagnostic",
    "ERROR",
    "GraphEdge",
    "GraphNode",
    "HandlerReads",
    "LEGACY_TABLE_VERSION",
    "MachineModel",
    "NondetFinding",
    "ProducerSite",
    "ProgramDataflow",
    "ProgramModel",
    "QuerySite",
    "RULES",
    "SourceRef",
    "TABLE_VERSION",
    "WARNING",
    "analyze_classes",
    "analyze_scenarios",
    "build_comm_graph",
    "build_dataflow",
    "build_independence_table",
    "build_program",
    "check_unused_ignores",
    "clear_dataflow_cache",
    "clear_model_cache",
    "discover_classes",
    "discover_event_types",
    "event_ctor_fields",
    "event_has_own_methods",
    "extract_machine_model",
    "footprint_for",
    "graph_for_scenarios",
    "independence_for_classes",
    "independence_for_scenarios",
    "is_handleable",
    "reachable_states",
    "run_checkers",
    "type_key",
]
