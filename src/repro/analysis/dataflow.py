"""Layer 2b: field-sensitive payload dataflow over the extracted program.

The communication graph (PR 7) answers *which event types flow where*; this
module refines it to *which payload fields* flow.  For every producing site
(``send``/``raise_event``/``notify_monitor``) the extractor records the
constructor fields the site populates plus any post-construction attribute
writes; for every receiving handler it records the fields read off the event
parameter.  Joining the two gives def-use facts per event type:

* a handler reading a field **no** deliverable producer ever sets is a
  guaranteed ``AttributeError`` on delivery (``payload-missing-field``);
* a field **every** producer sets but no handler or monitor ever reads is
  dead payload (``payload-dead-field``).

Conservatism discipline (same as :mod:`repro.analysis.model`): everything
degrades to *opaque*.  A handler whose event parameter escapes reads
"any field"; an event type whose ``__init__`` uses ``setattr``/``**kwargs``
or leaks ``self`` provides "any field"; a program with unresolvable
producers or external methods is not ``resolved`` and the whole-program
payload rules stay silent.
"""

from __future__ import annotations

import ast
import types
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.core.events import Event

from .extract import _function_ast
from .model import MachineModel, ProgramModel, SourceRef

#: (must_set, may_set) per event type; ``None`` on a side means "unknown"
_CtorFields = Tuple[Optional[FrozenSet[str]], Optional[FrozenSet[str]]]

_CTOR_FIELD_CACHE: Dict[type, _CtorFields] = {}


def clear_dataflow_cache() -> None:
    """Drop memoized per-event-type field summaries (test hygiene)."""
    _CTOR_FIELD_CACHE.clear()


@dataclass(frozen=True)
class HandlerReads:
    """Field reads of one registered handler for one event type."""

    owner: type
    event_type: type
    method: str
    #: fields read off the event parameter; ``None`` = parameter escapes,
    #: any field may be read
    fields: Optional[FrozenSet[str]]
    ref: SourceRef


@dataclass(frozen=True)
class ProducerSite:
    """One site that introduces an event instance into the program."""

    owner: type
    event_type: type
    method: str
    #: constructor fields the site populates (empty when the event
    #: expression is not a constructor call, e.g. forwarding)
    fields: FrozenSet[str]
    #: fields attached after construction (``evt.extra = ...``)
    extra_fields: FrozenSet[str]
    #: the site forwards the handler's own received event
    forwards: bool
    #: the machine/monitor class the site delivers to — the send's resolved
    #: target, the site's own class for ``raise_event`` (self-delivery), the
    #: monitor class for ``notify_monitor``; ``None`` when unresolvable
    target: Optional[type]
    ref: SourceRef


@dataclass(frozen=True)
class NondetFinding:
    """One uncontrolled-nondeterminism site (determinism lint)."""

    owner: type
    method: str
    reason: str
    ref: SourceRef


@dataclass
class ProgramDataflow:
    """Joined def-use payload facts for one extracted program."""

    handler_reads: List[HandlerReads] = field(default_factory=list)
    producers: Dict[type, List[ProducerSite]] = field(default_factory=dict)
    nondet: List[NondetFinding] = field(default_factory=list)
    #: every model is complete and effect-visible and every producing site's
    #: event type resolved; when False the producer map under-approximates
    #: and the whole-program payload rules must stay silent
    resolved: bool = True

    def fields_provided(self, event_type: type) -> Optional[FrozenSet[str]]:
        """May-set of fields an instance of ``event_type`` can carry.

        The union of the constructor's may-set with every producing site's
        post-construction writes; ``None`` when the constructor is opaque.
        """
        _must, may = event_ctor_fields(event_type)
        if may is None:
            return None
        extras: set = set()
        for site in self.producers.get(event_type, ()):
            extras.update(site.extra_fields)
        return frozenset(may | extras)

    def fields_required(self, event_type: type) -> Optional[FrozenSet[str]]:
        """Union of fields any registered handler reads off ``event_type``
        (including supertype-registered handlers); ``None`` when any of
        those handlers is read-opaque."""
        reads: set = set()
        for entry in self.handler_reads:
            if not issubclass(event_type, entry.event_type):
                continue
            if entry.fields is None:
                return None
            reads.update(entry.fields)
        return frozenset(reads)


def _mro_up_to_event(cls: type) -> List[type]:
    return [
        klass
        for klass in cls.__mro__
        if issubclass(klass, Event) and klass is not Event
    ]


def _class_attr_fields(cls: type) -> FrozenSet[str]:
    """Plain data attributes declared on the class body (always readable)."""
    names = set()
    for klass in _mro_up_to_event(cls):
        for name, value in vars(klass).items():
            if name.startswith("__"):
                continue
            if callable(value) or isinstance(value, (property, staticmethod, classmethod)):
                continue
            names.add(name)
    return frozenset(names)


def event_has_own_methods(cls: type) -> bool:
    """The event type defines behavior beyond ``__init__`` — its fields may
    be consumed internally, so the dead-field rule skips it."""
    for klass in _mro_up_to_event(cls):
        for name, value in vars(klass).items():
            if name == "__init__":
                continue
            if isinstance(value, (types.FunctionType, property, staticmethod, classmethod)):
                return True
    return False


def _own_init(cls: type) -> Optional[object]:
    for klass in cls.__mro__:
        if klass in (Event, object):
            break
        candidate = vars(klass).get("__init__")
        if candidate is not None:
            return candidate
    return None


def _init_fields(cls: type, init: types.FunctionType) -> _CtorFields:
    info = _function_ast(init)
    if info is None:
        return (None, None)
    fdef, _fname, _offset = info
    if fdef.args.vararg is not None or fdef.args.kwarg is not None:
        return (None, None)  # field names flow through *args/**kwargs
    # opacity scan: dynamic attribute machinery or an escaping ``self``
    parents: Dict[ast.AST, ast.AST] = {}
    for node in ast.walk(fdef):
        for child in ast.iter_child_nodes(node):
            parents[child] = node
    for node in ast.walk(fdef):
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            if node.func.id in ("setattr", "delattr", "vars"):
                return (None, None)
        if isinstance(node, ast.Attribute) and node.attr == "__dict__":
            return (None, None)
        if isinstance(node, ast.Name) and node.id == "self":
            parent = parents.get(node)
            if not (isinstance(parent, ast.Attribute) and parent.value is node):
                return (None, None)  # bare self escapes: anything may be set
            grand = parents.get(parent)
            if isinstance(grand, ast.Call) and grand.func is parent:
                return (None, None)  # self.m(...): the method may set fields
    has_return = any(isinstance(node, ast.Return) for node in ast.walk(fdef))
    must: set = set()
    may: set = set()

    def _self_attr_targets(stmt: ast.stmt) -> List[str]:
        if isinstance(stmt, ast.Assign):
            targets = stmt.targets
        elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
            targets = [stmt.target]
        else:
            return []
        names = []
        for target in targets:
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                names.append(target.attr)
        return names

    for stmt in fdef.body:
        top_level = _self_attr_targets(stmt)
        may.update(top_level)
        if not has_return:
            must.update(top_level)
        for inner in ast.walk(stmt):
            if isinstance(inner, ast.stmt) and inner is not stmt:
                may.update(_self_attr_targets(inner))
        if (
            isinstance(stmt, ast.Expr)
            and isinstance(stmt.value, ast.Call)
            and isinstance(stmt.value.func, ast.Attribute)
            and stmt.value.func.attr == "__init__"
            and isinstance(stmt.value.func.value, ast.Call)
            and isinstance(stmt.value.func.value.func, ast.Name)
            and stmt.value.func.value.func.id == "super"
        ):
            base = cls.__mro__[1] if len(cls.__mro__) > 1 else object
            if base not in (Event, object):
                base_must, base_may = event_ctor_fields(base)
                if base_may is None:
                    return (None, None)
                may.update(base_may)
                if base_must is not None and not has_return:
                    must.update(base_must)
    return (frozenset(must), frozenset(may))


def event_ctor_fields(cls: type) -> _CtorFields:
    """``(must_set, may_set)`` of payload fields ``cls(...)`` instances carry.

    ``must_set`` — fields every constructed instance is guaranteed to have
    (unconditional top-level ``self.f = ...``, dataclass/namedtuple fields,
    class-body data attributes).  ``may_set`` — every field an instance can
    possibly have.  ``None`` on a side means that side is unknowable
    (dynamic ``setattr``, ``**kwargs``, escaping ``self``, missing source).
    """
    cached = _CTOR_FIELD_CACHE.get(cls)
    if cached is not None:
        return cached
    import dataclasses

    result: _CtorFields
    class_fields = _class_attr_fields(cls)
    if dataclasses.is_dataclass(cls):
        names = frozenset(f.name for f in dataclasses.fields(cls)) | class_fields
        result = (names, names)
    elif issubclass(cls, tuple):
        # the namedtuple ``_fields`` tuple can be shadowed through the MRO
        # (``Event._fields`` is a method), so find the genuine declaration
        nt_fields = next(
            (
                vars(klass)["_fields"]
                for klass in cls.__mro__
                if isinstance(vars(klass).get("_fields"), tuple)
            ),
            None,
        )
        if nt_fields is None:
            result = (None, None)  # a tuple payload we cannot enumerate
        else:
            names = frozenset(nt_fields) | class_fields
            result = (names, names)
    else:
        init = _own_init(cls)
        if init is None:
            result = (class_fields, class_fields)
        elif not isinstance(init, types.FunctionType):
            result = (None, None)
        else:
            must, may = _init_fields(cls, init)
            if must is None or may is None:
                result = (None, None)
            else:
                result = (must | class_fields, may | class_fields)
    _CTOR_FIELD_CACHE[cls] = result
    return result


def _handler_reads_of(model: MachineModel) -> List[HandlerReads]:
    entries: Dict[Tuple[type, str], HandlerReads] = {}
    for (_state, registered), info in model.spec.handlers.items():
        if not isinstance(registered, type):
            continue
        method = info.method_name
        fields = model.handler_field_reads.get(method)
        ref = model.method_refs.get(method, SourceRef(model.file, model.line))
        entries[(registered, method)] = HandlerReads(
            owner=model.cls,
            event_type=registered,
            method=method,
            fields=fields,
            ref=ref,
        )
    return [entries[key] for key in sorted(entries, key=lambda k: (k[0].__qualname__, k[1]))]


def build_dataflow(program: ProgramModel) -> ProgramDataflow:
    """Join producer-side and consumer-side payload facts for ``program``."""
    flow = ProgramDataflow()
    for model in sorted(program, key=lambda m: (m.module, m.name)):
        if model.partial or model.method_external:
            flow.resolved = False
        flow.handler_reads.extend(_handler_reads_of(model))
        for site in (*model.sends, *model.raises, *model.notifies):
            if site.event_type is None:
                flow.resolved = False
                continue
            if hasattr(site, "monitor"):
                target: Optional[type] = site.monitor
            elif hasattr(site, "target"):
                target = site.target
            else:  # raise_event delivers to the raising machine itself
                target = model.cls
            flow.producers.setdefault(site.event_type, []).append(
                ProducerSite(
                    owner=model.cls,
                    event_type=site.event_type,
                    method=site.method,
                    fields=frozenset(site.payload_fields),
                    extra_fields=frozenset(site.payload_extra),
                    forwards=bool(getattr(site, "forwards_param", False)),
                    target=target,
                    ref=site.ref,
                )
            )
        for nondet in model.nondet_sites:
            flow.nondet.append(
                NondetFinding(
                    owner=model.cls,
                    method=nondet.method,
                    reason=nondet.reason,
                    ref=nondet.ref,
                )
            )
    return flow


__all__ = [
    "HandlerReads",
    "NondetFinding",
    "ProducerSite",
    "ProgramDataflow",
    "build_dataflow",
    "clear_dataflow_cache",
    "event_ctor_fields",
    "event_has_own_methods",
]
