"""Data model for the static analyzer (Layer 1 output).

The extractor (:mod:`repro.analysis.extract`) summarizes each machine or
monitor class into a :class:`MachineModel`: its states, the transition edges
its handlers can take, every ``send``/``raise_event``/``notify_monitor`` site
with the event type and target machine type *where statically resolvable*,
and the per-state defer/ignore disciplines already carried by the
:class:`~repro.core.declarations.StateMachineSpec`.

Anything the extractor cannot resolve degrades to ``None`` ("unknown") —
checkers must treat unknown as "could be anything" and stay silent, so the
analyzer never reports a false positive on dynamically-computed event types,
targets or state references.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.core.declarations import StateMachineSpec

#: Transition kinds recorded on :class:`TransitionEdge`.
GOTO = "goto"
PUSH = "push"


@dataclass(frozen=True)
class SourceRef:
    """A ``file:line`` anchor for one extracted fact (and its diagnostic)."""

    file: str
    line: int

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.file}:{self.line}"


@dataclass
class SendSite:
    """One ``self.send(target, event)`` call in a handler body."""

    event_type: Optional[type]
    target: Optional[type]  # target machine class; None when unresolvable
    states: Tuple[str, ...]  # states the enclosing method can run in
    method: str
    ref: SourceRef
    event_expr: str
    #: the event expression is the handler's received-event parameter
    #: (event forwarding: the sender re-sends an event it was delivered)
    forwards_param: bool = False
    #: the send provably executes on *every* run of its method: it sits under
    #: no ``if``/loop/``try`` and the method contains no early ``return`` or
    #: ``raise`` (a must-fact, used by the unbounded-send-cycle rule)
    unconditional: bool = False
    #: event-constructor field names the site populates (empty when the
    #: event expression is not a constructor call)
    payload_fields: Tuple[str, ...] = ()
    #: field names the method may attach to the event *after* construction
    #: (``evt = E(...); evt.extra = ...``), when the event argument is a
    #: local name; a flow-insensitive may-set
    payload_extra: Tuple[str, ...] = ()
    #: syntactic shape of the target expression, for the independence table:
    #: ``("self", "")`` | ``("attr", name)`` | ``("attr_item", name)`` |
    #: ``("class", qualified-name)`` | ``("event_field", name)`` (the target
    #: is read off the received event's payload) | ``("unknown", "")``
    target_expr: Tuple[str, str] = ("unknown", "")


@dataclass
class RaiseSite:
    """One ``self.raise_event(event)`` call (handler-only delivery)."""

    event_type: Optional[type]
    states: Tuple[str, ...]
    method: str
    ref: SourceRef
    event_expr: str
    unconditional: bool = False
    payload_fields: Tuple[str, ...] = ()
    payload_extra: Tuple[str, ...] = ()


@dataclass
class NotifySite:
    """One ``self.notify_monitor(MonitorCls, event)`` call."""

    monitor: Optional[type]
    event_type: Optional[type]
    states: Tuple[str, ...]
    method: str
    ref: SourceRef
    payload_fields: Tuple[str, ...] = ()
    payload_extra: Tuple[str, ...] = ()


@dataclass
class QuerySite:
    """One ``self.count_pending(target, ...)`` (or the runtime's
    ``count_pending_events``/``has_pending_event``) call: a cross-machine
    *read* of another machine's inbox."""

    target_expr: Tuple[str, str]  # same shape grammar as SendSite.target_expr
    method: str
    ref: SourceRef


@dataclass
class TransitionEdge:
    """A ``goto``/``push_state`` edge; ``dst is None`` means unresolvable."""

    src: str  # state name or ANY_STATE for helpers/wildcard handlers
    dst: Optional[str]
    kind: str  # GOTO or PUSH
    method: str
    ref: SourceRef


@dataclass
class PopSite:
    """One ``self.pop_state()`` call."""

    states: Tuple[str, ...]
    method: str
    ref: SourceRef


@dataclass
class CreateSite:
    """One ``self.create(MachineCls, ...)`` call."""

    machine: Optional[type]
    method: str
    ref: SourceRef


@dataclass
class NondetSite:
    """A source of uncontrolled nondeterminism inside a handler body.

    Test-mode handlers must be deterministic functions of the delivered
    event and machine state: wall-clock reads, OS entropy, the global
    ``random`` module, and unordered-set iteration with framework effects
    all break replay, shrinking and fingerprint stability.  These are
    must-facts (the call/loop is syntactically present), so the lint fires
    without whole-program gating.
    """

    reason: str
    method: str
    ref: SourceRef


#: alias keys are ``("name", local_var)`` or ``("attr", self_attribute)``
AliasKey = Tuple[str, str]


@dataclass
class AliasSend:
    """A send/raise whose event argument is a reusable variable."""

    key: AliasKey
    event_type: Optional[type]
    forwards_param: bool
    method: str
    ref: SourceRef
    #: the send sits inside a loop whose body never rebinds the variable,
    #: so every iteration delivers the *same* event instance
    loop_reuses_instance: bool = False


@dataclass
class AliasMutation:
    """An in-place mutation (``x.f = ...``, ``x[k] = ...``, ``x.f.append``)."""

    key: AliasKey
    method: str
    ref: SourceRef


@dataclass
class AliasRetention:
    """The sender stores the variable on ``self`` (``self.Y = x``)."""

    key: AliasKey
    method: str
    ref: SourceRef


@dataclass
class MachineModel:
    """Static summary of one machine or monitor class."""

    cls: type
    kind: str  # "machine" | "monitor"
    spec: StateMachineSpec
    module: str
    file: str
    line: int
    initial: str
    #: last source line of the class body (0 when the source is unavailable);
    #: bounds the span the unused-ignore pragma scan walks for this class
    end_line: int = 0
    ignore_unhandled: bool = False
    sends: List[SendSite] = field(default_factory=list)
    raises: List[RaiseSite] = field(default_factory=list)
    notifies: List[NotifySite] = field(default_factory=list)
    edges: List[TransitionEdge] = field(default_factory=list)
    pops: List[PopSite] = field(default_factory=list)
    creates: List[CreateSite] = field(default_factory=list)
    #: event types matched by ``yield Receive(...)`` anywhere in the class
    receive_types: Set[type] = field(default_factory=set)
    #: a ``Receive(...)`` argument did not resolve — any event may be received
    receives_unknown: bool = False
    #: monitor hot states (DSL ``hot=True`` plus the legacy class attribute)
    hot_states: Set[str] = field(default_factory=set)
    #: method name -> states it is bound to (handlers + entry/exit actions);
    #: unbound helpers map to {ANY_STATE}
    method_states: Dict[str, Set[str]] = field(default_factory=dict)
    #: method name -> source anchor (for dead-handler diagnostics)
    method_refs: Dict[str, SourceRef] = field(default_factory=dict)
    #: methods containing a ``self.halt()`` call (a halt always terminates
    #: the dispatch, so it breaks unbounded-send cycles)
    method_halts: Set[str] = field(default_factory=set)
    #: own methods each method calls (``self.helper(...)``), for the
    #: independence footprint's call-graph closure
    method_calls: Dict[str, Set[str]] = field(default_factory=dict)
    #: cross-machine inbox queries (count_pending / has_pending_event)
    queries: List[QuerySite] = field(default_factory=list)
    #: methods whose body we could not prove free of uncontrolled effects
    #: (calls into non-framework objects, payload mutation, leaking ``self``);
    #: dispatches reaching such a method degrade to dependent-with-everything
    method_external: Set[str] = field(default_factory=set)
    #: methods the *v1* external discipline tainted but the current one
    #: proves confined (calls on effect-confined helper objects, ``self``
    #: passed to a plain/confined constructor).  The v1 independence-table
    #: builder treats ``method_external | method_external_legacy`` as
    #: external so version-1 tables keep their historical footprints.
    method_external_legacy: Set[str] = field(default_factory=set)
    #: method name -> payload field names read off the received-event
    #: parameter (``event.f`` loads); ``None`` when the parameter escapes
    #: (rebound, stored, passed to a call) so any field may be read.
    #: Methods without an event parameter map to an empty frozenset.
    handler_field_reads: Dict[str, Optional[FrozenSet[str]]] = field(default_factory=dict)
    #: uncontrolled-nondeterminism sites (determinism lint)
    nondet_sites: List[NondetSite] = field(default_factory=list)
    #: method name -> ``self.X`` attributes it (re)assigns; an ``("attr", X)``
    #: footprint item is only resolvable at choice time when no method in the
    #: dispatch closure reassigns ``X``
    method_attr_stores: Dict[str, Set[str]] = field(default_factory=dict)
    #: method name -> confined container attributes whose *membership* the
    #: method may extend with values not provably fresh-created; an
    #: ``("attr_item", X)`` footprint item (send target drawn from the
    #: members of ``self.X``) is only resolvable at choice time when no
    #: method in the dispatch closure can grow ``X`` mid-dispatch
    method_container_stores: Dict[str, Set[str]] = field(default_factory=dict)
    #: Machine/Monitor classes referenced anywhere in this class's methods
    referenced: Set[type] = field(default_factory=set)
    #: ``self.X`` -> machine class, when every assignment to ``X`` is a
    #: ``self.create(Cls, ...)`` call resolving to the same class
    attr_targets: Dict[str, type] = field(default_factory=dict)
    #: ``self.X`` -> event type, when every assignment is ``EventCls(...)``
    attr_event_types: Dict[str, type] = field(default_factory=dict)
    #: raw facts for the payload-alias checker
    alias_sends: List[AliasSend] = field(default_factory=list)
    alias_mutations: List[AliasMutation] = field(default_factory=list)
    alias_retentions: List[AliasRetention] = field(default_factory=list)
    #: some method source was unavailable or unparseable; the model is an
    #: under-approximation and reachability-style checks must be skipped
    partial: bool = False

    @property
    def name(self) -> str:
        return self.cls.__name__

    @property
    def all_states(self) -> Set[str]:
        return set(self.spec.states) | {self.initial}

    @property
    def has_unknown_transitions(self) -> bool:
        return self.partial or any(edge.dst is None for edge in self.edges)

    def pretty_method(self, method: str) -> str:
        """Human form of a (possibly mangled, spec-hoisted) handler name."""
        for state in self.method_states.get(method, ()):
            prefix = f"_state_{state}_"
            if method.startswith(prefix):
                return f"{state}.{method[len(prefix):]}"
        return method

    def state_ref(self, state: str) -> SourceRef:
        """Anchor for ``state``: its DSL class when one exists, else the
        machine class itself."""
        import inspect

        state_cls = self.spec.state_classes.get(state)
        if state_cls is not None:
            try:
                _, lineno = inspect.getsourcelines(state_cls)
                return SourceRef(self.file, lineno)
            except (OSError, TypeError):
                pass
        return SourceRef(self.file, self.line)


class ProgramModel:
    """The set of extracted machine models for one analysis run."""

    def __init__(self) -> None:
        self.machines: Dict[type, MachineModel] = {}

    def add(self, model: MachineModel) -> None:
        self.machines[model.cls] = model

    def model_for(self, cls: type) -> Optional[MachineModel]:
        return self.machines.get(cls)

    def __iter__(self):
        return iter(self.machines.values())

    def __len__(self) -> int:
        return len(self.machines)
