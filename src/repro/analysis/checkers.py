"""Layer 2: the analyzer's rules.

Every rule has a stable ID (usable in ``# repro: ignore[rule-id]``) and a
fixed severity.  Rules only fire on facts the extractor resolved; whenever a
model contains unknowns (dynamic state/event/target expressions, unavailable
source) the affected rule degrades to silence rather than guess.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.core.declarations import ANY_STATE, DEFER, is_control_event
from repro.core.events import Event
from repro.core.monitors import Monitor

from .model import GOTO, PUSH, MachineModel, ProgramModel
from .report import ERROR, WARNING, Diagnostic

#: rule id -> (severity, one-line description); the analyzer's rule catalog.
RULES: Dict[str, Tuple[str, str]] = {
    "unhandled-event": (
        ERROR,
        "an event is sent/raised to a machine type that no reachable state "
        "handles, defers or ignores — a guaranteed UnhandledEventError",
    ),
    "unreachable-state": (
        WARNING,
        "a declared state has no goto/push path from the initial state",
    ),
    "dead-handler": (
        WARNING,
        "a handler or entry/exit action is bound only to unreachable states",
    ),
    "pop-underflow": (
        ERROR,
        "a pop_state call can execute at the bottom of the state stack",
    ),
    "stuck-deferral": (
        WARNING,
        "an event is deferred in every reachable state; once queued it can "
        "never be dequeued (deferred-backlog deadlock)",
    ),
    "hot-forever": (
        WARNING,
        "a hot monitor state has no transition path to any cold state, so "
        "the liveness check can never pass",
    ),
    "payload-alias": (
        WARNING,
        "a mutable event payload is shared between sender and receiver "
        "(re-sent, mutated after send, or retained by the sender)",
    ),
}


def _diag(rule: str, model: MachineModel, ref, message: str) -> Diagnostic:
    severity, _ = RULES[rule]
    return Diagnostic(
        rule=rule,
        severity=severity,
        message=message,
        owner=model.name,
        module=model.module,
        file=ref.file,
        line=ref.line,
    )


# ---------------------------------------------------------------------------
# reachability
# ---------------------------------------------------------------------------
def reachable_states(model: MachineModel) -> Set[str]:
    """States reachable from the initial state via goto/push edges.

    Degrades to *all* states when any transition target is unknown (or some
    method source was unavailable), which silences reachability-based rules
    instead of risking a false positive.
    """
    if model.has_unknown_transitions:
        return set(model.all_states)
    reached = {model.initial}
    changed = True
    while changed:
        changed = False
        for edge in model.edges:
            if edge.dst is None or edge.dst in reached:
                continue
            if edge.src == ANY_STATE or edge.src in reached:
                reached.add(edge.dst)
                changed = True
    return reached


def _closure_from(model: MachineModel, start: str, kinds: Tuple[str, ...]) -> Set[str]:
    reached = {start}
    changed = True
    while changed:
        changed = False
        for edge in model.edges:
            if edge.kind not in kinds or edge.dst is None or edge.dst in reached:
                continue
            if edge.src == ANY_STATE or edge.src in reached:
                reached.add(edge.dst)
                changed = True
    return reached


# ---------------------------------------------------------------------------
# handleability (shared with the golden-trace cross-validation test)
# ---------------------------------------------------------------------------
def is_handleable(model: MachineModel, event_type: type) -> bool:
    """True when sending ``event_type`` to ``model`` cannot be proven fatal.

    Mirrors the runtime's dispatch rules: control events are always
    dequeuable; ``ignore_unhandled_events`` machines drop anything; a
    ``Receive(...)`` clause can consume matching events; otherwise some
    reachable state must handle, defer or ignore the event.
    """
    if is_control_event(event_type):
        return True
    if model.ignore_unhandled:
        return True
    if model.receives_unknown:
        return True
    if any(issubclass(event_type, received) for received in model.receive_types):
        return True
    spec = model.spec
    return any(
        spec.context_for((state,)).resolve(event_type) is not None
        for state in reachable_states(model)
    )


# ---------------------------------------------------------------------------
# rules
# ---------------------------------------------------------------------------
def _check_unhandled_events(program: ProgramModel) -> List[Diagnostic]:
    from .extract import extract_machine_model

    diagnostics = []
    for model in program:
        for site in model.sends:
            event_type, target = site.event_type, site.target
            if event_type is None or target is None or is_control_event(event_type):
                continue
            if issubclass(target, Monitor):
                continue
            target_model = program.model_for(target) or extract_machine_model(target)
            if not is_handleable(target_model, event_type):
                diagnostics.append(
                    _diag(
                        "unhandled-event",
                        model,
                        site.ref,
                        f"{model.name}.{model.pretty_method(site.method)} sends {event_type.__name__} "
                        f"to {target.__name__}, but no reachable state of "
                        f"{target.__name__} handles, defers or ignores it",
                    )
                )
        for site in model.raises:
            event_type = site.event_type
            if event_type is None or is_control_event(event_type):
                continue
            if model.ignore_unhandled or model.receives_unknown:
                continue
            if any(issubclass(event_type, received) for received in model.receive_types):
                continue
            spec = model.spec
            if not any(
                spec.context_for((state,)).handler_only(event_type) is not None
                for state in reachable_states(model)
            ):
                diagnostics.append(
                    _diag(
                        "unhandled-event",
                        model,
                        site.ref,
                        f"{model.name}.{model.pretty_method(site.method)} raises {event_type.__name__}, "
                        f"but no reachable state has a handler for it (raised "
                        f"events bypass defer/ignore disciplines)",
                    )
                )
        for site in model.notifies:
            monitor, event_type = site.monitor, site.event_type
            if monitor is None or event_type is None or is_control_event(event_type):
                continue
            monitor_model = program.model_for(monitor) or extract_machine_model(monitor)
            spec = monitor_model.spec
            if not any(
                spec.context_for((state,)).resolve(event_type) is not None
                for state in reachable_states(monitor_model)
            ):
                diagnostics.append(
                    _diag(
                        "unhandled-event",
                        model,
                        site.ref,
                        f"{model.name}.{model.pretty_method(site.method)} notifies monitor "
                        f"{monitor.__name__} with {event_type.__name__}, which no "
                        f"reachable monitor state handles or ignores",
                    )
                )
    return diagnostics


def _check_reachability(model: MachineModel) -> List[Diagnostic]:
    if model.has_unknown_transitions:
        return []
    reached = reachable_states(model)
    unreachable = model.all_states - reached
    diagnostics = []
    for state in sorted(unreachable):
        diagnostics.append(
            _diag(
                "unreachable-state",
                model,
                model.state_ref(state),
                f"state {state!r} of {model.name} is unreachable from the "
                f"initial state {model.initial!r}",
            )
        )
    for method, states in sorted(model.method_states.items()):
        if not states or ANY_STATE in states or not states <= unreachable:
            continue
        ref = model.method_refs.get(method)
        if ref is None:
            continue
        bound = ", ".join(sorted(states))
        diagnostics.append(
            _diag(
                "dead-handler",
                model,
                ref,
                f"{model.name}.{model.pretty_method(method)} is bound only to unreachable "
                f"state(s) {bound}",
            )
        )
    return diagnostics


def _check_pop_underflow(model: MachineModel) -> List[Diagnostic]:
    if not model.pops:
        return []
    pushes = [edge for edge in model.edges if edge.kind == PUSH]
    if not pushes:
        return [
            _diag(
                "pop-underflow",
                model,
                pop.ref,
                f"{model.name}.{model.pretty_method(pop.method)} calls pop_state but {model.name} "
                f"never pushes a state — the pop always underflows",
            )
            for pop in model.pops
        ]
    if model.has_unknown_transitions or any(edge.dst is None for edge in pushes):
        return []
    push_targets = {edge.dst for edge in pushes}
    # states the machine can occupy at stack depth 1: the initial state plus
    # its goto-closure (gotos replace the top, pushes deepen the stack)
    bottom = _closure_from(model, model.initial, (GOTO,))
    diagnostics = []
    for pop in model.pops:
        culprit = next(
            (
                state
                for state in sorted(pop.states)
                if state != ANY_STATE
                and state in bottom
                and state not in push_targets
            ),
            None,
        )
        if culprit is not None:
            diagnostics.append(
                _diag(
                    "pop-underflow",
                    model,
                    pop.ref,
                    f"{model.name}.{model.pretty_method(pop.method)} pops in state {culprit!r}, "
                    f"which is reachable at the bottom of the state stack and "
                    f"is never a push_state target",
                )
            )
    return diagnostics


def _check_stuck_deferral(model: MachineModel) -> List[Diagnostic]:
    if model.kind != "machine" or not model.spec.deferred:
        return []
    reached = sorted(reachable_states(model))
    declared: Dict[type, str] = {}
    for state in sorted(model.spec.deferred):
        for event_type in model.spec.deferred[state]:
            declared.setdefault(event_type, state)
    spec = model.spec
    diagnostics = []
    for event_type, state in sorted(declared.items(), key=lambda kv: kv[0].__name__):
        if all(
            spec.context_for((candidate,)).resolve(event_type) is DEFER
            for candidate in reached
        ):
            diagnostics.append(
                _diag(
                    "stuck-deferral",
                    model,
                    model.state_ref(state),
                    f"{model.name} defers {event_type.__name__} in every "
                    f"reachable state; a queued {event_type.__name__} can "
                    f"never be dequeued (deferred-backlog deadlock)",
                )
            )
    return diagnostics


def _check_hot_forever(model: MachineModel) -> List[Diagnostic]:
    if model.kind != "monitor" or not model.hot_states:
        return []
    if model.has_unknown_transitions:
        return []
    reached = reachable_states(model)
    cold = model.all_states - model.hot_states
    diagnostics = []
    for hot in sorted(model.hot_states & reached):
        from_hot = _closure_from(model, hot, (GOTO, PUSH))
        if not (from_hot & cold):
            diagnostics.append(
                _diag(
                    "hot-forever",
                    model,
                    model.state_ref(hot),
                    f"hot state {hot!r} of monitor {model.name} has no "
                    f"transition path to any cold state; once hot, the "
                    f"liveness check can never pass",
                )
            )
    return diagnostics


def _payloadful(event_type: Optional[type]) -> bool:
    """Whether instances of ``event_type`` carry (shareable) payload fields.

    Events with no ``__init__`` of their own (e.g. pure signals like
    ``Halt`` or the timer's private loop event) hold no mutable payload, so
    aliasing one instance across deliveries is harmless.
    """
    return (
        event_type is not None
        and event_type.__init__ is not object.__init__
        and event_type.__init__ is not Event.__init__
    )


def _check_payload_alias(model: MachineModel) -> List[Diagnostic]:
    diagnostics = []
    sends_by_key: Dict[Tuple[str, Tuple[str, str]], list] = {}
    for send in model.alias_sends:
        sends_by_key.setdefault((send.method, send.key), []).append(send)
    for (method, key), sends in sorted(sends_by_key.items()):
        sends = sorted(sends, key=lambda s: s.ref.line)
        label = key[1] if key[0] == "name" else f"self.{key[1]}"
        event_type = next((s.event_type for s in sends if s.event_type), None)
        if len(sends) > 1 and _payloadful(event_type):
            diagnostics.append(
                _diag(
                    "payload-alias",
                    model,
                    sends[1].ref,
                    f"{model.name}.{model.pretty_method(method)} sends the event instance {label} "
                    f"({event_type.__name__}) more than once; all receivers "
                    f"share one mutable payload",
                )
            )
        looped = next((s for s in sends if s.loop_reuses_instance), None)
        if looped is not None and _payloadful(event_type):
            diagnostics.append(
                _diag(
                    "payload-alias",
                    model,
                    looped.ref,
                    f"{model.name}.{model.pretty_method(method)} sends the event instance {label} "
                    f"({event_type.__name__}) from inside a loop without "
                    f"rebinding it; every iteration delivers the same mutable "
                    f"payload",
                )
            )
        first_send_line = sends[0].ref.line
        for mutation in model.alias_mutations:
            if mutation.method == method and mutation.key == key and (
                mutation.ref.line > first_send_line
            ):
                diagnostics.append(
                    _diag(
                        "payload-alias",
                        model,
                        mutation.ref,
                        f"{model.name}.{model.pretty_method(method)} mutates {label} after sending "
                        f"it; under concurrent delivery the receiver races "
                        f"with this write",
                    )
                )
        if _payloadful(event_type):
            for retention in model.alias_retentions:
                if retention.method == method and retention.key == key:
                    diagnostics.append(
                        _diag(
                            "payload-alias",
                            model,
                            retention.ref,
                            f"{model.name}.{model.pretty_method(method)} stores {label} "
                            f"({event_type.__name__}) on self while also "
                            f"sending it; sender and receiver share one "
                            f"mutable payload",
                        )
                    )
    return diagnostics


def run_checkers(program: ProgramModel) -> List[Diagnostic]:
    """Run every rule over ``program`` and return the raw diagnostics."""
    diagnostics: List[Diagnostic] = []
    for model in sorted(
        program, key=lambda m: (m.module, m.line, m.name)
    ):
        diagnostics.extend(_check_reachability(model))
        diagnostics.extend(_check_pop_underflow(model))
        diagnostics.extend(_check_stuck_deferral(model))
        diagnostics.extend(_check_hot_forever(model))
        diagnostics.extend(_check_payload_alias(model))
    diagnostics.extend(_check_unhandled_events(program))
    return diagnostics
