"""Layer 2: the analyzer's rules.

Every rule has a stable ID (usable in ``# repro: ignore[rule-id]``) and a
fixed severity.  Rules only fire on facts the extractor resolved; whenever a
model contains unknowns (dynamic state/event/target expressions, unavailable
source) the affected rule degrades to silence rather than guess.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.core.declarations import ANY_STATE, DEFER, is_control_event
from repro.core.events import Event
from repro.core.monitors import Monitor

from .dataflow import build_dataflow, event_ctor_fields, event_has_own_methods
from .model import GOTO, PUSH, MachineModel, ProgramModel, SourceRef
from .report import ERROR, WARNING, Diagnostic

#: rule id -> (severity, one-line description); the analyzer's rule catalog.
RULES: Dict[str, Tuple[str, str]] = {
    "unhandled-event": (
        ERROR,
        "an event is sent/raised to a machine type that no reachable state "
        "handles, defers or ignores — a guaranteed UnhandledEventError",
    ),
    "unreachable-state": (
        WARNING,
        "a declared state has no goto/push path from the initial state",
    ),
    "dead-handler": (
        WARNING,
        "a handler or entry/exit action is bound only to unreachable states",
    ),
    "pop-underflow": (
        ERROR,
        "a pop_state call can execute at the bottom of the state stack",
    ),
    "stuck-deferral": (
        WARNING,
        "an event is deferred in every reachable state; once queued it can "
        "never be dequeued (deferred-backlog deadlock)",
    ),
    "hot-forever": (
        WARNING,
        "a hot monitor state has no transition path to any cold state, so "
        "the liveness check can never pass",
    ),
    "payload-alias": (
        WARNING,
        "a mutable event payload is shared between sender and receiver "
        "(re-sent, mutated after send, or retained by the sender)",
    ),
    "dead-event": (
        WARNING,
        "a machine handles an event type that nothing in the analyzed "
        "program ever sends, raises or notifies",
    ),
    "unreachable-machine": (
        WARNING,
        "a machine type is referenced but never created by the reachable "
        "program (and is not an analysis root)",
    ),
    "monitor-never-notified": (
        WARNING,
        "a monitor is part of the program but no reachable machine ever "
        "notifies it — its invariants are never exercised",
    ),
    "unbounded-send-cycle": (
        WARNING,
        "handlers form an unconditional send/raise cycle with no state "
        "transition or halt on the path — the static signature of queue "
        "blow-up",
    ),
    "unused-ignore": (
        WARNING,
        "a '# repro: ignore[rule-id]' pragma suppresses nothing at its "
        "anchor lines (wildcard '[*]' pragmas are exempt)",
    ),
    "payload-missing-field": (
        ERROR,
        "a handler reads an event payload field that no reachable producer "
        "of that event ever sets — a guaranteed AttributeError on dispatch",
    ),
    "payload-dead-field": (
        WARNING,
        "an event payload field is populated by its producers but never "
        "read by any handler or monitor in the program",
    ),
    "nondeterministic-handler": (
        WARNING,
        "a handler body draws on uncontrolled nondeterminism (wall clock, "
        "OS entropy, the global random module, or unordered-set iteration "
        "with framework effects), which silently breaks replay, shrinking "
        "and state-fingerprint stability",
    ),
}


def _diag(rule: str, model: MachineModel, ref, message: str) -> Diagnostic:
    severity, _ = RULES[rule]
    return Diagnostic(
        rule=rule,
        severity=severity,
        message=message,
        owner=model.name,
        module=model.module,
        file=ref.file,
        line=ref.line,
    )


# ---------------------------------------------------------------------------
# reachability
# ---------------------------------------------------------------------------
def reachable_states(model: MachineModel) -> Set[str]:
    """States reachable from the initial state via goto/push edges.

    Degrades to *all* states when any transition target is unknown (or some
    method source was unavailable), which silences reachability-based rules
    instead of risking a false positive.
    """
    if model.has_unknown_transitions:
        return set(model.all_states)
    reached = {model.initial}
    changed = True
    while changed:
        changed = False
        for edge in model.edges:
            if edge.dst is None or edge.dst in reached:
                continue
            if edge.src == ANY_STATE or edge.src in reached:
                reached.add(edge.dst)
                changed = True
    return reached


def _closure_from(model: MachineModel, start: str, kinds: Tuple[str, ...]) -> Set[str]:
    reached = {start}
    changed = True
    while changed:
        changed = False
        for edge in model.edges:
            if edge.kind not in kinds or edge.dst is None or edge.dst in reached:
                continue
            if edge.src == ANY_STATE or edge.src in reached:
                reached.add(edge.dst)
                changed = True
    return reached


# ---------------------------------------------------------------------------
# handleability (shared with the golden-trace cross-validation test)
# ---------------------------------------------------------------------------
def is_handleable(model: MachineModel, event_type: type) -> bool:
    """True when sending ``event_type`` to ``model`` cannot be proven fatal.

    Mirrors the runtime's dispatch rules: control events are always
    dequeuable; ``ignore_unhandled_events`` machines drop anything; a
    ``Receive(...)`` clause can consume matching events; otherwise some
    reachable state must handle, defer or ignore the event.
    """
    if is_control_event(event_type):
        return True
    if model.ignore_unhandled:
        return True
    if model.receives_unknown:
        return True
    if any(issubclass(event_type, received) for received in model.receive_types):
        return True
    spec = model.spec
    return any(
        spec.context_for((state,)).resolve(event_type) is not None
        for state in reachable_states(model)
    )


# ---------------------------------------------------------------------------
# rules
# ---------------------------------------------------------------------------
def _check_unhandled_events(program: ProgramModel) -> List[Diagnostic]:
    from .extract import extract_machine_model

    diagnostics = []
    for model in program:
        for site in model.sends:
            event_type, target = site.event_type, site.target
            if event_type is None or target is None or is_control_event(event_type):
                continue
            if issubclass(target, Monitor):
                continue
            target_model = program.model_for(target) or extract_machine_model(target)
            if not is_handleable(target_model, event_type):
                diagnostics.append(
                    _diag(
                        "unhandled-event",
                        model,
                        site.ref,
                        f"{model.name}.{model.pretty_method(site.method)} sends {event_type.__name__} "
                        f"to {target.__name__}, but no reachable state of "
                        f"{target.__name__} handles, defers or ignores it",
                    )
                )
        for site in model.raises:
            event_type = site.event_type
            if event_type is None or is_control_event(event_type):
                continue
            if model.ignore_unhandled or model.receives_unknown:
                continue
            if any(issubclass(event_type, received) for received in model.receive_types):
                continue
            spec = model.spec
            if not any(
                spec.context_for((state,)).handler_only(event_type) is not None
                for state in reachable_states(model)
            ):
                diagnostics.append(
                    _diag(
                        "unhandled-event",
                        model,
                        site.ref,
                        f"{model.name}.{model.pretty_method(site.method)} raises {event_type.__name__}, "
                        f"but no reachable state has a handler for it (raised "
                        f"events bypass defer/ignore disciplines)",
                    )
                )
        for site in model.notifies:
            monitor, event_type = site.monitor, site.event_type
            if monitor is None or event_type is None or is_control_event(event_type):
                continue
            monitor_model = program.model_for(monitor) or extract_machine_model(monitor)
            spec = monitor_model.spec
            if not any(
                spec.context_for((state,)).resolve(event_type) is not None
                for state in reachable_states(monitor_model)
            ):
                diagnostics.append(
                    _diag(
                        "unhandled-event",
                        model,
                        site.ref,
                        f"{model.name}.{model.pretty_method(site.method)} notifies monitor "
                        f"{monitor.__name__} with {event_type.__name__}, which no "
                        f"reachable monitor state handles or ignores",
                    )
                )
    return diagnostics


def _check_reachability(model: MachineModel) -> List[Diagnostic]:
    if model.has_unknown_transitions:
        return []
    reached = reachable_states(model)
    unreachable = model.all_states - reached
    diagnostics = []
    for state in sorted(unreachable):
        diagnostics.append(
            _diag(
                "unreachable-state",
                model,
                model.state_ref(state),
                f"state {state!r} of {model.name} is unreachable from the "
                f"initial state {model.initial!r}",
            )
        )
    for method, states in sorted(model.method_states.items()):
        if not states or ANY_STATE in states or not states <= unreachable:
            continue
        ref = model.method_refs.get(method)
        if ref is None:
            continue
        bound = ", ".join(sorted(states))
        diagnostics.append(
            _diag(
                "dead-handler",
                model,
                ref,
                f"{model.name}.{model.pretty_method(method)} is bound only to unreachable "
                f"state(s) {bound}",
            )
        )
    return diagnostics


def _check_pop_underflow(model: MachineModel) -> List[Diagnostic]:
    if not model.pops:
        return []
    pushes = [edge for edge in model.edges if edge.kind == PUSH]
    if not pushes:
        return [
            _diag(
                "pop-underflow",
                model,
                pop.ref,
                f"{model.name}.{model.pretty_method(pop.method)} calls pop_state but {model.name} "
                f"never pushes a state — the pop always underflows",
            )
            for pop in model.pops
        ]
    if model.has_unknown_transitions or any(edge.dst is None for edge in pushes):
        return []
    push_targets = {edge.dst for edge in pushes}
    # states the machine can occupy at stack depth 1: the initial state plus
    # its goto-closure (gotos replace the top, pushes deepen the stack)
    bottom = _closure_from(model, model.initial, (GOTO,))
    diagnostics = []
    for pop in model.pops:
        culprit = next(
            (
                state
                for state in sorted(pop.states)
                if state != ANY_STATE
                and state in bottom
                and state not in push_targets
            ),
            None,
        )
        if culprit is not None:
            diagnostics.append(
                _diag(
                    "pop-underflow",
                    model,
                    pop.ref,
                    f"{model.name}.{model.pretty_method(pop.method)} pops in state {culprit!r}, "
                    f"which is reachable at the bottom of the state stack and "
                    f"is never a push_state target",
                )
            )
    return diagnostics


def _check_stuck_deferral(model: MachineModel) -> List[Diagnostic]:
    if model.kind != "machine" or not model.spec.deferred:
        return []
    reached = sorted(reachable_states(model))
    declared: Dict[type, str] = {}
    for state in sorted(model.spec.deferred):
        for event_type in model.spec.deferred[state]:
            declared.setdefault(event_type, state)
    spec = model.spec
    diagnostics = []
    for event_type, state in sorted(declared.items(), key=lambda kv: kv[0].__name__):
        if all(
            spec.context_for((candidate,)).resolve(event_type) is DEFER
            for candidate in reached
        ):
            diagnostics.append(
                _diag(
                    "stuck-deferral",
                    model,
                    model.state_ref(state),
                    f"{model.name} defers {event_type.__name__} in every "
                    f"reachable state; a queued {event_type.__name__} can "
                    f"never be dequeued (deferred-backlog deadlock)",
                )
            )
    return diagnostics


def _check_hot_forever(model: MachineModel) -> List[Diagnostic]:
    if model.kind != "monitor" or not model.hot_states:
        return []
    if model.has_unknown_transitions:
        return []
    reached = reachable_states(model)
    cold = model.all_states - model.hot_states
    diagnostics = []
    for hot in sorted(model.hot_states & reached):
        from_hot = _closure_from(model, hot, (GOTO, PUSH))
        if not (from_hot & cold):
            diagnostics.append(
                _diag(
                    "hot-forever",
                    model,
                    model.state_ref(hot),
                    f"hot state {hot!r} of monitor {model.name} has no "
                    f"transition path to any cold state; once hot, the "
                    f"liveness check can never pass",
                )
            )
    return diagnostics


def _payloadful(event_type: Optional[type]) -> bool:
    """Whether instances of ``event_type`` carry (shareable) payload fields.

    Events with no ``__init__`` of their own (e.g. pure signals like
    ``Halt`` or the timer's private loop event) hold no mutable payload, so
    aliasing one instance across deliveries is harmless.
    """
    return (
        event_type is not None
        and event_type.__init__ is not object.__init__
        and event_type.__init__ is not Event.__init__
    )


def _check_payload_alias(model: MachineModel) -> List[Diagnostic]:
    diagnostics = []
    sends_by_key: Dict[Tuple[str, Tuple[str, str]], list] = {}
    for send in model.alias_sends:
        sends_by_key.setdefault((send.method, send.key), []).append(send)
    for (method, key), sends in sorted(sends_by_key.items()):
        sends = sorted(sends, key=lambda s: s.ref.line)
        label = key[1] if key[0] == "name" else f"self.{key[1]}"
        event_type = next((s.event_type for s in sends if s.event_type), None)
        if len(sends) > 1 and _payloadful(event_type):
            diagnostics.append(
                _diag(
                    "payload-alias",
                    model,
                    sends[1].ref,
                    f"{model.name}.{model.pretty_method(method)} sends the event instance {label} "
                    f"({event_type.__name__}) more than once; all receivers "
                    f"share one mutable payload",
                )
            )
        looped = next((s for s in sends if s.loop_reuses_instance), None)
        if looped is not None and _payloadful(event_type):
            diagnostics.append(
                _diag(
                    "payload-alias",
                    model,
                    looped.ref,
                    f"{model.name}.{model.pretty_method(method)} sends the event instance {label} "
                    f"({event_type.__name__}) from inside a loop without "
                    f"rebinding it; every iteration delivers the same mutable "
                    f"payload",
                )
            )
        first_send_line = sends[0].ref.line
        for mutation in model.alias_mutations:
            if mutation.method == method and mutation.key == key and (
                mutation.ref.line > first_send_line
            ):
                diagnostics.append(
                    _diag(
                        "payload-alias",
                        model,
                        mutation.ref,
                        f"{model.name}.{model.pretty_method(method)} mutates {label} after sending "
                        f"it; under concurrent delivery the receiver races "
                        f"with this write",
                    )
                )
        if _payloadful(event_type):
            for retention in model.alias_retentions:
                if retention.method == method and retention.key == key:
                    diagnostics.append(
                        _diag(
                            "payload-alias",
                            model,
                            retention.ref,
                            f"{model.name}.{model.pretty_method(method)} stores {label} "
                            f"({event_type.__name__}) on self while also "
                            f"sending it; sender and receiver share one "
                            f"mutable payload",
                        )
                    )
    return diagnostics


# ---------------------------------------------------------------------------
# whole-program (communication-graph) rules
# ---------------------------------------------------------------------------
def _framework_event(event_type: type) -> bool:
    """Events declared by the reusable framework (``repro.core``) are exempt
    from dead-event: a library machine legitimately handles events any one
    program may never use (e.g. a timer's ``StopTimer``)."""
    return event_type.__module__.split(".")[0:2] == ["repro", "core"]


def _produced_events(program: ProgramModel) -> Optional[Set[type]]:
    """Every event type some site in ``program`` can produce; ``None`` when
    any site's event did not resolve (an unknown site may produce anything)
    or any method has effects outside the event model (a wrapped real
    component can feed arbitrary events back through engine shims)."""
    produced: Set[type] = set()
    for model in program:
        if model.partial or model.method_external:
            return None
        for site in model.sends:
            if site.event_type is None:
                return None
            produced.add(site.event_type)
        for site in model.raises:
            if site.event_type is None:
                return None
            produced.add(site.event_type)
        for site in model.notifies:
            if site.event_type is None:
                return None
            produced.add(site.event_type)
    return produced


def _check_dead_events(
    program: ProgramModel, extra_produced: Set[type]
) -> List[Diagnostic]:
    produced = _produced_events(program)
    if produced is None:
        return []
    produced = produced | extra_produced
    diagnostics = []
    for model in sorted(program, key=lambda m: (m.module, m.line, m.name)):
        handled: Dict[type, str] = {}
        for (_state, event_type), info in model.spec.handlers.items():
            if isinstance(event_type, type):
                handled.setdefault(event_type, info.method_name)
        for event_type, method in sorted(
            handled.items(), key=lambda kv: kv[0].__name__
        ):
            if is_control_event(event_type) or _framework_event(event_type):
                continue
            if any(issubclass(candidate, event_type) for candidate in produced):
                continue
            ref = model.method_refs.get(method)
            if ref is None:
                continue
            diagnostics.append(
                _diag(
                    "dead-event",
                    model,
                    ref,
                    f"{model.name}.{model.pretty_method(method)} handles "
                    f"{event_type.__name__}, but nothing in the analyzed "
                    f"program ever sends, raises or notifies it",
                )
            )
    return diagnostics


def _check_unreachable_machines(
    program: ProgramModel, roots: Set[type]
) -> List[Diagnostic]:
    created: Set[type] = set()
    for model in program:
        if model.partial or model.method_external:
            return []  # an unextracted/external method may create anything
        for site in model.creates:
            if site.machine is None:
                return []  # an unresolved create may instantiate anything
            created.add(site.machine)
    diagnostics = []
    for model in sorted(program, key=lambda m: (m.module, m.line, m.name)):
        if model.kind != "machine" or model.cls in roots or model.cls in created:
            continue
        diagnostics.append(
            _diag(
                "unreachable-machine",
                model,
                SourceRef(model.file, model.line),
                f"machine {model.name} is referenced by the program but "
                f"never created (and is not an analysis root)",
            )
        )
    return diagnostics


def _check_monitor_never_notified(program: ProgramModel) -> List[Diagnostic]:
    notified: Set[type] = set()
    for model in program:
        if model.partial or model.method_external:
            return []  # an unextracted/external method may notify anything
        for site in model.notifies:
            if site.monitor is None:
                return []  # an unresolved notify may reach any monitor
            notified.add(site.monitor)
    diagnostics = []
    for model in sorted(program, key=lambda m: (m.module, m.line, m.name)):
        if model.kind != "monitor" or model.cls in notified:
            continue
        diagnostics.append(
            _diag(
                "monitor-never-notified",
                model,
                SourceRef(model.file, model.line),
                f"monitor {model.name} is never notified by any reachable "
                f"machine; its invariants are never exercised",
            )
        )
    return diagnostics


def _must_dispatch_nodes(model: MachineModel) -> Dict[type, Set[str]]:
    """Registered event type -> handler methods, restricted to handlers the
    machine can actually sit in (reachable states); empty when the model's
    transition structure is unknown (degrade to silence, this is a must-rule)."""
    if model.has_unknown_transitions:
        return {}
    reached = reachable_states(model)
    nodes: Dict[type, Set[str]] = {}
    for (state, event_type), info in model.spec.handlers.items():
        if not isinstance(event_type, type):
            continue
        if state != ANY_STATE and state not in reached:
            continue
        nodes.setdefault(event_type, set()).add(info.method_name)
    return nodes


def _check_unbounded_send_cycles(program: ProgramModel) -> List[Diagnostic]:
    """Find (machine, event) dispatch cycles made of *unconditional* sends or
    raises whose handlers never transition, pop or halt.

    Every fact on the path is a must-fact, so a diagnosed cycle really loops:
    once any participating dispatch runs, the cycle re-feeds itself forever
    (self-send loops keep the machine spinning; cross-machine loops grow
    queues without bound).
    """
    # node: (machine class, event type); edge: must-send/raise from one
    # dispatch to the next
    edges: Dict[Tuple[type, type], Set[Tuple[type, type]]] = {}
    anchors: Dict[Tuple[type, type], Tuple[str, object]] = {}
    node_methods: Dict[type, Dict[type, Set[str]]] = {
        model.cls: _must_dispatch_nodes(model) for model in program
    }

    def _handler_is_guarded(model: MachineModel, methods: Set[str]) -> bool:
        if methods & model.method_halts:
            return True
        for edge in model.edges:
            if edge.method in methods:
                return True
        return any(pop.method in methods for pop in model.pops)

    for model in program:
        for event_type, methods in node_methods.get(model.cls, {}).items():
            if _handler_is_guarded(model, methods):
                continue
            if methods & model.method_external:
                # an external call inside the handler could fault or divert
                # control; the "loops forever" claim is no longer a must-fact
                continue
            source = (model.cls, event_type)
            for site in model.sends:
                if site.method not in methods or not site.unconditional:
                    continue
                if site.event_type is None or site.target is None:
                    continue
                if site.event_type in node_methods.get(site.target, {}):
                    edges.setdefault(source, set()).add((site.target, site.event_type))
                    anchors.setdefault(source, (site.method, site.ref))
            for site in model.raises:
                if site.method not in methods or not site.unconditional:
                    continue
                if site.event_type is None:
                    continue
                if site.event_type in node_methods.get(model.cls, {}):
                    edges.setdefault(source, set()).add((model.cls, site.event_type))
                    anchors.setdefault(source, (site.method, site.ref))

    # cycle detection over the must-edge graph
    diagnostics = []
    reported: Set[frozenset] = set()
    for start in sorted(edges, key=lambda n: (n[0].__name__, n[1].__name__)):
        path: List[Tuple[type, type]] = []
        on_path: Set[Tuple[type, type]] = set()
        done: Set[Tuple[type, type]] = set()

        def _visit(node: Tuple[type, type]) -> Optional[List[Tuple[type, type]]]:
            if node in on_path:
                return path[path.index(node):]
            if node in done:
                return None
            path.append(node)
            on_path.add(node)
            for succ in sorted(
                edges.get(node, ()), key=lambda n: (n[0].__name__, n[1].__name__)
            ):
                cycle = _visit(succ)
                if cycle is not None:
                    return cycle
            path.pop()
            on_path.remove(node)
            done.add(node)
            return None

        cycle = _visit(start)
        if cycle is None:
            continue
        key = frozenset(cycle)
        if key in reported:
            continue
        reported.add(key)
        first = min(cycle, key=lambda n: (n[0].__name__, n[1].__name__))
        model = program.model_for(first[0])
        method, ref = anchors[first]
        loop = " -> ".join(f"{cls.__name__}@{etype.__name__}" for cls, etype in cycle)
        diagnostics.append(
            _diag(
                "unbounded-send-cycle",
                model,
                ref,
                f"{model.name}.{model.pretty_method(method)} starts an "
                f"unconditional send cycle ({loop}) with no state transition "
                f"or halt on the path; queues grow without bound",
            )
        )
    return diagnostics


# ---------------------------------------------------------------------------
# payload dataflow rules (field-sensitive def-use, see repro.analysis.dataflow)
# ---------------------------------------------------------------------------
def _check_payload_missing_fields(
    program: ProgramModel, flow, extra_produced: Set[type]
) -> List[Diagnostic]:
    """A handler reads ``event.f`` but *no* producer of any deliverable event
    type can construct an instance carrying ``f``: the first matching
    dispatch raises ``AttributeError``.

    Anti-monotone like the other whole-program rules — adding producers can
    only remove diagnostics — so it requires a fully ``resolved`` dataflow,
    at least one producer that provably targets the handler's machine, and
    constructor may-sets for every deliverable type.  Harness-constructed
    events (``extra_produced``) are opaque producers: any read off them is
    assumed satisfiable.
    """
    if not flow.resolved:
        return []
    diagnostics = []
    for entry in flow.handler_reads:
        if not entry.fields:  # opaque (None) or reads nothing: no claim
            continue
        if is_control_event(entry.event_type):
            continue
        if any(issubclass(extra, entry.event_type) for extra in extra_produced):
            continue
        model = program.model_for(entry.owner)
        if model is None:
            continue
        states = model.method_states.get(entry.method, set())
        if states and ANY_STATE not in states and not (
            states & reachable_states(model)
        ):
            continue  # bound only to unreachable states: never dispatched
        deliverable = [
            etype
            for etype in flow.producers
            if issubclass(etype, entry.event_type)
        ]
        if not deliverable:
            continue  # nothing produces it at all: dead-event territory
        if not any(
            site.target is not None
            and (
                issubclass(entry.owner, site.target)
                or issubclass(site.target, entry.owner)
            )
            for etype in deliverable
            for site in flow.producers[etype]
        ):
            continue  # no producer provably delivers to this machine
        provided: Set[str] = set()
        opaque = False
        for etype in deliverable:
            fields = flow.fields_provided(etype)
            if fields is None:
                opaque = True
                break
            provided.update(fields)
        if opaque:
            continue
        missing = sorted(entry.fields - provided)
        if not missing:
            continue
        names = ", ".join(repr(name) for name in missing)
        plural = "s" if len(missing) > 1 else ""
        diagnostics.append(
            _diag(
                "payload-missing-field",
                model,
                entry.ref,
                f"{model.name}.{model.pretty_method(entry.method)} reads "
                f"field{plural} {names} off {entry.event_type.__name__}, but "
                f"no reachable producer ever sets "
                f"{'them' if plural else 'it'} — guaranteed AttributeError "
                f"on dispatch",
            )
        )
    return diagnostics


def _check_payload_dead_fields(
    program: ProgramModel, flow, extra_produced: Set[type]
) -> List[Diagnostic]:
    """Every producer populates a payload field that nothing ever reads.

    Needs the full consumer set to be visible, so it skips event types with
    any read-opaque handler, any ``Receive(...)`` consumer (coroutine bodies
    read fields outside the handler model), harness-related types, framework
    and control events, and events with behavior of their own.
    """
    if not flow.resolved:
        return []
    receive_opaque: Set[type] = set()
    receives_unknown = False
    for model in program:
        if model.receives_unknown:
            receives_unknown = True
        receive_opaque.update(model.receive_types)
    diagnostics = []
    for event_type in sorted(
        flow.producers, key=lambda t: (t.__module__, t.__qualname__)
    ):
        if is_control_event(event_type) or _framework_event(event_type):
            continue
        if receives_unknown or any(
            issubclass(event_type, received) for received in receive_opaque
        ):
            continue
        if any(
            issubclass(extra, event_type) or issubclass(event_type, extra)
            for extra in extra_produced
        ):
            continue  # the harness constructs/inspects these opaquely
        if event_has_own_methods(event_type):
            continue
        consumers = [
            entry
            for entry in flow.handler_reads
            if issubclass(event_type, entry.event_type)
        ]
        if not consumers:
            continue  # no reader at all: dead-event territory, not a field
        required = flow.fields_required(event_type)
        if required is None:
            continue  # some consumer is read-opaque
        must, _may = event_ctor_fields(event_type)
        if must is None:
            continue
        sites = sorted(
            flow.producers[event_type], key=lambda s: (s.ref.file, s.ref.line)
        )
        extras: Set[str] = set()
        for site in sites:
            extras.update(site.extra_fields)
        dead = sorted((set(must) | extras) - required)
        if not dead:
            continue
        anchor = sites[0]
        model = program.model_for(anchor.owner)
        if model is None:
            continue
        names = ", ".join(repr(name) for name in dead)
        plural = "s" if len(dead) > 1 else ""
        diagnostics.append(
            _diag(
                "payload-dead-field",
                model,
                anchor.ref,
                f"field{plural} {names} of {event_type.__name__} "
                f"{'are' if plural else 'is'} populated on every construction "
                f"but never read by any handler or monitor; dead payload",
            )
        )
    return diagnostics


def _check_nondeterministic_handlers(program: ProgramModel) -> List[Diagnostic]:
    """Uncontrolled-nondeterminism sites are must-facts (the call or loop is
    syntactically present), so this rule needs no whole-program gating."""
    diagnostics = []
    for model in sorted(program, key=lambda m: (m.module, m.line, m.name)):
        for site in model.nondet_sites:
            diagnostics.append(
                _diag(
                    "nondeterministic-handler",
                    model,
                    site.ref,
                    f"{model.name}.{model.pretty_method(site.method)} "
                    f"{site.reason}; test-mode handlers must be deterministic "
                    f"functions of machine state and the delivered event, or "
                    f"replay, shrinking and fingerprints silently break",
                )
            )
    return diagnostics


def check_unused_ignores(
    program: ProgramModel, raw_diagnostics: List[Diagnostic]
) -> List[Diagnostic]:
    """Flag ``# repro: ignore[rule-id]`` pragmas that silence nothing.

    A pragma is *used* when some raw (pre-suppression) diagnostic for one of
    its listed rules anchors at the pragma's line (trailing form) or the line
    below it (comment-above form) — hopping over contiguous decorator lines,
    mirroring :func:`repro.analysis.report.suppressed_rules`, so a pragma
    above a decorated handler attaches to the handler's ``def`` anchor.
    Wildcard ``[*]`` pragmas are exempt.

    Only lines inside the body of an analyzed class are scanned: a source
    file may also hold classes outside this program (fixture modules,
    library files analyzed piecemeal), and their pragmas are not this
    program's business.  A class whose end line is unknown scans nothing —
    silence is the safe direction for a hygiene rule.
    """
    import linecache

    from .report import _SUPPRESS_RE

    anchored: Dict[Tuple[str, int], Set[str]] = {}
    for diag in raw_diagnostics:
        anchored.setdefault((diag.file, diag.line), set()).add(diag.rule)

    #: (file, line) -> owning model, covering each analyzed class body once
    scan_lines: Dict[Tuple[str, int], MachineModel] = {}
    for model in sorted(program, key=lambda m: (m.module, m.line, m.name)):
        if not model.file or model.file == "<unknown>" or model.end_line < model.line:
            continue
        for lineno in range(model.line, model.end_line + 1):
            scan_lines.setdefault((model.file, lineno), model)

    diagnostics = []
    for (file, lineno), model in sorted(
        scan_lines.items(), key=lambda kv: (kv[0][0], kv[0][1], kv[1].name)
    ):
        text = linecache.getline(file, lineno)
        match = _SUPPRESS_RE.search(text)
        if match is None:
            continue
        rules = {part.strip() for part in match.group(1).split(",")}
        if "*" in rules:
            continue
        below = lineno + 1
        while linecache.getline(file, below).lstrip().startswith("@"):
            below += 1
        used = rules & (
            anchored.get((file, lineno), set())
            | anchored.get((file, lineno + 1), set())
            | anchored.get((file, below), set())
        )
        if used:
            continue
        diagnostics.append(
            _diag(
                "unused-ignore",
                model,
                SourceRef(file, lineno),
                f"'# repro: ignore[{match.group(1).strip()}]' suppresses "
                f"nothing here; remove the stale pragma",
            )
        )
    return diagnostics


def run_checkers(
    program: ProgramModel,
    roots: Optional[Iterable[type]] = None,
    produced_events: Iterable[type] = (),
    whole_program: bool = False,
) -> List[Diagnostic]:
    """Run every rule over ``program`` and return the raw diagnostics.

    ``roots`` are the classes the harness instantiates directly (exempt from
    unreachable-machine); by default every analyzed machine is a root.
    ``produced_events`` are event types the scenario's entry factory itself
    constructs (they count as produced for dead-event).

    ``whole_program`` asserts that ``program`` is a *closed* system — every
    machine, producer and notifier that can run together is in the model
    (true for scenario-driven discovery, not for an ad-hoc class list).  The
    rules that reason about *absence* of a producer/creator/notifier
    (dead-event, unreachable-machine, monitor-never-notified) only run then:
    on a program fragment, "nothing sends this" is an artifact of the
    fragment, not a defect.  Cycle detection stays on either way — a send
    cycle found in a fragment survives in every larger program.
    """
    if roots is None:
        root_set = {model.cls for model in program}
    else:
        root_set = set(roots)
    diagnostics: List[Diagnostic] = []
    for model in sorted(
        program, key=lambda m: (m.module, m.line, m.name)
    ):
        diagnostics.extend(_check_reachability(model))
        diagnostics.extend(_check_pop_underflow(model))
        diagnostics.extend(_check_stuck_deferral(model))
        diagnostics.extend(_check_hot_forever(model))
        diagnostics.extend(_check_payload_alias(model))
    diagnostics.extend(_check_unhandled_events(program))
    diagnostics.extend(_check_nondeterministic_handlers(program))
    if whole_program:
        flow = build_dataflow(program)
        extra = set(produced_events)
        diagnostics.extend(_check_dead_events(program, extra))
        diagnostics.extend(_check_unreachable_machines(program, root_set))
        diagnostics.extend(_check_monitor_never_notified(program))
        diagnostics.extend(_check_payload_missing_fields(program, flow, extra))
        diagnostics.extend(_check_payload_dead_fields(program, flow, extra))
    diagnostics.extend(_check_unbounded_send_cycles(program))
    return diagnostics
