"""High-level analysis entry points (used by the CLI and by tests).

``analyze_scenarios`` discovers machine/monitor classes through the scenario
registry — walking each registered ``build`` factory's code for the classes
it wires into the runtime, then closing over everything those machines
create, reference or notify — and runs every checker over the combined
program model.  The same discovery feeds the whole-program communication
graph (``graph_for_scenarios``) and the independence table the ``dpor-lite``
strategy consumes (``independence_for_scenarios``).
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Set

from repro.core.registry import TestCase

from .cache import AnalysisCache
from .checkers import check_unused_ignores, run_checkers
from .commgraph import CommGraph, build_comm_graph
from .extract import build_program, discover_classes, discover_event_types
from .independence import build_independence_table, type_key
from .report import AnalysisReport


def analyze_classes(
    classes: Iterable[type],
    scenarios: Iterable[str] = (),
    roots: Optional[Iterable[type]] = None,
    produced_events: Iterable[type] = (),
    whole_program: bool = False,
) -> AnalysisReport:
    """Analyze an explicit set of machine/monitor classes (plus closure).

    ``roots`` are the classes the harness instantiates directly; by default
    every listed class counts as a root (which silences the
    unreachable-machine rule for them).  ``produced_events`` are event types
    produced outside any machine (a scenario's entry function).
    ``whole_program`` enables the rules that need a closed system (dead-event,
    unreachable-machine, monitor-never-notified); leave it off when the class
    list is a fragment of a larger program.
    """
    program = build_program(classes)
    diagnostics = run_checkers(
        program,
        roots=roots,
        produced_events=produced_events,
        whole_program=whole_program,
    )
    diagnostics = diagnostics + check_unused_ignores(program, diagnostics)
    return AnalysisReport.build(
        diagnostics,
        machines=[model.name for model in program],
        scenarios=scenarios,
    )


def _discover(testcases: Sequence[TestCase]):
    classes: Set[type] = set()
    produced: Set[type] = set()
    for testcase in testcases:
        classes.update(discover_classes(testcase.build))
        produced.update(discover_event_types(testcase.build))
    return classes, produced


def analyze_scenarios(
    testcases: Sequence[TestCase], cache: Optional[AnalysisCache] = None
) -> AnalysisReport:
    """Analyze every machine reachable from the given registered scenarios.

    With a ``cache``, the finished report is stored keyed on the discovered
    classes' source digests plus the scenario names and harness-produced
    event types; an unchanged tree skips extraction and checking entirely.
    """
    classes, produced = _discover(testcases)
    key = None
    if cache is not None:
        extra = ["report"]
        extra.extend(sorted(t.name for t in testcases))
        extra.extend(sorted(type_key(event) for event in produced))
        key = cache.key_for(classes, extra=extra)
        cached = cache.get(key)
        if cached is not None:
            return AnalysisReport.from_cache_dict(cached)
    report = analyze_classes(
        classes,
        scenarios=[t.name for t in testcases],
        roots=classes,
        produced_events=produced,
        whole_program=True,
    )
    if cache is not None:
        cache.put(key, report.to_cache_dict())
    return report


def graph_for_scenarios(testcases: Sequence[TestCase]) -> CommGraph:
    """Whole-program communication graph over the given scenarios."""
    classes, _produced = _discover(testcases)
    return build_comm_graph(build_program(classes))


def independence_for_scenarios(
    testcases: Sequence[TestCase], cache: Optional[AnalysisCache] = None
) -> dict:
    """Independence table over the given scenarios (see ``run --prune``)."""
    classes, _produced = _discover(testcases)
    key = None
    if cache is not None:
        key = cache.key_for(classes, extra=["independence"])
        cached = cache.get(key)
        if cached is not None:
            return cached
    table = build_independence_table(build_program(classes))
    if cache is not None:
        cache.put(key, table)
    return table
