"""High-level analysis entry points (used by the CLI and by tests).

``analyze_scenarios`` discovers machine/monitor classes through the scenario
registry — walking each registered ``build`` factory's code for the classes
it wires into the runtime, then closing over everything those machines
create, reference or notify — and runs every checker over the combined
program model.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.core.registry import TestCase

from .checkers import run_checkers
from .extract import build_program, discover_classes
from .report import AnalysisReport


def analyze_classes(
    classes: Iterable[type], scenarios: Iterable[str] = ()
) -> AnalysisReport:
    """Analyze an explicit set of machine/monitor classes (plus closure)."""
    program = build_program(classes)
    return AnalysisReport.build(
        run_checkers(program),
        machines=[model.name for model in program],
        scenarios=scenarios,
    )


def analyze_scenarios(testcases: Sequence[TestCase]) -> AnalysisReport:
    """Analyze every machine reachable from the given registered scenarios."""
    classes = set()
    for testcase in testcases:
        classes.update(discover_classes(testcase.build))
    return analyze_classes(classes, scenarios=[t.name for t in testcases])
