"""Layer 1: extract :class:`~repro.analysis.model.MachineModel` summaries.

Extraction walks each class's :class:`~repro.core.declarations.StateMachineSpec`
(for states, disciplines and handler bindings) plus the AST of every method
(``inspect.getsource`` + ``ast``) for the dynamic facts the spec cannot see:
``goto``/``push_state``/``pop_state`` transitions, ``send``/``raise_event``/
``notify_monitor`` sites, ``self.create(...)`` machine references and
``Receive(...)`` clauses inside generator handlers.

Name resolution is best-effort and *sound for reporting*: an expression is
resolved through the function's globals, its closure cells and attribute
chains (``module.Class.attr``); ``self.X`` attributes resolve only when every
assignment to ``X`` across the class agrees on a statically-known value.
Whatever cannot be resolved becomes ``None`` ("unknown") and the checkers
stay silent about it — dynamic code degrades analyzer coverage, never its
precision.
"""

from __future__ import annotations

import ast
import builtins
import collections
import functools
import inspect
import textwrap
import types
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.core.declarations import ANY_STATE, State, build_spec
from repro.core.events import Event, Receive
from repro.core.machine import Machine
from repro.core.monitors import Monitor

from .model import (
    GOTO,
    PUSH,
    AliasMutation,
    AliasRetention,
    AliasSend,
    CreateSite,
    MachineModel,
    NondetSite,
    NotifySite,
    PopSite,
    ProgramModel,
    QuerySite,
    RaiseSite,
    SendSite,
    SourceRef,
    TransitionEdge,
)

#: method names that mutate their receiver in place (payload-alias checker)
_MUTATING_METHODS = frozenset(
    {
        "append",
        "appendleft",
        "add",
        "clear",
        "discard",
        "extend",
        "insert",
        "pop",
        "popitem",
        "popleft",
        "remove",
        "setdefault",
        "sort",
        "reverse",
        "update",
    }
)

#: container methods that cannot change which values the container holds in
#: a way that grows its membership (reads, plus pure removals would also be
#: safe, but only provably-read-only names are exempted)
_CONTAINER_READONLY = frozenset({"get", "keys", "values", "items", "copy", "count", "index"})

#: ``self.<verb>`` framework calls whose effect the model captures; finding
#: one inside a *deferred* body (lambda / nested def) taints the method as
#: external, because the effect would run outside this dispatch's footprint
_EFFECT_VERBS = frozenset(
    {
        "send",
        "raise_event",
        "notify_monitor",
        "create",
        "goto",
        "push_state",
        "pop_state",
        "halt",
        "count_pending",
    }
)

#: ``self.<verb>`` framework calls with no cross-machine effect at all
_BENIGN_SELF_VERBS = frozenset(
    {"log", "random", "random_integer", "choose", "assert_that"}
)

#: builtins a handler may call without leaving the event-level model (pure
#: value computation or fresh-container construction; identity-compared)
_BENIGN_CALLABLES = (
    isinstance, issubclass, len, sorted, reversed, set, list, dict, tuple,
    frozenset, min, max, sum, abs, range, enumerate, zip, any, all, str,
    int, float, bool, bytes, repr, format, hash, round, divmod, getattr,
    hasattr, type, id, print, iter, next, collections.deque,
)

#: expressions that build a *fresh* container (confined unless leaked)
_CONTAINER_FACTORIES = (set, list, dict, tuple, frozenset, sorted, collections.deque)

#: control-flow ancestors under which a send is no longer a must-fact
_CONDITIONAL_NODES = tuple(
    getattr(ast, name)
    for name in (
        "If", "IfExp", "For", "AsyncFor", "While", "Try", "TryStar",
        "ExceptHandler", "BoolOp", "Lambda", "FunctionDef",
        "AsyncFunctionDef", "ListComp", "SetComp", "DictComp",
        "GeneratorExp", "Match",
    )
    if hasattr(ast, name)
)


def _is_container_expr(node: ast.AST, scope: "_Scope") -> bool:
    """The expression constructs a fresh container this method owns."""
    if isinstance(
        node,
        (ast.Dict, ast.List, ast.Set, ast.Tuple, ast.ListComp, ast.SetComp, ast.DictComp),
    ):
        return True
    if isinstance(node, ast.Call):
        resolved = _resolve_or_none(node.func, scope)
        return any(resolved is factory for factory in _CONTAINER_FACTORIES)
    return False


def _container_attrs(cls: type, funcs) -> Set[str]:
    """``self.X`` attributes whose *every* assignment is a fresh container.

    Method calls on such attributes (``self.pending.append(...)``) stay inside
    this machine, so they do not taint the method as external.
    """
    verdicts: Dict[str, List[bool]] = {}
    for _name, func in funcs.items():
        info = _function_ast(func)
        if info is None:
            continue
        fdef, _fname, _offset = info
        scope = _Scope(func, cls)
        for node in ast.walk(fdef):
            if isinstance(node, ast.Assign):
                pairs = [(target, node.value) for target in node.targets]
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                pairs = [(node.target, node.value)]
            else:
                continue
            for target, value in pairs:
                if _is_self_attr(target):
                    verdicts.setdefault(target.attr, []).append(
                        _is_container_expr(value, scope)
                    )
    return {attr for attr, oks in verdicts.items() if all(oks)}


def _is_runtime_attr(node: ast.AST) -> bool:
    """``self._runtime.X`` / ``self.runtime.X`` attribute chains."""
    return (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Attribute)
        and isinstance(node.value.value, ast.Name)
        and node.value.value.id == "self"
        and node.value.attr in ("_runtime", "runtime")
    )


_PLAIN_CTOR_CACHE: Dict[type, bool] = {}


def _is_super_init_stmt(stmt: ast.stmt) -> bool:
    return (
        isinstance(stmt, ast.Expr)
        and isinstance(stmt.value, ast.Call)
        and isinstance(stmt.value.func, ast.Attribute)
        and stmt.value.func.attr == "__init__"
        and isinstance(stmt.value.func.value, ast.Call)
        and isinstance(stmt.value.func.value.func, ast.Name)
        and stmt.value.func.value.func.id == "super"
    )


_BENIGN_CALL_NAMES = frozenset(
    {"list", "dict", "set", "tuple", "frozenset", "sorted", "len", "str",
     "int", "float", "bool", "deque", "isinstance"}
)


def _is_binding_stmt(stmt: ast.stmt) -> bool:
    """The ``__init__`` statement only binds arguments onto ``self``."""
    if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant):
        return True  # docstring
    if _is_super_init_stmt(stmt):
        return True
    if isinstance(stmt, ast.Assign):
        targets, value = stmt.targets, stmt.value
    elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
        targets, value = [stmt.target], stmt.value
    else:
        return False
    if not all(_is_self_attr(target) for target in targets):
        return False
    for inner in ast.walk(value):
        if isinstance(inner, ast.Call):
            if not (
                isinstance(inner.func, ast.Name)
                and inner.func.id in _BENIGN_CALL_NAMES
            ):
                return False
        elif isinstance(inner, (ast.NamedExpr, ast.Await, ast.Yield, ast.YieldFrom)):
            return False
    return True


def _is_plain_ctor(cls: type) -> bool:
    """``cls(...)`` only builds a value carrier: a dataclass, enum, named
    tuple, or a class whose ``__init__`` does nothing but bind arguments."""
    cached = _PLAIN_CTOR_CACHE.get(cls)
    if cached is not None:
        return cached
    import dataclasses
    import enum

    result = False
    if dataclasses.is_dataclass(cls) or issubclass(cls, enum.Enum):
        result = True
    elif issubclass(cls, tuple) and hasattr(cls, "_fields"):
        result = True
    else:
        init = None
        for klass in cls.__mro__:
            if klass is object:
                break
            candidate = vars(klass).get("__init__")
            if candidate is not None:
                init = candidate
                break
        if init is None:
            result = True  # object.__init__: no behavior at all
        elif isinstance(init, types.FunctionType):
            info = _function_ast(init)
            if info is not None:
                fdef, _fname, _offset = info
                result = all(_is_binding_stmt(stmt) for stmt in fdef.body)
    _PLAIN_CTOR_CACHE[cls] = result
    return result


# ---------------------------------------------------------------------------
# effect-confined classes
# ---------------------------------------------------------------------------
# A class is *effect-confined* when every method that can run on an instance
# provably touches only the instance's own state: locals, ``self``
# attributes, fresh containers, confined sub-objects, and pure builtins.
# Machines may then call methods on attributes holding such objects
# (``self.store.add_extent(...)``) without the method degrading to
# "external" — the effect stays inside the machine's own heap, which the
# independence table already accounts for.  Anything the walk cannot prove
# keeps the v1 verdict: external.
_CONFINED_CLASS_CACHE: Dict[type, bool] = {}
_CONFINED_CTOR_CACHE: Dict[type, bool] = {}


def _class_functions(cls: type) -> Optional[Dict[str, types.FunctionType]]:
    """Every function that can run on an instance of ``cls`` (methods plus
    property accessors, across the MRO); ``None`` when the class carries a
    descriptor or callable attribute the walk cannot see through."""
    funcs: Dict[str, types.FunctionType] = {}
    for klass in reversed(cls.__mro__):
        if klass is object:
            continue
        for name, attr in vars(klass).items():
            if isinstance(attr, types.FunctionType):
                funcs[name] = attr
            elif isinstance(attr, property):
                for accessor in (attr.fget, attr.fset, attr.fdel):
                    if accessor is None:
                        continue
                    if not isinstance(accessor, types.FunctionType):
                        return None
                    funcs[f"{name}.{accessor.__name__}.{id(accessor):x}"] = accessor
            elif isinstance(attr, (staticmethod, classmethod)):
                return None  # may reach class-level shared state
            elif callable(attr) and not isinstance(attr, type):
                return None  # unknown descriptor / callable attribute
    return funcs


def _attr_ctor_value(node: ast.AST, scope: "_Scope"):
    """Value summary for ``self.X = <node>`` as a fresh helper object."""
    if isinstance(node, ast.Call):
        resolved = _resolve_or_none(node.func, scope)
        if isinstance(resolved, type) and not issubclass(
            resolved, (Machine, Monitor, Event)
        ):
            return resolved
    return None


def _chain_root(node: ast.AST) -> Tuple[ast.AST, Optional[ast.AST]]:
    """Walk an attribute/subscript chain down to its root expression.

    Returns ``(root, hop)`` where ``hop`` is the chain link directly above
    the root (``None`` when ``node`` is the root itself).
    """
    hop: Optional[ast.AST] = None
    base = node
    while isinstance(base, (ast.Attribute, ast.Subscript)):
        hop = base
        base = base.value
    return base, hop


def _confined_receiver_owned(
    node: ast.AST,
    scope: "_Scope",
    container_attrs: Set[str],
    attr_classes: Dict[str, type],
) -> bool:
    """The receiver is a value this instance (or its caller) owns: rooted at
    a confined ``self`` attribute, a local/parameter name, a call result, a
    literal, or a fresh container — never a module-global."""
    base, hop = _chain_root(node)
    if isinstance(base, ast.Name):
        if base.id == "self":
            return isinstance(hop, ast.Attribute) and (
                hop.attr in container_attrs or hop.attr in attr_classes
            )
        return _resolve_or_none(base, scope) is None  # local or parameter
    return (
        isinstance(base, (ast.Call, ast.Constant))
        or _is_container_expr(base, scope)
    )


def _confined_store_ok(
    target: ast.AST,
    scope: "_Scope",
    container_attrs: Set[str],
    attr_classes: Dict[str, type],
) -> bool:
    if isinstance(target, ast.Name):
        return True
    if isinstance(target, (ast.Tuple, ast.List)):
        return all(
            _confined_store_ok(el, scope, container_attrs, attr_classes)
            for el in target.elts
        )
    if isinstance(target, ast.Starred):
        return _confined_store_ok(target.value, scope, container_attrs, attr_classes)
    base, hop = _chain_root(target)
    if isinstance(base, ast.Name):
        if base.id == "self":
            if isinstance(target, ast.Attribute) and target.value is base:
                return True  # plain own-attribute rebind
            return isinstance(hop, ast.Attribute) and (
                hop.attr in container_attrs or hop.attr in attr_classes
            )
        return _resolve_or_none(base, scope) is None
    return isinstance(base, ast.Call) or _is_container_expr(base, scope)


def _confined_call_ok(
    node: ast.Call,
    cls: type,
    scope: "_Scope",
    container_attrs: Set[str],
    attr_classes: Dict[str, type],
    stack: Set[type],
) -> bool:
    func = node.func
    if isinstance(func, ast.Attribute):
        receiver = func.value
        if (
            isinstance(receiver, ast.Call)
            and isinstance(receiver.func, ast.Name)
            and receiver.func.id == "super"
        ):
            base_cls = cls.__mro__[1] if len(cls.__mro__) > 1 else object
            if base_cls is object:
                return True
            if func.attr == "__init__":
                return _ctor_is_confined(base_cls, stack)
            return _is_effect_confined_class(base_cls, stack)
        if _is_self_attr(receiver):
            if receiver.attr in container_attrs:
                return True
            if receiver.attr in attr_classes:
                # a confined sub-object: all of its runnable code is (being)
                # checked by _is_effect_confined_class
                return True
        if func.attr in _MUTATING_METHODS or func.attr in _CONTAINER_READONLY:
            return _confined_receiver_owned(receiver, scope, container_attrs, attr_classes)
        if isinstance(receiver, ast.Constant):
            return True  # e.g. ", ".join(...)
        return False
    resolved = _resolve_or_none(func, scope)
    if resolved is None:
        return False
    if any(resolved is fn for fn in _BENIGN_CALLABLES):
        return True
    if isinstance(resolved, type):
        return (
            issubclass(resolved, BaseException)
            or _is_plain_ctor(resolved)
            or _ctor_is_confined(resolved, stack)
        )
    return False


def _method_effect_confined(
    cls: type,
    func: types.FunctionType,
    container_attrs: Set[str],
    attr_classes: Dict[str, type],
    stack: Set[type],
) -> Tuple[bool, Set[str]]:
    """Whether one method body provably has no effects outside the instance.

    Returns ``(verdict, self_calls)``; ``self_calls`` are own-method names
    invoked as ``self.m(...)`` (callers needing a closure follow them).
    """
    info = _function_ast(func)
    if info is None:
        return False, set()
    fdef, _fname, _offset = info
    scope = _Scope(func, cls)
    self_calls: Set[str] = set()
    for node in ast.walk(fdef):
        if isinstance(node, (ast.Global, ast.Nonlocal, ast.Await)):
            return False, self_calls
        if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign, ast.Delete)):
            if isinstance(node, (ast.Assign, ast.Delete)):
                targets = list(node.targets)
            else:
                targets = [node.target]
            for target in targets:
                if not _confined_store_ok(target, scope, container_attrs, attr_classes):
                    return False, self_calls
        if isinstance(node, ast.Call):
            func_expr = node.func
            if (
                isinstance(func_expr, ast.Attribute)
                and isinstance(func_expr.value, ast.Name)
                and func_expr.value.id == "self"
            ):
                attr = getattr(cls, func_expr.attr, None)
                if isinstance(attr, (types.FunctionType, property)):
                    self_calls.add(func_expr.attr)
                    continue
                return False, self_calls
            if not _confined_call_ok(node, cls, scope, container_attrs, attr_classes, stack):
                return False, self_calls
    return True, self_calls


def _is_effect_confined_class(cls: type, _stack: Optional[Set[type]] = None) -> bool:
    cached = _CONFINED_CLASS_CACHE.get(cls)
    if cached is not None:
        return cached
    stack = _stack if _stack is not None else set()
    if cls in stack:
        return True  # provisional: co-recursive confinement is consistent
    result = False
    if not issubclass(cls, (Machine, Monitor, Event)):
        funcs = _class_functions(cls)
        if funcs is not None:
            inner = stack | {cls}
            container_attrs = _container_attrs(cls, funcs)
            attr_classes = {
                attr: target
                for attr, target in _attr_map(cls, funcs, _attr_ctor_value).items()
                if _is_effect_confined_class(target, inner)
            }
            result = all(
                _method_effect_confined(cls, fn, container_attrs, attr_classes, inner)[0]
                for fn in funcs.values()
            )
    if not stack:
        _CONFINED_CLASS_CACHE[cls] = result
    return result


def _ctor_is_confined(cls: type, _stack: Optional[Set[type]] = None) -> bool:
    """``cls(...)`` runs only confined code (argument binding, fresh
    sub-object construction, own-attribute initialization).  Weaker than
    full effect-confinement: later *method calls* on the instance may still
    have arbitrary effects, so callers must keep treating those separately.
    """
    cached = _CONFINED_CTOR_CACHE.get(cls)
    if cached is not None:
        return cached
    stack = _stack if _stack is not None else set()
    if cls in stack:
        return True
    result = False
    if _is_plain_ctor(cls):
        result = True
    elif not issubclass(cls, (Machine, Monitor)):
        init = None
        for klass in cls.__mro__:
            if klass is object:
                break
            candidate = vars(klass).get("__init__")
            if candidate is not None:
                init = candidate
                break
        if init is None:
            result = True
        elif isinstance(init, types.FunctionType):
            funcs = _class_functions(cls) or {"__init__": init}
            container_attrs = _container_attrs(cls, funcs)
            inner = stack | {cls}
            checked = {"__init__"}
            pending = [init]
            result = True
            while pending:
                fn = pending.pop()
                ok, calls = _method_effect_confined(cls, fn, container_attrs, {}, inner)
                if not ok:
                    result = False
                    break
                for name in sorted(calls - checked):
                    checked.add(name)
                    attr = getattr(cls, name, None)
                    if isinstance(attr, types.FunctionType):
                        pending.append(attr)
                    elif isinstance(attr, property):
                        pending.extend(
                            accessor
                            for accessor in (attr.fget, attr.fset)
                            if isinstance(accessor, types.FunctionType)
                        )
                    else:
                        result = False
                if not result:
                    break
    if not stack:
        _CONFINED_CTOR_CACHE[cls] = result
    return result


def _self_escapes_to_confined_ctor(node: ast.Name, parents, scope: "_Scope") -> bool:
    """Bare ``self`` passed directly to a plain/confined constructor: the
    constructor only binds the reference (it cannot invoke machine methods),
    so the machine does not escape into arbitrary code at this site."""
    parent = parents.get(node)
    call = None
    if isinstance(parent, ast.Call) and node in parent.args:
        call = parent
    elif isinstance(parent, ast.keyword):
        grand = parents.get(parent)
        if isinstance(grand, ast.Call) and parent in grand.keywords:
            call = grand
    if call is None:
        return False
    resolved = _resolve_or_none(call.func, scope)
    return isinstance(resolved, type) and _ctor_is_confined(resolved)


# ---------------------------------------------------------------------------
# uncontrolled nondeterminism (determinism lint)
# ---------------------------------------------------------------------------
@functools.lru_cache(maxsize=1)
def _nondet_callables() -> Tuple[object, ...]:
    import datetime
    import os
    import time
    import uuid

    candidates = (
        time.time, time.time_ns, time.monotonic, time.monotonic_ns,
        time.perf_counter, time.perf_counter_ns, os.urandom,
        getattr(os, "getrandom", None), uuid.uuid1, uuid.uuid4,
        datetime.datetime.now, datetime.datetime.utcnow, datetime.date.today,
    )
    return tuple(fn for fn in candidates if fn is not None)


_NONDET_MODULES = frozenset({"random", "secrets"})


def _nondet_call_reason(node: ast.Call, scope: "_Scope") -> Optional[str]:
    resolved = _resolve_or_none(node.func, scope)
    if resolved is None:
        return None
    for fn in _nondet_callables():
        if resolved is fn:
            module = getattr(fn, "__module__", "?")
            qualname = getattr(fn, "__qualname__", getattr(fn, "__name__", "?"))
            return f"calls {module}.{qualname}(), an uncontrolled wall-clock/entropy source"
    module = getattr(resolved, "__module__", None)
    if module in _NONDET_MODULES and callable(resolved):
        name = getattr(resolved, "__name__", "?")
        return f"calls {module}.{name}(), drawing from uncontrolled global randomness"
    return None


def _is_set_expr(node: ast.AST, scope: "_Scope") -> bool:
    """The expression's value is an unordered set (iteration order is
    interpreter hash order, not program order)."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        resolved = _resolve_or_none(node.func, scope)
        return resolved is set or resolved is frozenset
    return False


def _set_attrs(cls: type, funcs) -> Set[str]:
    """``self.X`` attributes whose *every* assignment is an unordered set."""
    verdicts: Dict[str, List[bool]] = {}
    for _name, func in funcs.items():
        info = _function_ast(func)
        if info is None:
            continue
        fdef, _fname, _offset = info
        scope = _Scope(func, cls)
        for node in ast.walk(fdef):
            if isinstance(node, ast.Assign):
                pairs = [(target, node.value) for target in node.targets]
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                pairs = [(node.target, node.value)]
            else:
                continue
            for target, value in pairs:
                if _is_self_attr(target):
                    verdicts.setdefault(target.attr, []).append(
                        _is_set_expr(value, scope)
                    )
    return {attr for attr, oks in verdicts.items() if oks and all(oks)}


def _member_read_attr(node: ast.AST, container_attrs: Set[str]) -> Optional[str]:
    """``self.X[...]`` / ``self.X.get(...)`` over a confined container: the
    expression's value is one of the current members of ``self.X``."""
    if (
        isinstance(node, ast.Subscript)
        and _is_self_attr(node.value)
        and node.value.attr in container_attrs
    ):
        return node.value.attr
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr == "get"
        and _is_self_attr(node.func.value)
        and node.func.value.attr in container_attrs
    ):
        return node.func.value.attr
    return None


def _target_expr_of(
    node: ast.AST,
    scope: "_Scope",
    container_attrs: Set[str] = frozenset(),
    member_locals: Optional[Dict[str, str]] = None,
    event_param: Optional[str] = None,
) -> Tuple[str, str]:
    """Symbolic shape of a send/query target, for the independence table."""
    if _is_self_attr(node):
        if node.attr in ("id", "_id"):
            return ("self", "")
        return ("attr", node.attr)
    if isinstance(node, ast.Name):
        cls = scope.local_creates.get(node.id)
        if cls is not None:
            return ("class", f"{cls.__module__}.{cls.__qualname__}")
        if member_locals is not None:
            attr = member_locals.get(node.id)
            if attr is not None:
                return ("attr_item", attr)
    if (
        event_param is not None
        and isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == event_param
    ):
        # the target is carried in the received event's payload; resolvable
        # at choice time by reading the field off the head event instance
        return ("event_field", node.attr)
    member = _member_read_attr(node, container_attrs)
    if member is not None:
        return ("attr_item", member)
    return ("unknown", "")


def _payload_fields(node: ast.AST, event_type: Optional[type]) -> Tuple[str, ...]:
    """Constructor field names a fresh-event site populates."""
    if not isinstance(node, ast.Call):
        return ()
    positional: List[str] = []
    if isinstance(event_type, type):
        try:
            params = inspect.signature(event_type.__init__).parameters
        except (TypeError, ValueError):
            params = {}
        positional = [
            name
            for name, param in params.items()
            if name != "self"
            and param.kind in (param.POSITIONAL_ONLY, param.POSITIONAL_OR_KEYWORD)
        ]
    names: List[str] = []
    for index, arg in enumerate(node.args):
        if isinstance(arg, ast.Starred):
            break
        if index < len(positional):
            names.append(positional[index])
    for keyword in node.keywords:
        if keyword.arg:
            names.append(keyword.arg)
    return tuple(dict.fromkeys(names))


def _alias_key(node: ast.AST):
    """Aliasable expression key: a local name or a ``self`` attribute."""
    if isinstance(node, ast.Name):
        return ("name", node.id)
    if _is_self_attr(node):
        return ("attr", node.attr)
    return None


class _Unresolved(Exception):
    """An expression could not be statically resolved to a Python value."""


# ---------------------------------------------------------------------------
# expression resolution
# ---------------------------------------------------------------------------
def _closure_env(func) -> Dict[str, object]:
    env: Dict[str, object] = {}
    if func.__closure__:
        for name, cell in zip(func.__code__.co_freevars, func.__closure__):
            try:
                env[name] = cell.cell_contents
            except ValueError:  # still-empty cell
                pass
    return env


class _Scope:
    """Resolution context for one method body."""

    def __init__(self, func, owner: type) -> None:
        self.func = func
        self.owner = owner
        self.globals = func.__globals__
        self.closure = _closure_env(func)
        #: local name -> machine class, from ``x = self.create(Cls, ...)``
        self.local_creates: Dict[str, type] = {}
        #: local name -> event type, from ``x = EventCls(...)``
        self.local_events: Dict[str, type] = {}
        self.event_param: Optional[str] = None
        self.event_param_type: Optional[type] = None

    def lookup(self, name: str):
        if name in self.closure:
            return self.closure[name]
        if name in self.globals:
            return self.globals[name]
        try:
            return getattr(builtins, name)
        except AttributeError:
            raise _Unresolved(name)


def _resolve(node: ast.AST, scope: _Scope):
    """Resolve a ``Name``/``Attribute``/``Constant`` chain to a value."""
    if isinstance(node, ast.Constant):
        return node.value
    if isinstance(node, ast.Name):
        return scope.lookup(node.id)
    if isinstance(node, ast.Attribute):
        base = _resolve(node.value, scope)
        try:
            return getattr(base, node.attr)
        except AttributeError:
            raise _Unresolved(node.attr)
    raise _Unresolved(ast.dump(node) if node else "<none>")


def _resolve_or_none(node: ast.AST, scope: _Scope):
    try:
        return _resolve(node, scope)
    except _Unresolved:
        return None


def _is_self_attr(node: ast.AST, attr: Optional[str] = None) -> bool:
    return (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
        and (attr is None or node.attr == attr)
    )


def _state_name_of(node: ast.AST, scope: _Scope) -> Optional[str]:
    """Resolve a ``goto``/``push_state`` argument to a state name."""
    value = _resolve_or_none(node, scope)
    if isinstance(value, str):
        return value
    if isinstance(value, type) and issubclass(value, State):
        return value._state_name
    return None


def _event_type_of(node: ast.AST, scope: _Scope, model: MachineModel):
    """Resolve an event expression; returns ``(type | None, forwards_param)``."""
    if isinstance(node, ast.Call):
        func = _resolve_or_none(node.func, scope)
        if isinstance(func, type) and issubclass(func, Event):
            return func, False
        return None, False
    if isinstance(node, ast.Name):
        if node.id == scope.event_param:
            return scope.event_param_type, True
        if node.id in scope.local_events:
            return scope.local_events[node.id], False
        return None, False
    if _is_self_attr(node):
        return model.attr_event_types.get(node.attr), False
    return None, False


def _target_of(node: ast.AST, scope: _Scope, model: MachineModel) -> Optional[type]:
    """Resolve a send-target expression to a machine class."""
    if _is_self_attr(node):
        if node.attr in ("id", "_id"):
            return model.cls
        return model.attr_targets.get(node.attr)
    if isinstance(node, ast.Name):
        return scope.local_creates.get(node.id)
    return None


# ---------------------------------------------------------------------------
# source handling
# ---------------------------------------------------------------------------
_SOURCE_CACHE: Dict[object, Optional[Tuple[ast.FunctionDef, str, int]]] = {}


def _function_ast(func) -> Optional[Tuple[ast.FunctionDef, str, int]]:
    """``(funcdef, file, line_offset)`` for ``func``; None when unavailable.

    Line ``L`` (1-based) inside the parsed snippet corresponds to file line
    ``line_offset + L``.
    """
    code = func.__code__
    cached = _SOURCE_CACHE.get(code)
    if cached is not None or code in _SOURCE_CACHE:
        return cached
    result = None
    try:
        filename = inspect.getsourcefile(func)
        lines, start = inspect.getsourcelines(func)
    except (OSError, TypeError):
        filename = None
    if filename is not None:
        try:
            tree = ast.parse(textwrap.dedent("".join(lines)))
        except SyntaxError:
            tree = None
        if tree is not None:
            for node in ast.walk(tree):
                if isinstance(node, ast.FunctionDef) and node.name == code.co_name:
                    result = (node, filename, start - 1)
                    break
    _SOURCE_CACHE[code] = result
    return result


def _abs_ref(node: ast.AST, filename: str, offset: int) -> SourceRef:
    return SourceRef(filename, offset + node.lineno)


# ---------------------------------------------------------------------------
# class inventory / scopes
# ---------------------------------------------------------------------------
def _own_functions(cls: type) -> Dict[str, types.FunctionType]:
    """Plain functions defined on ``cls`` and its non-framework bases.

    Handler functions declared inside nested ``State`` classes are included
    through the mangled copies the spec build hoists onto the owner class.
    """
    funcs: Dict[str, types.FunctionType] = {}
    for klass in reversed(cls.__mro__):
        if klass in (object, Machine, Monitor):
            continue
        if not issubclass(klass, (Machine, Monitor)):
            continue
        for name, attr in vars(klass).items():
            if isinstance(attr, types.FunctionType):
                funcs[name] = attr
    return funcs


def _method_states(spec, funcs: Dict[str, types.FunctionType], initial: str) -> Dict[str, Set[str]]:
    bound: Dict[str, Set[str]] = {}
    for (state, _event_type), info in spec.handlers.items():
        bound.setdefault(info.method_name, set()).add(state)
    for state, method_name in spec.entry_actions.items():
        bound.setdefault(method_name, set()).add(state)
    for state, method_name in spec.exit_actions.items():
        bound.setdefault(method_name, set()).add(state)
    scopes: Dict[str, Set[str]] = {}
    for name in funcs:
        if name in bound:
            scopes[name] = bound[name]
        elif name == "on_start":
            # on_start runs while the machine sits in its initial state
            scopes[name] = {initial}
        else:
            # plain helper: callable from any handler, hence any state
            scopes[name] = {ANY_STATE}
    return scopes


def _declared_event_types(spec) -> Dict[str, Set[type]]:
    declared: Dict[str, Set[type]] = {}
    for (_state, _etype), info in spec.handlers.items():
        declared.setdefault(info.method_name, set()).add(info.event_type)
    return declared


# ---------------------------------------------------------------------------
# main extraction
# ---------------------------------------------------------------------------
_MODEL_CACHE: Dict[type, MachineModel] = {}


def clear_model_cache() -> None:
    """Drop memoized models (tests defining throwaway classes use this)."""
    _MODEL_CACHE.clear()
    _CONFINED_CLASS_CACHE.clear()
    _CONFINED_CTOR_CACHE.clear()


def extract_machine_model(cls: type) -> MachineModel:
    """Build (and memoize) the static summary for one machine/monitor class."""
    cached = _MODEL_CACHE.get(cls)
    if cached is not None:
        return cached

    kind = "monitor" if issubclass(cls, Monitor) else "machine"
    spec = cls.spec() if hasattr(cls, "spec") else build_spec(cls)
    initial = (
        spec.initial_state
        if spec.initial_state is not None
        else getattr(cls, "initial_state", "init")
    )
    try:
        filename = inspect.getsourcefile(cls) or "<unknown>"
        class_lines, class_line = inspect.getsourcelines(cls)
        class_end = class_line + max(len(class_lines) - 1, 0)
    except (OSError, TypeError):
        filename, class_line, class_end = "<unknown>", 0, 0

    model = MachineModel(
        cls=cls,
        kind=kind,
        spec=spec,
        module=cls.__module__,
        file=filename,
        line=class_line,
        end_line=class_end,
        initial=initial,
        ignore_unhandled=bool(getattr(cls, "ignore_unhandled_events", False)),
    )
    if kind == "monitor":
        model.hot_states = set(spec.hot_states) | set(getattr(cls, "hot_states", ()) or ())

    funcs = _own_functions(cls)
    scopes = _method_states(spec, funcs, initial)
    declared_events = _declared_event_types(spec)

    # attribute summaries: ``self.X = ...`` assignments across every method
    model.attr_targets = _attr_map(cls, funcs, _attr_create_value)
    model.attr_event_types = _attr_map(cls, funcs, _attr_event_value)
    container_attrs = _container_attrs(cls, funcs)
    set_attrs = _set_attrs(cls, funcs)
    # attrs holding a fresh, provably effect-confined helper object: method
    # calls on them stay inside this machine's heap (v2 external discipline)
    confined_objects = {
        attr
        for attr, target in _attr_map(cls, funcs, _attr_ctor_value).items()
        if _is_effect_confined_class(target)
    }

    for name, func in sorted(funcs.items()):
        info = _function_ast(func)
        if info is None:
            model.partial = True
            continue
        fdef, fname, offset = info
        model.method_refs[name] = SourceRef(fname, offset + fdef.lineno)
        states = tuple(sorted(scopes.get(name, {ANY_STATE})))
        model.method_states[name] = set(states)
        scope = _Scope(func, cls)
        etypes = declared_events.get(name, set())
        if len(etypes) == 1:
            scope.event_param_type = next(iter(etypes))
        args = fdef.args.args
        if len(args) >= 2 and args[0].arg == "self":
            scope.event_param = args[1].arg
        _extract_function(
            model, fdef, fname, offset, scope, name, states,
            container_attrs, confined_objects, set_attrs,
        )

    _MODEL_CACHE[cls] = model
    return model


def _attr_create_value(node: ast.AST, scope: _Scope):
    """Value summary for ``self.X = <node>`` as a machine-target source."""
    if (
        isinstance(node, ast.Call)
        and _is_self_attr(node.func, "create")
        and node.args
    ):
        target = _resolve_or_none(node.args[0], scope)
        if isinstance(target, type) and issubclass(target, (Machine, Monitor)):
            return target
    return None


def _attr_event_value(node: ast.AST, scope: _Scope):
    """Value summary for ``self.X = <node>`` as an event-type source."""
    if isinstance(node, ast.Call):
        func = _resolve_or_none(node.func, scope)
        if isinstance(func, type) and issubclass(func, Event):
            return func
    return None


def _attr_map(cls: type, funcs, classify) -> Dict[str, Optional[type]]:
    """``self.X`` attribute name -> class, when *every* assignment agrees."""
    values: Dict[str, Set[Optional[type]]] = {}
    for _name, func in funcs.items():
        info = _function_ast(func)
        if info is None:
            continue
        fdef, _fname, _offset = info
        scope = _Scope(func, cls)
        for node in ast.walk(fdef):
            if not isinstance(node, ast.Assign):
                continue
            for target in node.targets:
                if _is_self_attr(target):
                    values.setdefault(target.attr, set()).add(
                        classify(node.value, scope)
                    )
    return {
        attr: next(iter(kinds))
        for attr, kinds in values.items()
        if len(kinds) == 1 and next(iter(kinds)) is not None
    }


def _extract_function(
    model: MachineModel,
    fdef: ast.FunctionDef,
    filename: str,
    offset: int,
    scope: _Scope,
    method: str,
    states: Tuple[str, ...],
    container_attrs: Set[str],
    confined_objects: Set[str] = frozenset(),
    set_attrs: Set[str] = frozenset(),
) -> None:
    # first pass: local bindings (create results, locally built events, local
    # names provably bound to fresh containers, and local names provably
    # bound to members of a confined container attribute)
    container_locals: Set[str] = set()
    tainted_locals: Set[str] = set()
    member_verdicts: Dict[str, List[Optional[str]]] = {}
    classified_stores: Set[int] = set()  # Name nodes already given a verdict
    for arg in ast.walk(fdef.args):
        if isinstance(arg, ast.arg):
            # a parameter is a binding our assignment scan never sees
            member_verdicts.setdefault(arg.arg, []).append(None)
    for node in ast.walk(fdef):
        if isinstance(node, (ast.For, ast.AsyncFor, ast.comprehension)):
            for inner in ast.walk(node.target):
                if isinstance(inner, ast.Name):
                    tainted_locals.add(inner.id)
                    member_verdicts.setdefault(inner.id, []).append(None)
            continue
        if isinstance(node, ast.AugAssign) and isinstance(node.target, ast.Name):
            tainted_locals.add(node.target.id)
            member_verdicts.setdefault(node.target.id, []).append(None)
            continue
        if not isinstance(node, ast.Assign) or len(node.targets) != 1:
            continue
        target = node.targets[0]
        if not isinstance(target, ast.Name):
            for inner in ast.walk(target):
                if isinstance(inner, ast.Name):
                    tainted_locals.add(inner.id)
                    member_verdicts.setdefault(inner.id, []).append(None)
            continue
        member_verdicts.setdefault(target.id, []).append(
            _member_read_attr(node.value, container_attrs)
        )
        classified_stores.add(id(target))
        if _is_container_expr(node.value, scope):
            container_locals.add(target.id)
        else:
            tainted_locals.add(target.id)
        created = _attr_create_value(node.value, scope)
        if created is not None:
            scope.local_creates[target.id] = created
        event = _attr_event_value(node.value, scope)
        if event is not None:
            scope.local_events[target.id] = event
    local_containers = container_locals - tainted_locals
    # catch-all: every other way a name can be (re)bound — walrus, with-as,
    # del, imports, except-as, match captures — disqualifies it, because the
    # scan above never saw what it was bound to
    for node in ast.walk(fdef):
        if (
            isinstance(node, ast.Name)
            and isinstance(node.ctx, (ast.Store, ast.Del))
            and id(node) not in classified_stores
        ):
            member_verdicts.setdefault(node.id, []).append(None)
        elif isinstance(node, (ast.Import, ast.ImportFrom)):
            for alias in node.names:
                bound = (alias.asname or alias.name).split(".")[0]
                member_verdicts.setdefault(bound, []).append(None)
        elif isinstance(node, ast.ExceptHandler) and node.name:
            member_verdicts.setdefault(node.name, []).append(None)
        elif hasattr(ast, "MatchAs") and isinstance(
            node, (ast.MatchAs, ast.MatchStar)
        ) and node.name:
            member_verdicts.setdefault(node.name, []).append(None)
        elif hasattr(ast, "MatchMapping") and isinstance(node, ast.MatchMapping) and node.rest:
            member_verdicts.setdefault(node.rest, []).append(None)
    # every binding of the name must read a member of the same container
    # (the scan is flow-insensitive, so one divergent binding disqualifies)
    member_locals: Dict[str, str] = {
        name: verdicts[0]
        for name, verdicts in member_verdicts.items()
        if verdicts[0] is not None and all(v == verdicts[0] for v in verdicts)
    }
    # the received-event parameter, when nothing in the body rebinds it (its
    # only binding is the parameter itself); an ``event.f`` send target is
    # then resolvable at choice time off the head event instance
    event_param_stable = (
        scope.event_param
        if scope.event_param
        and len(member_verdicts.get(scope.event_param, [None, None])) == 1
        else None
    )
    # fields attached to locally built events after construction
    # (``evt = E(...); evt.extra = ...``): a may-set the dataflow layer folds
    # into each site's provided-field union
    event_attr_writes: Dict[str, Set[str]] = {}
    for node in ast.walk(fdef):
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, ast.AugAssign):
            targets = [node.target]
        else:
            continue
        for target in targets:
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id in scope.local_events
            ):
                event_attr_writes.setdefault(target.value.id, set()).add(target.attr)

    def _payload_extra(event_node: ast.AST) -> Tuple[str, ...]:
        if isinstance(event_node, ast.Name):
            return tuple(sorted(event_attr_writes.get(event_node.id, ())))
        return ()

    # parent links: needed to find the loop (if any) enclosing a send
    parents: Dict[ast.AST, ast.AST] = {}
    for node in ast.walk(fdef):
        for child in ast.iter_child_nodes(node):
            parents[child] = node

    # Nodes excluded from the dispatch-time effect analysis:
    #
    # * decorators and argument defaults run at class-definition time, not
    #   during a dispatch;
    # * suites guarded by ``self._runtime.wall_clock`` model production-only
    #   behavior — the flag is a class attribute that is statically False on
    #   every controlled runtime, and both the analyzer's rules and the
    #   independence table reason exclusively about controlled executions,
    #   so the guarded suite is dead code for every explorable schedule.
    skipped_nodes: Set[int] = set()
    for def_time in [*fdef.decorator_list, fdef.args]:
        for node in ast.walk(def_time):
            skipped_nodes.add(id(node))
    for node in ast.walk(fdef):
        if not isinstance(node, ast.If):
            continue
        test = node.test
        negated = isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not)
        if negated:
            test = test.operand
        if not (_is_runtime_attr(test) and test.attr == "wall_clock"):
            continue
        for stmt in node.orelse if negated else node.body:
            for inner in ast.walk(stmt):
                skipped_nodes.add(id(inner))

    # a send is a must-fact only when nothing can skip it: no conditional
    # ancestor and no early exit anywhere in the method
    has_exit = any(
        isinstance(n, (ast.Return, ast.Raise)) and id(n) not in skipped_nodes
        for n in ast.walk(fdef)
    )

    def _is_unconditional(node: ast.AST) -> bool:
        if has_exit:
            return False
        cursor = parents.get(node)
        while cursor is not None and cursor is not fdef:
            if isinstance(cursor, _CONDITIONAL_NODES):
                return False
            cursor = parents.get(cursor)
        return True

    def _enclosing_loop(node: ast.AST):
        cursor = parents.get(node)
        while cursor is not None and cursor is not fdef:
            if isinstance(cursor, (ast.For, ast.While)):
                return cursor
            cursor = parents.get(cursor)
        return None

    def _rebound_within(loop: ast.AST, key) -> bool:
        for inner in ast.walk(loop):
            if isinstance(inner, ast.Assign):
                for target in inner.targets:
                    if _alias_key(target) == key:
                        return True
            elif isinstance(inner, (ast.For,)) and _alias_key(inner.target) == key:
                return True
        return False

    def _record_alias_send(call: ast.Call, expr: ast.AST, event_type, forwards) -> None:
        key = _alias_key(expr)
        if key is None:
            return
        loop = _enclosing_loop(call)
        model.alias_sends.append(
            AliasSend(
                key=key,
                event_type=event_type,
                forwards_param=forwards,
                method=method,
                ref=_abs_ref(call, filename, offset),
                loop_reuses_instance=loop is not None and not _rebound_within(loop, key),
            )
        )

    # second pass: calls, plus everything that can taint the method as
    # "external" — an effect the event-level model cannot account for.
    # ``external_legacy`` marks sites only the *v1* discipline tainted (the
    # current one proves them confined); the v1 table builder unions it back
    # in so version-1 footprints keep their historical shape.
    external = False
    external_legacy = False
    for node in ast.walk(fdef):
        if id(node) in skipped_nodes:
            continue
        if isinstance(node, (ast.Global, ast.Nonlocal)):
            external = True
            continue
        if isinstance(node, ast.Name):
            if node.id == "self":
                parent = parents.get(node)
                if not (isinstance(parent, ast.Attribute) and parent.value is node):
                    # bare ``self`` escaping (argument, container element,
                    # ...): the callee could do anything with the machine —
                    # unless the callee is a plain/confined constructor that
                    # provably only binds the reference
                    if _self_escapes_to_confined_ctor(node, parents, scope):
                        external_legacy = True
                    else:
                        external = True
            elif isinstance(node.ctx, ast.Load):
                # a bare reference to a plain function (e.g. passed as a
                # predicate) defers a call our call rules never see
                value = _resolve_or_none(node, scope)
                if isinstance(value, types.FunctionType):
                    external = True
            continue
        if _is_self_attr(node):
            parent = parents.get(node)
            if not (isinstance(parent, ast.Call) and parent.func is node):
                # ``self.helper`` referenced without calling it: treat it as
                # a call edge so the closure still covers its effects
                candidate = getattr(model.cls, node.attr, None)
                if isinstance(candidate, types.FunctionType):
                    model.method_calls.setdefault(method, set()).add(node.attr)
        if (
            isinstance(node, (ast.Lambda, ast.FunctionDef, ast.AsyncFunctionDef))
            and node is not fdef
        ):
            # a deferred body: any framework effect inside it would run at an
            # unpredictable time, outside this dispatch's footprint
            for inner in ast.walk(node):
                if (
                    isinstance(inner, ast.Call)
                    and _is_self_attr(inner.func)
                    and inner.func.attr in _EFFECT_VERBS
                ):
                    external = True
            continue
        if isinstance(node, ast.For):
            unordered = _is_set_expr(node.iter, scope) or (
                _is_self_attr(node.iter) and node.iter.attr in set_attrs
            )
            if unordered and any(
                isinstance(inner, ast.Call)
                and _is_self_attr(inner.func)
                and inner.func.attr in _EFFECT_VERBS
                and id(inner) not in skipped_nodes
                for stmt in node.body
                for inner in ast.walk(stmt)
            ):
                model.nondet_sites.append(
                    NondetSite(
                        reason=(
                            "iterates over an unordered set while producing "
                            "framework effects, so send/create order depends "
                            "on interpreter hash order"
                        ),
                        method=method,
                        ref=_abs_ref(node, filename, offset),
                    )
                )
        if not isinstance(node, ast.Call):
            continue
        ref = _abs_ref(node, filename, offset)
        nondet_reason = _nondet_call_reason(node, scope)
        if nondet_reason is not None:
            model.nondet_sites.append(
                NondetSite(reason=nondet_reason, method=method, ref=ref)
            )
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr in _MUTATING_METHODS
            and not (isinstance(func.value, ast.Name) and func.value.id == "self")
        ):
            key = _alias_key(func.value)
            if key is not None:
                model.alias_mutations.append(
                    AliasMutation(key=key, method=method, ref=ref)
                )
        if _is_self_attr(func):
            verb = func.attr
            if verb == "send":
                if len(node.args) < 2:
                    external = True
                    continue
                event_type, forwards = _event_type_of(node.args[1], scope, model)
                model.sends.append(
                    SendSite(
                        event_type=event_type,
                        target=_target_of(node.args[0], scope, model),
                        states=states,
                        method=method,
                        ref=ref,
                        event_expr=ast.unparse(node.args[1]),
                        forwards_param=forwards,
                        unconditional=_is_unconditional(node),
                        payload_fields=_payload_fields(node.args[1], event_type),
                        payload_extra=_payload_extra(node.args[1]),
                        target_expr=_target_expr_of(
                            node.args[0], scope, container_attrs, member_locals,
                            event_param_stable,
                        ),
                    )
                )
                _record_alias_send(node, node.args[1], event_type, forwards)
            elif verb == "raise_event":
                if not node.args:
                    external = True
                    continue
                event_type, forwards = _event_type_of(node.args[0], scope, model)
                model.raises.append(
                    RaiseSite(
                        event_type=event_type,
                        states=states,
                        method=method,
                        ref=ref,
                        event_expr=ast.unparse(node.args[0]),
                        unconditional=_is_unconditional(node),
                        payload_fields=_payload_fields(node.args[0], event_type),
                        payload_extra=_payload_extra(node.args[0]),
                    )
                )
                _record_alias_send(node, node.args[0], event_type, forwards)
            elif verb == "notify_monitor":
                if len(node.args) < 2:
                    external = True
                    continue
                monitor = _resolve_or_none(node.args[0], scope)
                if not (isinstance(monitor, type) and issubclass(monitor, Monitor)):
                    monitor = None
                event_type, _ = _event_type_of(node.args[1], scope, model)
                model.notifies.append(
                    NotifySite(
                        monitor=monitor,
                        event_type=event_type,
                        states=states,
                        method=method,
                        ref=ref,
                        payload_fields=_payload_fields(node.args[1], event_type),
                        payload_extra=_payload_extra(node.args[1]),
                    )
                )
            elif verb in ("goto", "push_state") and node.args:
                dst = _state_name_of(node.args[0], scope)
                kind = GOTO if verb == "goto" else PUSH
                for src in states:
                    model.edges.append(
                        TransitionEdge(src=src, dst=dst, kind=kind, method=method, ref=ref)
                    )
            elif verb == "pop_state":
                model.pops.append(PopSite(states=states, method=method, ref=ref))
            elif verb == "create":
                if not node.args:
                    external = True
                    continue
                created = _resolve_or_none(node.args[0], scope)
                if not (isinstance(created, type) and issubclass(created, (Machine, Monitor))):
                    created = None
                model.creates.append(CreateSite(machine=created, method=method, ref=ref))
            elif verb == "halt":
                model.method_halts.add(method)
            elif verb == "count_pending":
                if not node.args:
                    external = True
                    continue
                model.queries.append(
                    QuerySite(
                        target_expr=_target_expr_of(
                            node.args[0], scope, container_attrs, member_locals,
                            event_param_stable,
                        ),
                        method=method,
                        ref=ref,
                    )
                )
            elif verb in _BENIGN_SELF_VERBS:
                pass
            else:
                # ``self.helper(...)``: an own method (followed through the
                # call graph) or something we cannot name — the independence
                # layer degrades unresolvable entries to external
                model.method_calls.setdefault(method, set()).add(verb)
        elif _is_runtime_attr(func):
            if func.attr in ("has_pending_event", "count_pending_events") and node.args:
                model.queries.append(
                    QuerySite(
                        target_expr=_target_expr_of(
                            node.args[0], scope, container_attrs, member_locals,
                            event_param_stable,
                        ),
                        method=method,
                        ref=ref,
                    )
                )
            else:
                external = True
        elif isinstance(func, ast.Attribute):
            receiver = func.value
            confined_v1 = (
                isinstance(receiver, ast.Constant)
                or _is_container_expr(receiver, scope)
                or (_is_self_attr(receiver) and receiver.attr in container_attrs)
                or (isinstance(receiver, ast.Name) and receiver.id in local_containers)
            )
            confined = confined_v1 or (
                _is_self_attr(receiver) and receiver.attr in confined_objects
            )
            if not confined:
                # a method call on an object this machine does not confine:
                # its effects are invisible to the event-level model
                external = True
            else:
                if not confined_v1:
                    # v2-only fact: a call on an effect-confined helper
                    # object stays inside this machine's heap
                    external_legacy = True
                if (
                    _is_self_attr(receiver)
                    and receiver.attr in container_attrs
                    and func.attr not in _CONTAINER_READONLY
                ):
                    # the call may insert values the model cannot prove
                    # fresh, which blocks choice-time ``attr_item``
                    # resolution
                    model.method_container_stores.setdefault(method, set()).add(
                        receiver.attr
                    )
        else:
            resolved = _resolve_or_none(func, scope)
            if resolved is Receive:
                for arg in node.args:
                    event_type = _resolve_or_none(arg, scope)
                    if isinstance(event_type, type) and issubclass(event_type, Event):
                        model.receive_types.add(event_type)
                    else:
                        model.receives_unknown = True
            elif any(resolved is fn for fn in _BENIGN_CALLABLES):
                pass
            elif isinstance(resolved, type) and (
                issubclass(resolved, BaseException) or _is_plain_ctor(resolved)
            ):
                pass
            elif isinstance(resolved, type) and _ctor_is_confined(resolved):
                # v2-only fact: the constructor runs only confined code
                external_legacy = True
            else:
                external = True

    # third pass: assignment-shaped mutations and sender-side retentions,
    # plus the store-confinement check for the independence footprint
    def _store_is_confined(target: ast.AST) -> bool:
        if isinstance(target, ast.Name):
            return True  # local rebind
        if isinstance(target, (ast.Tuple, ast.List)):
            return all(_store_is_confined(element) for element in target.elts)
        if isinstance(target, ast.Starred):
            return _store_is_confined(target.value)
        if _is_self_attr(target):
            return True  # own-attribute rebind
        if isinstance(target, ast.Subscript):
            base = target.value
            if _is_self_attr(base) and base.attr in container_attrs:
                return True
            if isinstance(base, ast.Name) and base.id in local_containers:
                return True
        return False

    for node in ast.walk(fdef):
        if id(node) in skipped_nodes:
            continue
        if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign, ast.Delete)):
            if isinstance(node, ast.Assign):
                targets = node.targets
            elif isinstance(node, ast.Delete):
                targets = node.targets
            else:
                targets = [node.target]
            for target in targets:
                if not _store_is_confined(target):
                    # writing through an object this machine does not own —
                    # e.g. mutating a payload or a shared table
                    external = True
                if (
                    isinstance(target, ast.Subscript)
                    and _is_self_attr(target.value)
                    and target.value.attr in container_attrs
                    and not isinstance(node, ast.Delete)
                ):
                    # ``self.X[k] = v`` grows the membership of a confined
                    # container; harmless for ``attr_item`` resolution only
                    # when ``v`` is a machine created within this dispatch
                    stored = getattr(node, "value", None)
                    fresh = (
                        isinstance(node, ast.Assign)
                        and isinstance(stored, ast.Name)
                        and stored.id in scope.local_creates
                    )
                    if not fresh:
                        model.method_container_stores.setdefault(
                            method, set()
                        ).add(target.value.attr)
                for inner in ast.walk(target):
                    if _is_self_attr(inner) and inner is target:
                        model.method_attr_stores.setdefault(method, set()).add(
                            inner.attr
                        )
        if isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                if isinstance(target, (ast.Attribute, ast.Subscript)):
                    key = _alias_key(target.value)
                    # ``self.X = ...`` rebinds an attribute, it mutates no
                    # payload; ``x.field = ...`` / ``self.X[k] = ...`` do.
                    if key is not None and key != ("name", "self"):
                        model.alias_mutations.append(
                            AliasMutation(
                                key=key,
                                method=method,
                                ref=_abs_ref(node, filename, offset),
                            )
                        )
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if _is_self_attr(target):
                    key = _alias_key(node.value)
                    if key is not None and key[0] == "name" and key[1] != "self":
                        model.alias_retentions.append(
                            AliasRetention(
                                key=key,
                                method=method,
                                ref=_abs_ref(node, filename, offset),
                            )
                        )
    if external:
        model.method_external.add(method)
    elif external_legacy:
        model.method_external_legacy.add(method)

    # payload fields read off the received-event parameter (field-sensitive
    # dataflow); None = the parameter escapes, so any field may be read
    if scope.event_param:
        model.handler_field_reads[method] = _event_param_reads(
            fdef, scope.event_param, parents, skipped_nodes, scope
        )
    else:
        model.handler_field_reads[method] = frozenset()

    # referenced machine/monitor classes, for program-closure discovery
    for code in _iter_code_objects(scope.func.__code__):
        for name in set(code.co_names) | set(code.co_freevars):
            try:
                value = scope.lookup(name)
            except _Unresolved:
                continue
            if (
                isinstance(value, type)
                and issubclass(value, (Machine, Monitor))
                and value not in (Machine, Monitor)
            ):
                model.referenced.add(value)


def _event_param_reads(
    fdef: ast.FunctionDef,
    param: str,
    parents: Dict[ast.AST, ast.AST],
    skipped_nodes: Set[int],
    scope: _Scope,
) -> Optional[frozenset]:
    """Payload field names ``fdef`` reads off its event parameter.

    Every use of the parameter must be a plain ``event.f`` attribute load
    (or an ``isinstance(event, T)`` type test).  Any other use — rebinding,
    attribute stores, forwarding into a call, ``hasattr``/``getattr``
    indirection, container membership — makes the read set unknowable and
    returns ``None``, the "any field may be read" verdict.
    """
    reads: Set[str] = set()
    for node in ast.walk(fdef):
        if id(node) in skipped_nodes:
            continue
        if not (isinstance(node, ast.Name) and node.id == param):
            continue
        if not isinstance(node.ctx, ast.Load):
            return None  # rebound or deleted: the name no longer names the event
        parent = parents.get(node)
        if isinstance(parent, ast.Attribute) and parent.value is node:
            if isinstance(parent.ctx, ast.Load):
                reads.add(parent.attr)
                continue
            return None  # ``event.f = ...`` / ``del event.f``
        if isinstance(parent, ast.Call) and node in parent.args:
            resolved = _resolve_or_none(parent.func, scope)
            if resolved is isinstance and parent.args and parent.args[0] is node:
                continue  # isinstance(event, T) reads no payload field
            return None  # escapes into a call
        return None  # comparison, store, container element, yield, ...
    return frozenset(reads)


# ---------------------------------------------------------------------------
# program closure + scenario discovery
# ---------------------------------------------------------------------------
def _iter_code_objects(code) -> Iterable[types.CodeType]:
    yield code
    for const in code.co_consts:
        if isinstance(const, types.CodeType):
            yield from _iter_code_objects(const)


def build_program(roots: Iterable[type]) -> ProgramModel:
    """Extract models for ``roots`` plus every machine they create/reference."""
    program = ProgramModel()
    frontier: List[type] = [cls for cls in roots]
    seen: Set[type] = set()
    while frontier:
        cls = frontier.pop()
        if cls in seen or cls in (Machine, Monitor):
            continue
        seen.add(cls)
        model = extract_machine_model(cls)
        program.add(model)
        related: Set[type] = set(model.referenced)
        related.update(site.machine for site in model.creates if site.machine)
        related.update(site.monitor for site in model.notifies if site.monitor)
        for other in related:
            if other not in seen:
                frontier.append(other)
    return program


def discover_classes(build) -> Set[type]:
    """Machine/monitor classes reachable from a scenario's ``build`` factory.

    Walks the factory's code objects (including nested closures and lambdas,
    whose raw source is often unparseable) resolving every referenced global,
    free variable and default argument; recurses into functions from the same
    package tree.  This over-approximates — e.g. a factory with a
    ``store_cls=FlushStoreMachine`` default contributes that default even when
    a caller overrides it — which is the safe direction for analysis coverage.
    """
    return _discover_types(build, (Machine, Monitor))


def discover_event_types(build) -> Set[type]:
    """Event types a scenario's ``build`` factory references directly.

    The entry function may construct and post events no machine ever sends
    (driver kick-offs); the dead-event rule must count those as produced.
    """
    return _discover_types(build, (Event,))


def _discover_types(build, bases: Tuple[type, ...]) -> Set[type]:
    classes: Set[type] = set()
    seen: Set[object] = set()
    roots = {"repro"}
    module = getattr(build, "__module__", None)
    if module:
        roots.add(module.split(".")[0])
    work: List[object] = [build]
    while work:
        obj = work.pop()
        if isinstance(obj, type):
            if issubclass(obj, bases) and obj not in bases:
                classes.add(obj)
            continue
        if isinstance(obj, functools.partial):
            work.append(obj.func)
            work.extend(obj.args)
            work.extend(obj.keywords.values())
            continue
        if isinstance(obj, types.MethodType):
            obj = obj.__func__
        if not isinstance(obj, types.FunctionType) or obj in seen:
            continue
        seen.add(obj)
        obj_module = getattr(obj, "__module__", "") or ""
        if obj is not build and obj_module.split(".")[0] not in roots:
            continue
        closure = _closure_env(obj)
        names: Set[str] = set()
        for code in _iter_code_objects(obj.__code__):
            names.update(code.co_names)
            names.update(code.co_freevars)
        for name in sorted(names):
            value = closure.get(name, obj.__globals__.get(name))
            if value is not None:
                work.append(value)
        try:
            signature = inspect.signature(obj)
        except (TypeError, ValueError):
            signature = None
        if signature is not None:
            for parameter in signature.parameters.values():
                if parameter.default is not inspect.Parameter.empty:
                    work.append(parameter.default)
    return classes
