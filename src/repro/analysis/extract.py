"""Layer 1: extract :class:`~repro.analysis.model.MachineModel` summaries.

Extraction walks each class's :class:`~repro.core.declarations.StateMachineSpec`
(for states, disciplines and handler bindings) plus the AST of every method
(``inspect.getsource`` + ``ast``) for the dynamic facts the spec cannot see:
``goto``/``push_state``/``pop_state`` transitions, ``send``/``raise_event``/
``notify_monitor`` sites, ``self.create(...)`` machine references and
``Receive(...)`` clauses inside generator handlers.

Name resolution is best-effort and *sound for reporting*: an expression is
resolved through the function's globals, its closure cells and attribute
chains (``module.Class.attr``); ``self.X`` attributes resolve only when every
assignment to ``X`` across the class agrees on a statically-known value.
Whatever cannot be resolved becomes ``None`` ("unknown") and the checkers
stay silent about it — dynamic code degrades analyzer coverage, never its
precision.
"""

from __future__ import annotations

import ast
import builtins
import functools
import inspect
import textwrap
import types
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.core.declarations import ANY_STATE, State, build_spec
from repro.core.events import Event, Receive
from repro.core.machine import Machine
from repro.core.monitors import Monitor

from .model import (
    GOTO,
    PUSH,
    AliasMutation,
    AliasRetention,
    AliasSend,
    CreateSite,
    MachineModel,
    NotifySite,
    PopSite,
    ProgramModel,
    RaiseSite,
    SendSite,
    SourceRef,
    TransitionEdge,
)

#: method names that mutate their receiver in place (payload-alias checker)
_MUTATING_METHODS = frozenset(
    {
        "append",
        "appendleft",
        "add",
        "clear",
        "discard",
        "extend",
        "insert",
        "pop",
        "popitem",
        "popleft",
        "remove",
        "setdefault",
        "sort",
        "reverse",
        "update",
    }
)


def _alias_key(node: ast.AST):
    """Aliasable expression key: a local name or a ``self`` attribute."""
    if isinstance(node, ast.Name):
        return ("name", node.id)
    if _is_self_attr(node):
        return ("attr", node.attr)
    return None


class _Unresolved(Exception):
    """An expression could not be statically resolved to a Python value."""


# ---------------------------------------------------------------------------
# expression resolution
# ---------------------------------------------------------------------------
def _closure_env(func) -> Dict[str, object]:
    env: Dict[str, object] = {}
    if func.__closure__:
        for name, cell in zip(func.__code__.co_freevars, func.__closure__):
            try:
                env[name] = cell.cell_contents
            except ValueError:  # still-empty cell
                pass
    return env


class _Scope:
    """Resolution context for one method body."""

    def __init__(self, func, owner: type) -> None:
        self.func = func
        self.owner = owner
        self.globals = func.__globals__
        self.closure = _closure_env(func)
        #: local name -> machine class, from ``x = self.create(Cls, ...)``
        self.local_creates: Dict[str, type] = {}
        #: local name -> event type, from ``x = EventCls(...)``
        self.local_events: Dict[str, type] = {}
        self.event_param: Optional[str] = None
        self.event_param_type: Optional[type] = None

    def lookup(self, name: str):
        if name in self.closure:
            return self.closure[name]
        if name in self.globals:
            return self.globals[name]
        try:
            return getattr(builtins, name)
        except AttributeError:
            raise _Unresolved(name)


def _resolve(node: ast.AST, scope: _Scope):
    """Resolve a ``Name``/``Attribute``/``Constant`` chain to a value."""
    if isinstance(node, ast.Constant):
        return node.value
    if isinstance(node, ast.Name):
        return scope.lookup(node.id)
    if isinstance(node, ast.Attribute):
        base = _resolve(node.value, scope)
        try:
            return getattr(base, node.attr)
        except AttributeError:
            raise _Unresolved(node.attr)
    raise _Unresolved(ast.dump(node) if node else "<none>")


def _resolve_or_none(node: ast.AST, scope: _Scope):
    try:
        return _resolve(node, scope)
    except _Unresolved:
        return None


def _is_self_attr(node: ast.AST, attr: Optional[str] = None) -> bool:
    return (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
        and (attr is None or node.attr == attr)
    )


def _state_name_of(node: ast.AST, scope: _Scope) -> Optional[str]:
    """Resolve a ``goto``/``push_state`` argument to a state name."""
    value = _resolve_or_none(node, scope)
    if isinstance(value, str):
        return value
    if isinstance(value, type) and issubclass(value, State):
        return value._state_name
    return None


def _event_type_of(node: ast.AST, scope: _Scope, model: MachineModel):
    """Resolve an event expression; returns ``(type | None, forwards_param)``."""
    if isinstance(node, ast.Call):
        func = _resolve_or_none(node.func, scope)
        if isinstance(func, type) and issubclass(func, Event):
            return func, False
        return None, False
    if isinstance(node, ast.Name):
        if node.id == scope.event_param:
            return scope.event_param_type, True
        if node.id in scope.local_events:
            return scope.local_events[node.id], False
        return None, False
    if _is_self_attr(node):
        return model.attr_event_types.get(node.attr), False
    return None, False


def _target_of(node: ast.AST, scope: _Scope, model: MachineModel) -> Optional[type]:
    """Resolve a send-target expression to a machine class."""
    if _is_self_attr(node):
        if node.attr in ("id", "_id"):
            return model.cls
        return model.attr_targets.get(node.attr)
    if isinstance(node, ast.Name):
        return scope.local_creates.get(node.id)
    return None


# ---------------------------------------------------------------------------
# source handling
# ---------------------------------------------------------------------------
_SOURCE_CACHE: Dict[object, Optional[Tuple[ast.FunctionDef, str, int]]] = {}


def _function_ast(func) -> Optional[Tuple[ast.FunctionDef, str, int]]:
    """``(funcdef, file, line_offset)`` for ``func``; None when unavailable.

    Line ``L`` (1-based) inside the parsed snippet corresponds to file line
    ``line_offset + L``.
    """
    code = func.__code__
    cached = _SOURCE_CACHE.get(code)
    if cached is not None or code in _SOURCE_CACHE:
        return cached
    result = None
    try:
        filename = inspect.getsourcefile(func)
        lines, start = inspect.getsourcelines(func)
    except (OSError, TypeError):
        filename = None
    if filename is not None:
        try:
            tree = ast.parse(textwrap.dedent("".join(lines)))
        except SyntaxError:
            tree = None
        if tree is not None:
            for node in ast.walk(tree):
                if isinstance(node, ast.FunctionDef) and node.name == code.co_name:
                    result = (node, filename, start - 1)
                    break
    _SOURCE_CACHE[code] = result
    return result


def _abs_ref(node: ast.AST, filename: str, offset: int) -> SourceRef:
    return SourceRef(filename, offset + node.lineno)


# ---------------------------------------------------------------------------
# class inventory / scopes
# ---------------------------------------------------------------------------
def _own_functions(cls: type) -> Dict[str, types.FunctionType]:
    """Plain functions defined on ``cls`` and its non-framework bases.

    Handler functions declared inside nested ``State`` classes are included
    through the mangled copies the spec build hoists onto the owner class.
    """
    funcs: Dict[str, types.FunctionType] = {}
    for klass in reversed(cls.__mro__):
        if klass in (object, Machine, Monitor):
            continue
        if not issubclass(klass, (Machine, Monitor)):
            continue
        for name, attr in vars(klass).items():
            if isinstance(attr, types.FunctionType):
                funcs[name] = attr
    return funcs


def _method_states(spec, funcs: Dict[str, types.FunctionType], initial: str) -> Dict[str, Set[str]]:
    bound: Dict[str, Set[str]] = {}
    for (state, _event_type), info in spec.handlers.items():
        bound.setdefault(info.method_name, set()).add(state)
    for state, method_name in spec.entry_actions.items():
        bound.setdefault(method_name, set()).add(state)
    for state, method_name in spec.exit_actions.items():
        bound.setdefault(method_name, set()).add(state)
    scopes: Dict[str, Set[str]] = {}
    for name in funcs:
        if name in bound:
            scopes[name] = bound[name]
        elif name == "on_start":
            # on_start runs while the machine sits in its initial state
            scopes[name] = {initial}
        else:
            # plain helper: callable from any handler, hence any state
            scopes[name] = {ANY_STATE}
    return scopes


def _declared_event_types(spec) -> Dict[str, Set[type]]:
    declared: Dict[str, Set[type]] = {}
    for (_state, _etype), info in spec.handlers.items():
        declared.setdefault(info.method_name, set()).add(info.event_type)
    return declared


# ---------------------------------------------------------------------------
# main extraction
# ---------------------------------------------------------------------------
_MODEL_CACHE: Dict[type, MachineModel] = {}


def clear_model_cache() -> None:
    """Drop memoized models (tests defining throwaway classes use this)."""
    _MODEL_CACHE.clear()


def extract_machine_model(cls: type) -> MachineModel:
    """Build (and memoize) the static summary for one machine/monitor class."""
    cached = _MODEL_CACHE.get(cls)
    if cached is not None:
        return cached

    kind = "monitor" if issubclass(cls, Monitor) else "machine"
    spec = cls.spec() if hasattr(cls, "spec") else build_spec(cls)
    initial = (
        spec.initial_state
        if spec.initial_state is not None
        else getattr(cls, "initial_state", "init")
    )
    try:
        filename = inspect.getsourcefile(cls) or "<unknown>"
        _, class_line = inspect.getsourcelines(cls)
    except (OSError, TypeError):
        filename, class_line = "<unknown>", 0

    model = MachineModel(
        cls=cls,
        kind=kind,
        spec=spec,
        module=cls.__module__,
        file=filename,
        line=class_line,
        initial=initial,
        ignore_unhandled=bool(getattr(cls, "ignore_unhandled_events", False)),
    )
    if kind == "monitor":
        model.hot_states = set(spec.hot_states) | set(getattr(cls, "hot_states", ()) or ())

    funcs = _own_functions(cls)
    scopes = _method_states(spec, funcs, initial)
    declared_events = _declared_event_types(spec)

    # attribute summaries: ``self.X = ...`` assignments across every method
    model.attr_targets = _attr_map(cls, funcs, _attr_create_value)
    model.attr_event_types = _attr_map(cls, funcs, _attr_event_value)

    for name, func in sorted(funcs.items()):
        info = _function_ast(func)
        if info is None:
            model.partial = True
            continue
        fdef, fname, offset = info
        model.method_refs[name] = SourceRef(fname, offset + fdef.lineno)
        states = tuple(sorted(scopes.get(name, {ANY_STATE})))
        model.method_states[name] = set(states)
        scope = _Scope(func, cls)
        etypes = declared_events.get(name, set())
        if len(etypes) == 1:
            scope.event_param_type = next(iter(etypes))
        args = fdef.args.args
        if len(args) >= 2 and args[0].arg == "self":
            scope.event_param = args[1].arg
        _extract_function(model, fdef, fname, offset, scope, name, states)

    _MODEL_CACHE[cls] = model
    return model


def _attr_create_value(node: ast.AST, scope: _Scope):
    """Value summary for ``self.X = <node>`` as a machine-target source."""
    if (
        isinstance(node, ast.Call)
        and _is_self_attr(node.func, "create")
        and node.args
    ):
        target = _resolve_or_none(node.args[0], scope)
        if isinstance(target, type) and issubclass(target, (Machine, Monitor)):
            return target
    return None


def _attr_event_value(node: ast.AST, scope: _Scope):
    """Value summary for ``self.X = <node>`` as an event-type source."""
    if isinstance(node, ast.Call):
        func = _resolve_or_none(node.func, scope)
        if isinstance(func, type) and issubclass(func, Event):
            return func
    return None


def _attr_map(cls: type, funcs, classify) -> Dict[str, Optional[type]]:
    """``self.X`` attribute name -> class, when *every* assignment agrees."""
    values: Dict[str, Set[Optional[type]]] = {}
    for _name, func in funcs.items():
        info = _function_ast(func)
        if info is None:
            continue
        fdef, _fname, _offset = info
        scope = _Scope(func, cls)
        for node in ast.walk(fdef):
            if not isinstance(node, ast.Assign):
                continue
            for target in node.targets:
                if _is_self_attr(target):
                    values.setdefault(target.attr, set()).add(
                        classify(node.value, scope)
                    )
    return {
        attr: next(iter(kinds))
        for attr, kinds in values.items()
        if len(kinds) == 1 and next(iter(kinds)) is not None
    }


def _extract_function(
    model: MachineModel,
    fdef: ast.FunctionDef,
    filename: str,
    offset: int,
    scope: _Scope,
    method: str,
    states: Tuple[str, ...],
) -> None:
    # first pass: local bindings (create results, locally built events)
    for node in ast.walk(fdef):
        if not isinstance(node, ast.Assign) or len(node.targets) != 1:
            continue
        target = node.targets[0]
        if not isinstance(target, ast.Name):
            continue
        created = _attr_create_value(node.value, scope)
        if created is not None:
            scope.local_creates[target.id] = created
        event = _attr_event_value(node.value, scope)
        if event is not None:
            scope.local_events[target.id] = event

    # parent links: needed to find the loop (if any) enclosing a send
    parents: Dict[ast.AST, ast.AST] = {}
    for node in ast.walk(fdef):
        for child in ast.iter_child_nodes(node):
            parents[child] = node

    def _enclosing_loop(node: ast.AST):
        cursor = parents.get(node)
        while cursor is not None and cursor is not fdef:
            if isinstance(cursor, (ast.For, ast.While)):
                return cursor
            cursor = parents.get(cursor)
        return None

    def _rebound_within(loop: ast.AST, key) -> bool:
        for inner in ast.walk(loop):
            if isinstance(inner, ast.Assign):
                for target in inner.targets:
                    if _alias_key(target) == key:
                        return True
            elif isinstance(inner, (ast.For,)) and _alias_key(inner.target) == key:
                return True
        return False

    def _record_alias_send(call: ast.Call, expr: ast.AST, event_type, forwards) -> None:
        key = _alias_key(expr)
        if key is None:
            return
        loop = _enclosing_loop(call)
        model.alias_sends.append(
            AliasSend(
                key=key,
                event_type=event_type,
                forwards_param=forwards,
                method=method,
                ref=_abs_ref(call, filename, offset),
                loop_reuses_instance=loop is not None and not _rebound_within(loop, key),
            )
        )

    # second pass: calls
    for node in ast.walk(fdef):
        if not isinstance(node, ast.Call):
            continue
        ref = _abs_ref(node, filename, offset)
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr in _MUTATING_METHODS
            and not (isinstance(func.value, ast.Name) and func.value.id == "self")
        ):
            key = _alias_key(func.value)
            if key is not None:
                model.alias_mutations.append(
                    AliasMutation(key=key, method=method, ref=ref)
                )
        if _is_self_attr(func):
            verb = func.attr
            if verb == "send" and len(node.args) >= 2:
                event_type, forwards = _event_type_of(node.args[1], scope, model)
                model.sends.append(
                    SendSite(
                        event_type=event_type,
                        target=_target_of(node.args[0], scope, model),
                        states=states,
                        method=method,
                        ref=ref,
                        event_expr=ast.unparse(node.args[1]),
                        forwards_param=forwards,
                    )
                )
                _record_alias_send(node, node.args[1], event_type, forwards)
            elif verb == "raise_event" and node.args:
                event_type, forwards = _event_type_of(node.args[0], scope, model)
                model.raises.append(
                    RaiseSite(
                        event_type=event_type,
                        states=states,
                        method=method,
                        ref=ref,
                        event_expr=ast.unparse(node.args[0]),
                    )
                )
                _record_alias_send(node, node.args[0], event_type, forwards)
            elif verb == "notify_monitor" and len(node.args) >= 2:
                monitor = _resolve_or_none(node.args[0], scope)
                if not (isinstance(monitor, type) and issubclass(monitor, Monitor)):
                    monitor = None
                event_type, _ = _event_type_of(node.args[1], scope, model)
                model.notifies.append(
                    NotifySite(
                        monitor=monitor,
                        event_type=event_type,
                        states=states,
                        method=method,
                        ref=ref,
                    )
                )
            elif verb in ("goto", "push_state") and node.args:
                dst = _state_name_of(node.args[0], scope)
                kind = GOTO if verb == "goto" else PUSH
                for src in states:
                    model.edges.append(
                        TransitionEdge(src=src, dst=dst, kind=kind, method=method, ref=ref)
                    )
            elif verb == "pop_state":
                model.pops.append(PopSite(states=states, method=method, ref=ref))
            elif verb == "create" and node.args:
                created = _resolve_or_none(node.args[0], scope)
                if not (isinstance(created, type) and issubclass(created, (Machine, Monitor))):
                    created = None
                model.creates.append(CreateSite(machine=created, method=method, ref=ref))
        else:
            resolved = _resolve_or_none(func, scope)
            if resolved is Receive:
                for arg in node.args:
                    event_type = _resolve_or_none(arg, scope)
                    if isinstance(event_type, type) and issubclass(event_type, Event):
                        model.receive_types.add(event_type)
                    else:
                        model.receives_unknown = True

    # third pass: assignment-shaped mutations and sender-side retentions
    for node in ast.walk(fdef):
        if isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                if isinstance(target, (ast.Attribute, ast.Subscript)):
                    key = _alias_key(target.value)
                    # ``self.X = ...`` rebinds an attribute, it mutates no
                    # payload; ``x.field = ...`` / ``self.X[k] = ...`` do.
                    if key is not None and key != ("name", "self"):
                        model.alias_mutations.append(
                            AliasMutation(
                                key=key,
                                method=method,
                                ref=_abs_ref(node, filename, offset),
                            )
                        )
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if _is_self_attr(target):
                    key = _alias_key(node.value)
                    if key is not None and key[0] == "name" and key[1] != "self":
                        model.alias_retentions.append(
                            AliasRetention(
                                key=key,
                                method=method,
                                ref=_abs_ref(node, filename, offset),
                            )
                        )

    # referenced machine/monitor classes, for program-closure discovery
    for code in _iter_code_objects(scope.func.__code__):
        for name in set(code.co_names) | set(code.co_freevars):
            try:
                value = scope.lookup(name)
            except _Unresolved:
                continue
            if (
                isinstance(value, type)
                and issubclass(value, (Machine, Monitor))
                and value not in (Machine, Monitor)
            ):
                model.referenced.add(value)


# ---------------------------------------------------------------------------
# program closure + scenario discovery
# ---------------------------------------------------------------------------
def _iter_code_objects(code) -> Iterable[types.CodeType]:
    yield code
    for const in code.co_consts:
        if isinstance(const, types.CodeType):
            yield from _iter_code_objects(const)


def build_program(roots: Iterable[type]) -> ProgramModel:
    """Extract models for ``roots`` plus every machine they create/reference."""
    program = ProgramModel()
    frontier: List[type] = [cls for cls in roots]
    seen: Set[type] = set()
    while frontier:
        cls = frontier.pop()
        if cls in seen or cls in (Machine, Monitor):
            continue
        seen.add(cls)
        model = extract_machine_model(cls)
        program.add(model)
        related: Set[type] = set(model.referenced)
        related.update(site.machine for site in model.creates if site.machine)
        related.update(site.monitor for site in model.notifies if site.monitor)
        for other in related:
            if other not in seen:
                frontier.append(other)
    return program


def discover_classes(build) -> Set[type]:
    """Machine/monitor classes reachable from a scenario's ``build`` factory.

    Walks the factory's code objects (including nested closures and lambdas,
    whose raw source is often unparseable) resolving every referenced global,
    free variable and default argument; recurses into functions from the same
    package tree.  This over-approximates — e.g. a factory with a
    ``store_cls=FlushStoreMachine`` default contributes that default even when
    a caller overrides it — which is the safe direction for analysis coverage.
    """
    classes: Set[type] = set()
    seen: Set[object] = set()
    roots = {"repro"}
    module = getattr(build, "__module__", None)
    if module:
        roots.add(module.split(".")[0])
    work: List[object] = [build]
    while work:
        obj = work.pop()
        if isinstance(obj, type):
            if issubclass(obj, (Machine, Monitor)) and obj not in (Machine, Monitor):
                classes.add(obj)
            continue
        if isinstance(obj, functools.partial):
            work.append(obj.func)
            work.extend(obj.args)
            work.extend(obj.keywords.values())
            continue
        if isinstance(obj, types.MethodType):
            obj = obj.__func__
        if not isinstance(obj, types.FunctionType) or obj in seen:
            continue
        seen.add(obj)
        obj_module = getattr(obj, "__module__", "") or ""
        if obj is not build and obj_module.split(".")[0] not in roots:
            continue
        closure = _closure_env(obj)
        names: Set[str] = set()
        for code in _iter_code_objects(obj.__code__):
            names.update(code.co_names)
            names.update(code.co_freevars)
        for name in sorted(names):
            value = closure.get(name, obj.__globals__.get(name))
            if value is not None:
                work.append(value)
        try:
            signature = inspect.signature(obj)
        except (TypeError, ValueError):
            signature = None
        if signature is not None:
            for parameter in signature.parameters.values():
                if parameter.default is not inspect.Parameter.empty:
                    work.append(parameter.default)
    return classes
