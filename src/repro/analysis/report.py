"""Layer 3: diagnostics, inline suppression and the analysis report.

Diagnostics are deterministically ordered by ``(module, line, rule, message)``
and carry ``file:line`` anchors, so ``--json`` output is byte-stable across
runs and CI diffs stay readable.  A diagnostic is suppressed by a
``# repro: ignore[rule-id]`` comment either trailing the anchored line or on
a comment line immediately above it; ``ignore[*]`` suppresses every rule.
"""

from __future__ import annotations

import json
import linecache
import os
import re
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set, Tuple

ERROR = "error"
WARNING = "warning"

#: rank used by ``--fail-on``: a threshold of "warning" also fails on errors.
_SEVERITY_RANK = {WARNING: 1, ERROR: 2}

_SUPPRESS_RE = re.compile(r"#\s*repro:\s*ignore\[([A-Za-z0-9_*,\s-]+)\]")


@dataclass(frozen=True)
class Diagnostic:
    """One analyzer finding, anchored to a source location."""

    rule: str
    severity: str
    message: str
    owner: str  # machine/monitor class the finding is about
    module: str  # dotted module path of the anchor
    file: str
    line: int

    @property
    def anchor(self) -> str:
        return f"{display_path(self.file)}:{self.line}"

    def sort_key(self) -> Tuple[str, int, str, str]:
        return (self.module, self.line, self.rule, self.message)

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "severity": self.severity,
            "message": self.message,
            "owner": self.owner,
            "module": self.module,
            "file": display_path(self.file),
            "line": self.line,
            "anchor": self.anchor,
        }

    def render(self) -> str:
        return f"{self.anchor}: {self.severity}: {self.message} [{self.rule}]"

    def to_cache_dict(self) -> dict:
        """Round-trippable form (raw ``file``, no display normalization)."""
        return {
            "rule": self.rule,
            "severity": self.severity,
            "message": self.message,
            "owner": self.owner,
            "module": self.module,
            "file": self.file,
            "line": self.line,
        }

    @classmethod
    def from_cache_dict(cls, data: dict) -> "Diagnostic":
        return cls(
            rule=data["rule"],
            severity=data["severity"],
            message=data["message"],
            owner=data["owner"],
            module=data["module"],
            file=data["file"],
            line=data["line"],
        )


def display_path(path: str) -> str:
    """Repo-relative path when possible (keeps report output machine-neutral)."""
    try:
        relative = os.path.relpath(path)
    except ValueError:  # different drive on Windows
        return path
    return path if relative.startswith("..") else relative


def suppressed_rules(file: str, line: int) -> Set[str]:
    """Rule IDs suppressed at ``file:line`` via ``# repro: ignore[...]``.

    The comment-above form hops over contiguous decorator lines: a handler
    diagnostic anchors at its ``def`` line, so a pragma written above the
    ``@on_event(...)`` decorator (the natural spot inside a nested ``State``
    body) still attaches to the diagnostic.
    """
    rules: Set[str] = set()
    anchored = linecache.getline(file, line)
    match = _SUPPRESS_RE.search(anchored)
    if match:
        rules.update(part.strip() for part in match.group(1).split(","))
    above_line = line - 1
    while above_line > 0 and linecache.getline(file, above_line).lstrip().startswith("@"):
        above_line -= 1
    above = linecache.getline(file, above_line)
    if above.strip().startswith("#"):
        match = _SUPPRESS_RE.search(above)
        if match:
            rules.update(part.strip() for part in match.group(1).split(","))
    return rules


def is_suppressed(diagnostic: Diagnostic) -> bool:
    rules = suppressed_rules(diagnostic.file, diagnostic.line)
    return "*" in rules or diagnostic.rule in rules


@dataclass
class AnalysisReport:
    """The outcome of one analysis run (active + suppressed diagnostics)."""

    diagnostics: List[Diagnostic]
    suppressed: List[Diagnostic]
    machines: List[str]
    scenarios: List[str]

    @classmethod
    def build(
        cls,
        findings: Iterable[Diagnostic],
        machines: Iterable[str] = (),
        scenarios: Iterable[str] = (),
    ) -> "AnalysisReport":
        unique = {}
        for diagnostic in findings:
            unique.setdefault(
                (diagnostic.rule, diagnostic.file, diagnostic.line, diagnostic.message),
                diagnostic,
            )
        ordered = sorted(unique.values(), key=Diagnostic.sort_key)
        active = [d for d in ordered if not is_suppressed(d)]
        muted = [d for d in ordered if is_suppressed(d)]
        return cls(
            diagnostics=active,
            suppressed=muted,
            machines=sorted(set(machines)),
            scenarios=sorted(set(scenarios)),
        )

    def count(self, severity: str) -> int:
        return sum(1 for d in self.diagnostics if d.severity == severity)

    def gate_failures(self, fail_on: str) -> int:
        """Number of active diagnostics at or above the ``fail_on`` severity."""
        threshold = _SEVERITY_RANK[fail_on]
        return sum(
            1 for d in self.diagnostics if _SEVERITY_RANK[d.severity] >= threshold
        )

    def stats_dict(self, rule_catalog: Iterable[str] = ()) -> dict:
        """Per-rule active/suppressed counts; catalog rules appear even at
        zero so a rule that never fires is visibly exercised-and-clean."""
        counts: Dict[str, Dict[str, int]] = {
            rule: {"active": 0, "suppressed": 0} for rule in rule_catalog
        }
        for diagnostic in self.diagnostics:
            counts.setdefault(diagnostic.rule, {"active": 0, "suppressed": 0})[
                "active"
            ] += 1
        for diagnostic in self.suppressed:
            counts.setdefault(diagnostic.rule, {"active": 0, "suppressed": 0})[
                "suppressed"
            ] += 1
        return {"rules": {rule: counts[rule] for rule in sorted(counts)}}

    def render_stats(self, rule_catalog: Iterable[str] = ()) -> str:
        stats = self.stats_dict(rule_catalog)["rules"]
        width = max((len(rule) for rule in stats), default=4)
        lines = [f"{'rule'.ljust(width)}  active  suppressed"]
        for rule, entry in stats.items():
            lines.append(
                f"{rule.ljust(width)}  {entry['active']:>6}  {entry['suppressed']:>10}"
            )
        return "\n".join(lines)

    def to_dict(self, rule_catalog: Optional[Iterable[str]] = None) -> dict:
        data = {
            "diagnostics": [d.to_dict() for d in self.diagnostics],
            "suppressed": [d.to_dict() for d in self.suppressed],
            "machines": list(self.machines),
            "scenarios": list(self.scenarios),
            "summary": {
                "errors": self.count(ERROR),
                "warnings": self.count(WARNING),
                "suppressed": len(self.suppressed),
            },
        }
        # only added on request: the default --json payload stays byte-stable
        if rule_catalog is not None:
            data["stats"] = self.stats_dict(rule_catalog)
        return data

    def to_json(self, rule_catalog: Optional[Iterable[str]] = None) -> str:
        return json.dumps(self.to_dict(rule_catalog), indent=2, sort_keys=True)

    def to_cache_dict(self) -> dict:
        """JSON-safe round-trippable form for the on-disk analysis cache."""
        return {
            "diagnostics": [d.to_cache_dict() for d in self.diagnostics],
            "suppressed": [d.to_cache_dict() for d in self.suppressed],
            "machines": list(self.machines),
            "scenarios": list(self.scenarios),
        }

    @classmethod
    def from_cache_dict(cls, data: dict) -> "AnalysisReport":
        return cls(
            diagnostics=[Diagnostic.from_cache_dict(d) for d in data["diagnostics"]],
            suppressed=[Diagnostic.from_cache_dict(d) for d in data["suppressed"]],
            machines=list(data["machines"]),
            scenarios=list(data["scenarios"]),
        )

    def render(self) -> str:
        lines = [d.render() for d in self.diagnostics]
        lines.append(
            "{} error(s), {} warning(s), {} suppressed — "
            "{} machine(s) across {} scenario(s)".format(
                self.count(ERROR),
                self.count(WARNING),
                len(self.suppressed),
                len(self.machines),
                len(self.scenarios),
            )
        )
        return "\n".join(lines)
