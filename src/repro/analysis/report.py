"""Layer 3: diagnostics, inline suppression and the analysis report.

Diagnostics are deterministically ordered by ``(module, line, rule, message)``
and carry ``file:line`` anchors, so ``--json`` output is byte-stable across
runs and CI diffs stay readable.  A diagnostic is suppressed by a
``# repro: ignore[rule-id]`` comment either trailing the anchored line or on
a comment line immediately above it; ``ignore[*]`` suppresses every rule.
"""

from __future__ import annotations

import json
import linecache
import os
import re
from dataclasses import dataclass
from typing import Iterable, List, Set, Tuple

ERROR = "error"
WARNING = "warning"

#: rank used by ``--fail-on``: a threshold of "warning" also fails on errors.
_SEVERITY_RANK = {WARNING: 1, ERROR: 2}

_SUPPRESS_RE = re.compile(r"#\s*repro:\s*ignore\[([A-Za-z0-9_*,\s-]+)\]")


@dataclass(frozen=True)
class Diagnostic:
    """One analyzer finding, anchored to a source location."""

    rule: str
    severity: str
    message: str
    owner: str  # machine/monitor class the finding is about
    module: str  # dotted module path of the anchor
    file: str
    line: int

    @property
    def anchor(self) -> str:
        return f"{display_path(self.file)}:{self.line}"

    def sort_key(self) -> Tuple[str, int, str, str]:
        return (self.module, self.line, self.rule, self.message)

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "severity": self.severity,
            "message": self.message,
            "owner": self.owner,
            "module": self.module,
            "file": display_path(self.file),
            "line": self.line,
            "anchor": self.anchor,
        }

    def render(self) -> str:
        return f"{self.anchor}: {self.severity}: {self.message} [{self.rule}]"


def display_path(path: str) -> str:
    """Repo-relative path when possible (keeps report output machine-neutral)."""
    try:
        relative = os.path.relpath(path)
    except ValueError:  # different drive on Windows
        return path
    return path if relative.startswith("..") else relative


def suppressed_rules(file: str, line: int) -> Set[str]:
    """Rule IDs suppressed at ``file:line`` via ``# repro: ignore[...]``."""
    rules: Set[str] = set()
    anchored = linecache.getline(file, line)
    match = _SUPPRESS_RE.search(anchored)
    if match:
        rules.update(part.strip() for part in match.group(1).split(","))
    above = linecache.getline(file, line - 1)
    if above.strip().startswith("#"):
        match = _SUPPRESS_RE.search(above)
        if match:
            rules.update(part.strip() for part in match.group(1).split(","))
    return rules


def is_suppressed(diagnostic: Diagnostic) -> bool:
    rules = suppressed_rules(diagnostic.file, diagnostic.line)
    return "*" in rules or diagnostic.rule in rules


@dataclass
class AnalysisReport:
    """The outcome of one analysis run (active + suppressed diagnostics)."""

    diagnostics: List[Diagnostic]
    suppressed: List[Diagnostic]
    machines: List[str]
    scenarios: List[str]

    @classmethod
    def build(
        cls,
        findings: Iterable[Diagnostic],
        machines: Iterable[str] = (),
        scenarios: Iterable[str] = (),
    ) -> "AnalysisReport":
        unique = {}
        for diagnostic in findings:
            unique.setdefault(
                (diagnostic.rule, diagnostic.file, diagnostic.line, diagnostic.message),
                diagnostic,
            )
        ordered = sorted(unique.values(), key=Diagnostic.sort_key)
        active = [d for d in ordered if not is_suppressed(d)]
        muted = [d for d in ordered if is_suppressed(d)]
        return cls(
            diagnostics=active,
            suppressed=muted,
            machines=sorted(set(machines)),
            scenarios=sorted(set(scenarios)),
        )

    def count(self, severity: str) -> int:
        return sum(1 for d in self.diagnostics if d.severity == severity)

    def gate_failures(self, fail_on: str) -> int:
        """Number of active diagnostics at or above the ``fail_on`` severity."""
        threshold = _SEVERITY_RANK[fail_on]
        return sum(
            1 for d in self.diagnostics if _SEVERITY_RANK[d.severity] >= threshold
        )

    def to_dict(self) -> dict:
        return {
            "diagnostics": [d.to_dict() for d in self.diagnostics],
            "suppressed": [d.to_dict() for d in self.suppressed],
            "machines": list(self.machines),
            "scenarios": list(self.scenarios),
            "summary": {
                "errors": self.count(ERROR),
                "warnings": self.count(WARNING),
                "suppressed": len(self.suppressed),
            },
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    def render(self) -> str:
        lines = [d.render() for d in self.diagnostics]
        lines.append(
            "{} error(s), {} warning(s), {} suppressed — "
            "{} machine(s) across {} scenario(s)".format(
                self.count(ERROR),
                self.count(WARNING),
                len(self.suppressed),
                len(self.machines),
                len(self.scenarios),
            )
        )
        return "\n".join(lines)
