"""repro — a Python reproduction of "Uncovering Bugs in Distributed Storage
Systems during Testing (not in Production!)" (Deligiannis et al., FAST 2016).

The package provides:

* :mod:`repro.core` — a P#-style framework for modeling distributed systems as
  communicating state machines, specifying safety and liveness properties with
  monitors, and systematically testing every interleaving decision under
  controlled schedulers with deterministic replay.
* :mod:`repro.examplesys` — the contrived replication system of §2.2.
* :mod:`repro.vnext` — case study 1: Azure Storage vNext extent management.
* :mod:`repro.migratingtable` — case study 2: Live Table Migration.
* :mod:`repro.fabric` — case study 3: the Azure Service Fabric model.
* :mod:`repro.experiments` — generators for Table 1 and Table 2.
"""

from .core import (
    Event,
    Halt,
    Machine,
    MachineId,
    Monitor,
    Portfolio,
    PortfolioReport,
    ProductionRuntime,
    Receive,
    Shrinker,
    State,
    TestCase,
    TestReport,
    TestRuntime,
    TestingConfig,
    TestingEngine,
    all_scenarios,
    available_strategies,
    get_scenario,
    on_entry,
    on_event,
    on_exit,
    register_strategy,
    run_scenario,
    run_test,
    scenario,
)

__version__ = "1.1.0"

__all__ = [
    "Event",
    "Halt",
    "Machine",
    "MachineId",
    "Monitor",
    "Portfolio",
    "PortfolioReport",
    "ProductionRuntime",
    "Receive",
    "Shrinker",
    "State",
    "TestCase",
    "TestReport",
    "TestRuntime",
    "TestingConfig",
    "TestingEngine",
    "all_scenarios",
    "available_strategies",
    "get_scenario",
    "on_entry",
    "on_event",
    "on_exit",
    "register_strategy",
    "run_scenario",
    "run_test",
    "scenario",
    "__version__",
]
