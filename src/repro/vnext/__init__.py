"""Case study 1: Microsoft Azure Storage vNext extent management (§3).

The system-under-test is the :class:`~repro.vnext.extent_manager.ExtentManager`
— the component that detects Extent Node failures from missing heartbeats and
schedules extent repairs.  The P#-style harness in
:mod:`repro.vnext.harness` wraps the real Extent Manager, models the Extent
Nodes, timers and network, and checks the repair liveness property with the
:class:`~repro.vnext.harness.monitor.RepairMonitor`.
"""

from .extent import ExtentCenter, ExtentId, ExtentRecord
from .extent_manager import (
    ExtentManager,
    ExtentManagerConfig,
    NetworkEngine,
    NullNetworkEngine,
    RepairTask,
)
from .extent_node import ExtentNodeStore
from .messages import CopyRequest, CopyResponse, Heartbeat, RepairRequest, SyncReport

__all__ = [
    "CopyRequest",
    "CopyResponse",
    "ExtentCenter",
    "ExtentId",
    "ExtentManager",
    "ExtentManagerConfig",
    "ExtentNodeStore",
    "ExtentRecord",
    "Heartbeat",
    "NetworkEngine",
    "NullNetworkEngine",
    "RepairRequest",
    "RepairTask",
    "SyncReport",
]
