"""Test-entry factories for the vNext case study."""

from __future__ import annotations

from typing import Callable, Optional

from repro.core import TestRuntime
from repro.core.registry import scenario

from ..extent_manager import ExtentManagerConfig
from .machines import TestingDriverMachine
from .monitor import RepairMonitor


def build_vnext_test(
    scenario: str = TestingDriverMachine.FAILOVER,
    manager_config: Optional[ExtentManagerConfig] = None,
    num_nodes: int = 3,
) -> Callable[[TestRuntime], None]:
    """Build a test entry for one of the two vNext testing scenarios (§3.4)."""
    config = manager_config or ExtentManagerConfig()

    def test_entry(runtime: TestRuntime) -> None:
        runtime.register_monitor(RepairMonitor)
        runtime.create_machine(
            TestingDriverMachine,
            scenario=scenario,
            num_nodes=num_nodes,
            manager_config=config,
            name="TestingDriver",
        )

    return test_entry


def buggy_manager_config() -> ExtentManagerConfig:
    """The shipped Extent Manager, with the §3.6 stale-sync-report bug."""
    return ExtentManagerConfig(fix_stale_sync_report=False)


def fixed_manager_config() -> ExtentManagerConfig:
    """The Extent Manager after the fix proposed by the vNext developers."""
    return ExtentManagerConfig(fix_stale_sync_report=True)


def build_failover_test(fixed: bool = False, num_nodes: int = 3) -> Callable[[TestRuntime], None]:
    """Scenario 2: fail a nondeterministically chosen EN and launch a new one."""
    config = fixed_manager_config() if fixed else buggy_manager_config()
    return build_vnext_test(TestingDriverMachine.FAILOVER, config, num_nodes)


def build_replication_scenario_test(fixed: bool = False, num_nodes: int = 3) -> Callable[[TestRuntime], None]:
    """Scenario 1: a single replica must be replicated to the target count."""
    config = fixed_manager_config() if fixed else buggy_manager_config()
    return build_vnext_test(TestingDriverMachine.REPLICATION, config, num_nodes)


# ---------------------------------------------------------------------------
# registered scenarios (discoverable via `python -m repro list-scenarios`)
# ---------------------------------------------------------------------------
@scenario(
    "vnext/extent-node-liveness",
    tags=("vnext", "liveness", "bug", "table2"),
    expected_bug="ExtentNodeLivenessViolation",
    expected_bug_kind="liveness",
    max_steps=3000,
    case_study=1,
)
def extent_node_liveness_scenario():
    """§3.6 failover scenario against the shipped (stale-sync-report) manager."""
    return build_failover_test(fixed=False)


@scenario(
    "vnext/failover-1node",
    tags=("vnext", "liveness", "bug", "exhaustive"),
    expected_bug="ExtentNodeLivenessViolation",
    expected_bug_kind="liveness",
    max_steps=3000,
    case_study=1,
)
def failover_one_node_scenario():
    """The §3.6 failover scenario shrunk to one extent node: small enough to
    exhaust the bounded schedule space, so the exhaustive strategies (dfs,
    dpor-lite, stateful, ``run --parallel``) and their benchmark gates use
    it.  Registered by name so parallel/portfolio workers can rebuild it in
    a fresh (spawn-started) process."""
    return build_failover_test(fixed=False, num_nodes=1)


@scenario(
    "vnext/failover-fixed",
    tags=("vnext", "clean"),
    max_steps=3000,
    case_study=1,
)
def failover_fixed_scenario():
    """§3.6 failover scenario against the fixed Extent Manager — clean run."""
    return build_failover_test(fixed=True)


@scenario(
    "vnext/replication",
    tags=("vnext", "clean"),
    max_steps=3000,
    case_study=1,
)
def replication_scenario():
    """§3.4 scenario 1: replicate a single extent replica to the target count."""
    return build_replication_scenario_test(fixed=False)
