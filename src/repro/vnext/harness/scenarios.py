"""Test-entry factories for the vNext case study."""

from __future__ import annotations

from typing import Callable, Optional

from repro.core import TestRuntime

from ..extent_manager import ExtentManagerConfig
from .machines import TestingDriverMachine
from .monitor import RepairMonitor


def build_vnext_test(
    scenario: str = TestingDriverMachine.FAILOVER,
    manager_config: Optional[ExtentManagerConfig] = None,
    num_nodes: int = 3,
) -> Callable[[TestRuntime], None]:
    """Build a test entry for one of the two vNext testing scenarios (§3.4)."""
    config = manager_config or ExtentManagerConfig()

    def test_entry(runtime: TestRuntime) -> None:
        runtime.register_monitor(RepairMonitor)
        runtime.create_machine(
            TestingDriverMachine,
            scenario=scenario,
            num_nodes=num_nodes,
            manager_config=config,
            name="TestingDriver",
        )

    return test_entry


def buggy_manager_config() -> ExtentManagerConfig:
    """The shipped Extent Manager, with the §3.6 stale-sync-report bug."""
    return ExtentManagerConfig(fix_stale_sync_report=False)


def fixed_manager_config() -> ExtentManagerConfig:
    """The Extent Manager after the fix proposed by the vNext developers."""
    return ExtentManagerConfig(fix_stale_sync_report=True)


def build_failover_test(fixed: bool = False, num_nodes: int = 3) -> Callable[[TestRuntime], None]:
    """Scenario 2: fail a nondeterministically chosen EN and launch a new one."""
    config = fixed_manager_config() if fixed else buggy_manager_config()
    return build_vnext_test(TestingDriverMachine.FAILOVER, config, num_nodes)


def build_replication_scenario_test(fixed: bool = False, num_nodes: int = 3) -> Callable[[TestRuntime], None]:
    """Scenario 1: a single replica must be replicated to the target count."""
    config = fixed_manager_config() if fixed else buggy_manager_config()
    return build_vnext_test(TestingDriverMachine.REPLICATION, config, num_nodes)
