"""P#-style test harness for the vNext Extent Manager (Figure 4)."""

from .events import (
    CopyRequestEvent,
    CopyResponseEvent,
    ExtentManagerMessageEvent,
    FailureEvent,
    NodeMessageEvent,
    NotifyExtentTracked,
    NotifyNodeFailed,
    NotifyReplicaAdded,
    RepairRequestEvent,
)
from .machines import (
    ExtentManagerMachine,
    ExtentNodeMachine,
    ModelNetworkEngine,
    TestingDriverMachine,
)
from .monitor import RepairMonitor
from .scenarios import (
    build_failover_test,
    build_replication_scenario_test,
    build_vnext_test,
    buggy_manager_config,
    fixed_manager_config,
)

__all__ = [
    "CopyRequestEvent",
    "CopyResponseEvent",
    "ExtentManagerMachine",
    "ExtentManagerMessageEvent",
    "ExtentNodeMachine",
    "FailureEvent",
    "ModelNetworkEngine",
    "NodeMessageEvent",
    "NotifyExtentTracked",
    "NotifyNodeFailed",
    "NotifyReplicaAdded",
    "RepairMonitor",
    "RepairRequestEvent",
    "TestingDriverMachine",
    "build_failover_test",
    "build_replication_scenario_test",
    "build_vnext_test",
    "buggy_manager_config",
    "fixed_manager_config",
]
