"""The RepairMonitor liveness monitor (§3.5).

The monitor tracks which ENs *truly* hold a replica of each watched extent —
independent of what the Extent Manager believes.  It is hot (state
``repairing``) whenever some watched extent has fewer than the target number
of true replicas, and cold (state ``repaired``) otherwise.  If the monitor is
still hot when a bounded execution ends, the extent was never repaired: the
liveness bug of §3.6.
"""

from __future__ import annotations

from typing import Dict, Set

from repro.core import Monitor, on_event

from ..extent import ExtentId
from .events import NotifyExtentTracked, NotifyNodeFailed, NotifyReplicaAdded


class RepairMonitor(Monitor):
    """Hot while any watched extent is missing true replicas."""

    initial_state = "repaired"
    hot_states = frozenset({"repairing"})

    def __init__(self, runtime) -> None:
        super().__init__(runtime)
        self.replica_target = 3
        self.replicas: Dict[ExtentId, Set[int]] = {}

    # ------------------------------------------------------------------
    def _fully_replicated(self) -> bool:
        return all(len(nodes) >= self.replica_target for nodes in self.replicas.values())

    def _update_temperature(self) -> None:
        if self._fully_replicated():
            if self.current_state != "repaired":
                self.goto("repaired")
        else:
            if self.current_state != "repairing":
                self.goto("repairing")

    # ------------------------------------------------------------------
    @on_event(NotifyExtentTracked)
    def track_extent(self, event: NotifyExtentTracked) -> None:
        self.replica_target = event.replica_target
        self.replicas.setdefault(event.extent_id, set())
        self._update_temperature()

    @on_event(NotifyReplicaAdded)
    def replica_added(self, event: NotifyReplicaAdded) -> None:
        self.replicas.setdefault(event.extent_id, set()).add(event.node_id)
        self._update_temperature()

    @on_event(NotifyNodeFailed)
    def node_failed(self, event: NotifyNodeFailed) -> None:
        for nodes in self.replicas.values():
            nodes.discard(event.node_id)
        self._update_temperature()

    # ------------------------------------------------------------------
    def true_replica_count(self, extent_id: ExtentId) -> int:
        """Number of live replicas the monitor has observed for ``extent_id``."""
        return len(self.replicas.get(extent_id, set()))
