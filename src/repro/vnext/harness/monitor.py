"""The RepairMonitor liveness monitor (§3.5).

The monitor tracks which ENs *truly* hold a replica of each watched extent —
independent of what the Extent Manager believes.  It is hot (state
``Repairing``) whenever some watched extent has fewer than the target number
of true replicas, and cold (state ``Repaired``) otherwise.  If the monitor is
still hot when a bounded execution ends, the extent was never repaired: the
liveness bug of §3.6.
"""

from __future__ import annotations

from typing import Dict, FrozenSet

from repro.core import Monitor, State, on_event

from ..extent import ExtentId
from .events import NotifyExtentTracked, NotifyNodeFailed, NotifyReplicaAdded


class RepairMonitor(Monitor):
    """Hot while any watched extent is missing true replicas."""

    class Repaired(State, initial=True):
        """Every watched extent currently has its target replica count."""

    class Repairing(State, hot=True):
        """Some watched extent is under-replicated; progress is required."""

    def __init__(self, runtime) -> None:
        super().__init__(runtime)
        self.replica_target = 3
        self.replicas: Dict[ExtentId, FrozenSet[int]] = {}

    # ------------------------------------------------------------------
    def _fully_replicated(self) -> bool:
        return all(len(nodes) >= self.replica_target for nodes in self.replicas.values())

    def _update_temperature(self) -> None:
        if self._fully_replicated():
            if self.current_state != "Repaired":
                self.goto(RepairMonitor.Repaired)
        else:
            if self.current_state != "Repairing":
                self.goto(RepairMonitor.Repairing)

    # ------------------------------------------------------------------
    @on_event(NotifyExtentTracked)
    def track_extent(self, event: NotifyExtentTracked) -> None:
        self.replica_target = event.replica_target
        self.replicas.setdefault(event.extent_id, frozenset())
        self._update_temperature()

    # The replica sets are updated by whole-value assignment into the
    # confined ``replicas`` dict (never by mutating a set through an alias):
    # the independence analysis can then verify that notifications stay
    # monitor-local, which keeps the notifying dispatches' footprints
    # concrete for dependence-aware search (``run --prune``).
    @on_event(NotifyReplicaAdded)
    def replica_added(self, event: NotifyReplicaAdded) -> None:
        self.replicas[event.extent_id] = self.replicas.get(
            event.extent_id, frozenset()
        ) | {event.node_id}
        self._update_temperature()

    @on_event(NotifyNodeFailed)
    def node_failed(self, event: NotifyNodeFailed) -> None:
        for extent_id in self.replicas:
            self.replicas[extent_id] = self.replicas[extent_id] - {event.node_id}
        self._update_temperature()

    # ------------------------------------------------------------------
    def true_replica_count(self, extent_id: ExtentId) -> int:
        """Number of live replicas the monitor has observed for ``extent_id``."""
        return len(self.replicas.get(extent_id, set()))
