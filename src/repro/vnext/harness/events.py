"""Events used by the vNext test harness (Figure 4 of the paper)."""

from __future__ import annotations

from repro.core import Event, MachineId

from ..extent import ExtentId


class ExtentManagerMessageEvent(Event):
    """Carries an inbound wire message (heartbeat / sync report) to the ExtMgr."""

    def __init__(self, message: object) -> None:
        self.message = message


class NodeMessageEvent(Event):
    """An outbound ExtMgr message intercepted by the modeled network engine."""

    def __init__(self, destination_node_id: int, message: object) -> None:
        self.destination_node_id = destination_node_id
        self.message = message


class RepairRequestEvent(Event):
    """A repair request relayed by the testing driver to the target EN machine."""

    def __init__(self, message: object) -> None:
        self.message = message


class CopyRequestEvent(Event):
    """EN-to-EN copy request, routed through the testing driver."""

    def __init__(self, extent_id: ExtentId, source_node_id: int, requester: MachineId, requester_node_id: int) -> None:
        self.extent_id = extent_id
        self.source_node_id = source_node_id
        self.requester = requester
        self.requester_node_id = requester_node_id


class CopyResponseEvent(Event):
    """Reply carrying (or denying) an extent replica copy."""

    def __init__(self, extent_id: ExtentId, source_node_id: int, success: bool) -> None:
        self.extent_id = extent_id
        self.source_node_id = source_node_id
        self.success = success


class FailureEvent(Event):
    """Injected by the testing driver to fail an Extent Node (§3.4)."""


class InjectFailure(Event):
    """Self-message of the testing driver that triggers the failure scenario."""


# --- monitor notifications -------------------------------------------------


class NotifyExtentTracked(Event):
    """Tell the repair monitor which extent it must watch."""

    def __init__(self, extent_id: ExtentId, replica_target: int) -> None:
        self.extent_id = extent_id
        self.replica_target = replica_target


class NotifyReplicaAdded(Event):
    """An EN now truly holds a replica of the extent."""

    def __init__(self, node_id: int, extent_id: ExtentId) -> None:
        self.node_id = node_id
        self.extent_id = extent_id


class NotifyNodeFailed(Event):
    """An EN failed; every replica it held is gone."""

    def __init__(self, node_id: int) -> None:
        self.node_id = node_id
