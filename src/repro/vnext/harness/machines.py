"""Harness machines for the vNext case study (Figure 4 of the paper).

* :class:`ExtentManagerMachine` wraps the *real*
  :class:`~repro.vnext.extent_manager.ExtentManager`; its internal timers are
  replaced with modeled timers and its network engine with
  :class:`ModelNetworkEngine`, which relays outbound messages to the testing
  driver (Figures 5 and 7).
* :class:`ExtentNodeMachine` is the modeled EN (§3.2): it reuses the real
  :class:`~repro.vnext.extent_node.ExtentNodeStore` bookkeeping, sends
  heartbeats and sync reports on modeled timer ticks, repairs extents on
  request and can be failed by the driver.
* :class:`TestingDriverMachine` builds the scenario, relays messages between
  machines and injects nondeterministic failures (§3.4).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core import Halt, Machine, MachineId, State, TimerMachine, TimerTick, on_event

from ..extent import ExtentId
from ..extent_manager import ExtentManager, ExtentManagerConfig, NetworkEngine
from ..extent_node import ExtentNodeStore
from ..messages import Heartbeat, RepairRequest, SyncReport
from .events import (
    CopyRequestEvent,
    CopyResponseEvent,
    ExtentManagerMessageEvent,
    FailureEvent,
    InjectFailure,
    NodeMessageEvent,
    NotifyExtentTracked,
    NotifyNodeFailed,
    NotifyReplicaAdded,
    RepairRequestEvent,
)
from .monitor import RepairMonitor


class ModelNetworkEngine(NetworkEngine):
    """Modeled vNext network engine (Figure 7).

    Intercepts every outbound Extent Manager message and relays it, as an
    event, to the testing driver, which dispatches it to the destination EN
    machine.
    """

    def __init__(self, machine: "ExtentManagerMachine") -> None:
        self._machine = machine

    def send_message(self, destination_node_id: int, message: object) -> None:
        self._machine.send(self._machine.driver, NodeMessageEvent(destination_node_id, message))


class ExtentManagerMachine(Machine):
    """Thin wrapper around the real Extent Manager (Figure 5)."""

    EXPIRATION_TIMER = "em-expiration"
    REPAIR_TIMER = "em-repair"

    def on_start(self, driver: MachineId, config: Optional[ExtentManagerConfig] = None) -> None:
        self.driver = driver
        self.extent_manager = ExtentManager(config=config, network=ModelNetworkEngine(self))
        # The real ExtMgr timers are disabled (DisableTimer in the paper); the
        # expiration and repair loops are driven by modeled timers instead.
        self.expiration_timer = self.create(
            TimerMachine, self.id, timer_name=self.EXPIRATION_TIMER, name="Timer-EM-expiration"
        )
        self.repair_timer = self.create(
            TimerMachine, self.id, timer_name=self.REPAIR_TIMER, name="Timer-EM-repair"
        )

    class Serving(State, initial=True):
        @on_event(ExtentManagerMessageEvent)
        def deliver_message(self, event: ExtentManagerMessageEvent) -> None:
            self.extent_manager.process_message(event.message)

        @on_event(TimerTick)
        def on_timer(self, event: TimerTick) -> None:
            if event.timer_name == self.EXPIRATION_TIMER:
                expired = self.extent_manager.run_expiration_loop()
                if expired:
                    self.log(f"expired extent nodes {expired}")
            elif event.timer_name == self.REPAIR_TIMER:
                scheduled = self.extent_manager.run_repair_loop()
                if scheduled:
                    self.log(f"scheduled repairs {scheduled}")


class ExtentNodeMachine(Machine):
    """Modeled Extent Node (§3.2)."""

    HEARTBEAT_TIMER = "en-heartbeat"
    SYNC_TIMER = "en-sync"

    def on_start(
        self,
        driver: MachineId,
        extent_manager: MachineId,
        node_id: int,
        initial_extents: Optional[List[ExtentId]] = None,
    ) -> None:
        self.driver = driver
        self.extent_manager = extent_manager
        self.node_id = node_id
        self.store = ExtentNodeStore(node_id)
        self.failed = False
        for extent_id in initial_extents or []:
            self.store.add_extent(extent_id)
        self.heartbeat_timer = self.create(
            TimerMachine, self.id, timer_name=self.HEARTBEAT_TIMER, always_fire=True,
            name=f"Timer-HB-{node_id}",
        )
        self.sync_timer = self.create(
            TimerMachine, self.id, timer_name=self.SYNC_TIMER, name=f"Timer-Sync-{node_id}"
        )

    class Serving(State, initial=True):
        # --------------------------------------------------------------
        # periodic reporting
        # --------------------------------------------------------------
        @on_event(TimerTick)
        def on_timer(self, event: TimerTick) -> None:
            if event.timer_name == self.HEARTBEAT_TIMER:
                if not self._report_in_flight(Heartbeat):
                    self.send(self.extent_manager, ExtentManagerMessageEvent(Heartbeat(self.node_id)))
            elif event.timer_name == self.SYNC_TIMER:
                if not self._report_in_flight(SyncReport):
                    self.send(self.extent_manager, ExtentManagerMessageEvent(self.store.get_sync_report()))

        # --------------------------------------------------------------
        # extent repair (modeled logic, Figure 8)
        # --------------------------------------------------------------
        @on_event(RepairRequestEvent)
        def process_repair_request(self, event: RepairRequestEvent) -> None:
            request: RepairRequest = event.message
            if self.store.has_extent(request.extent_id):
                return
            self.send(
                self.driver,
                CopyRequestEvent(request.extent_id, request.source_node_id, self.id, self.node_id),
            )

        @on_event(CopyRequestEvent)
        def process_copy_request(self, event: CopyRequestEvent) -> None:
            success = self.store.has_extent(event.extent_id)
            self.send(event.requester, CopyResponseEvent(event.extent_id, self.node_id, success))

        @on_event(CopyResponseEvent)
        def process_copy_response(self, event: CopyResponseEvent) -> None:
            if not event.success:
                return
            self.store.add_extent(event.extent_id)
            self.notify_monitor(RepairMonitor, NotifyReplicaAdded(self.node_id, event.extent_id))

        # --------------------------------------------------------------
        # failure injection (Figure 8, failure logic)
        # --------------------------------------------------------------
        @on_event(FailureEvent)
        def process_failure(self) -> None:
            self.failed = True
            self.notify_monitor(RepairMonitor, NotifyNodeFailed(self.node_id))
            self.send(self.heartbeat_timer, Halt())
            self.send(self.sync_timer, Halt())
            self.halt()

    def _report_in_flight(self, message_type: type) -> bool:
        """True while the Extent Manager has not yet consumed this node's
        previous report of ``message_type`` (a real EN's reporting period is
        much longer than the manager's processing time, so at most one report
        per node is ever outstanding)."""
        return self.count_pending(
            self.extent_manager,
            ExtentManagerMessageEvent,
            lambda event: isinstance(event.message, message_type)
            and event.message.node_id == self.node_id,
        ) > 0


class TestingDriverMachine(Machine):
    """Drives the vNext testing scenarios and relays messages (§3.4).

    Scenario ``"replication"`` launches one ExtMgr and three ENs with a single
    replica of one extent and waits for it to be replicated everywhere.
    Scenario ``"failover"`` launches three fully replicated ENs, then fails a
    nondeterministically chosen EN and launches a fresh empty EN, waiting for
    the lost replica to be repaired.
    """

    REPLICATION = "replication"
    FAILOVER = "failover"

    def on_start(
        self,
        scenario: str = FAILOVER,
        num_nodes: int = 3,
        manager_config: Optional[ExtentManagerConfig] = None,
        extent_id: Optional[ExtentId] = None,
    ) -> None:
        if scenario not in (self.REPLICATION, self.FAILOVER):
            raise ValueError(f"unknown vNext scenario {scenario!r}")
        self.scenario = scenario
        self.manager_config = manager_config or ExtentManagerConfig()
        self.extent_id = extent_id or ExtentId(1)
        self.next_node_id = 0
        self.node_machines: Dict[int, MachineId] = {}
        self.failed_nodes: set = set()

        self.extent_manager = self.create(ExtentManagerMachine, self.id, self.manager_config, name="ExtMgr")
        self.notify_monitor(
            RepairMonitor, NotifyExtentTracked(self.extent_id, self.manager_config.replica_target)
        )
        replicated_nodes = num_nodes if scenario == self.FAILOVER else 1
        for index in range(num_nodes):
            has_replica = index < replicated_nodes
            self._launch_node([self.extent_id] if has_replica else [])
        if scenario == self.FAILOVER:
            self.send(self.id, InjectFailure())

    # ------------------------------------------------------------------
    def _launch_node(self, initial_extents: List[ExtentId]) -> int:
        node_id = self.next_node_id
        self.next_node_id += 1
        machine = self.create(
            ExtentNodeMachine,
            self.id,
            self.extent_manager,
            node_id,
            list(initial_extents),
            name=f"EN-{node_id}",
        )
        self.node_machines[node_id] = machine
        for extent_id in initial_extents:
            self.notify_monitor(RepairMonitor, NotifyReplicaAdded(node_id, extent_id))
        return node_id

    class Driving(State, initial=True):
        # --------------------------------------------------------------
        # failure injection
        # --------------------------------------------------------------
        @on_event(InjectFailure)
        def inject_failure(self) -> None:
            candidates = sorted(set(self.node_machines) - self.failed_nodes)
            victim = self.choose(candidates)
            self.failed_nodes.add(victim)
            self.log(f"failing extent node {victim}")
            self.send(self.node_machines[victim], FailureEvent())
            # Launch a replacement EN with a fresh identity and no replicas.
            self._launch_node([])

        # --------------------------------------------------------------
        # message relaying
        # --------------------------------------------------------------
        @on_event(NodeMessageEvent)
        def relay_manager_message(self, event: NodeMessageEvent) -> None:
            target = self.node_machines.get(event.destination_node_id)
            if target is None or event.destination_node_id in self.failed_nodes:
                self.log(f"dropping message to unavailable node {event.destination_node_id}")
                return
            if isinstance(event.message, RepairRequest):
                self.send(target, RepairRequestEvent(event.message))
            else:
                raise TypeError(f"unexpected outbound Extent Manager message {event.message!r}")

        @on_event(CopyRequestEvent)
        def relay_copy_request(self, event: CopyRequestEvent) -> None:
            source = self.node_machines.get(event.source_node_id)
            if source is None or event.source_node_id in self.failed_nodes:
                self.send(
                    event.requester,
                    CopyResponseEvent(event.extent_id, event.source_node_id, False),
                )
                return
            self.send(source, event)
