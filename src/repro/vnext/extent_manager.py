"""The real Extent Manager: the system-under-test of case study 1 (§3).

The Extent Manager (ExtMgr) owns two data structures (Figure 6 of the paper):

* the **ExtentCenter**, mapping extents to the ENs believed to host them,
  updated from periodic sync reports; and
* the **ExtentNodeMap**, mapping ENs to the logical time of their last
  heartbeat.

Two periodic loops run over these structures:

* the **EN expiration loop** removes ENs whose heartbeats have been missing
  for longer than the expiration threshold and deletes their ExtentCenter
  records; and
* the **extent repair loop** examines every ExtentCenter record, finds extents
  with fewer replicas than the target and schedules repair tasks on live ENs.

The component is plain Python: it talks to ENs only through a
:class:`NetworkEngine`, and its periodic loops are driven externally (the
production deployment would drive them from wall-clock timers, the harness
drives them from modeled timers — §3.3).

The **organic liveness bug** of §3.6 is present by default: a sync report from
an EN that has just been expired resurrects the EN's ExtentCenter records, so
the repair loop believes all replicas are healthy while the real replica count
has dropped.  Setting ``ExtentManagerConfig.fix_stale_sync_report`` applies
the fix: sync reports from nodes that are not currently registered in the
ExtentNodeMap are ignored.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Dict, List, Optional, Set

from .extent import ExtentCenter, ExtentId
from .messages import Heartbeat, RepairRequest, SyncReport


class NetworkEngine(abc.ABC):
    """Asynchronous network interface used by the Extent Manager.

    The production implementation sends messages over sockets; the harness
    overrides it with a modeled engine that relays messages as P#-style events
    (Figure 7 of the paper).
    """

    @abc.abstractmethod
    def send_message(self, destination_node_id: int, message: object) -> None:
        """Send ``message`` to the EN identified by ``destination_node_id``."""


class NullNetworkEngine(NetworkEngine):
    """Network engine that records outbound messages without delivering them.

    Useful for unit-testing the Extent Manager logic in isolation.
    """

    def __init__(self) -> None:
        self.sent: List[tuple] = []

    def send_message(self, destination_node_id: int, message: object) -> None:
        self.sent.append((destination_node_id, message))


@dataclass
class ExtentManagerConfig:
    """Configuration and bug switch of the Extent Manager."""

    #: Desired number of replicas per extent.
    replica_target: int = 3
    #: An EN expires after this many expiration-loop ticks without a heartbeat.
    heartbeat_expiration_ticks: int = 3
    #: When false (the organic vNext bug) a sync report from an expired EN is
    #: processed as if the EN were alive, resurrecting its ExtentCenter
    #: records.  When true the fix is applied: sync reports from unregistered
    #: nodes are ignored.
    fix_stale_sync_report: bool = False


@dataclass
class RepairTask:
    """A scheduled repair: copy ``extent_id`` from ``source`` onto ``target``."""

    extent_id: ExtentId
    source_node_id: int
    target_node_id: int


class ExtentManager:
    """Manages a partition of extents: failure detection and repair scheduling."""

    def __init__(self, config: Optional[ExtentManagerConfig] = None, network: Optional[NetworkEngine] = None) -> None:
        self.config = config or ExtentManagerConfig()
        self.network: NetworkEngine = network or NullNetworkEngine()
        self.extent_center = ExtentCenter()
        self.extent_node_map: Dict[int, int] = {}
        self.removed_nodes: Set[int] = set()
        self.clock = 0
        self.repairs_scheduled: List[RepairTask] = []

    # ------------------------------------------------------------------
    # message processing
    # ------------------------------------------------------------------
    def process_message(self, message: object) -> None:
        """Entry point used by the network layer for every inbound message."""
        if isinstance(message, Heartbeat):
            self.process_heartbeat(message.node_id)
        elif isinstance(message, SyncReport):
            self.process_sync_report(message.node_id, list(message.extent_ids))
        else:
            raise TypeError(f"ExtentManager cannot process {message!r}")

    def process_heartbeat(self, node_id: int) -> None:
        """Record a heartbeat, registering the EN if it is new.

        Heartbeats always (re-)register the sender: a node that was expired by
        mistake (e.g. because its heartbeats were delayed) heals itself with
        its next heartbeat.
        """
        self.extent_node_map[node_id] = self.clock

    def process_sync_report(self, node_id: int, extent_ids: List[ExtentId]) -> None:
        """Reconcile the ExtentCenter with a sync report from ``node_id``.

        Without the fix this accepts reports from ENs that are no longer in
        the ExtentNodeMap — the root cause of the §3.6 liveness bug.
        """
        if self.config.fix_stale_sync_report and node_id not in self.extent_node_map:
            return
        self.extent_center.update_from_sync(node_id, extent_ids)

    # ------------------------------------------------------------------
    # periodic loops (driven by timers)
    # ------------------------------------------------------------------
    def run_expiration_loop(self) -> List[int]:
        """Advance the logical clock and expire ENs with missing heartbeats."""
        self.clock += 1
        expired = [
            node_id
            for node_id, last_heartbeat in self.extent_node_map.items()
            if self.clock - last_heartbeat > self.config.heartbeat_expiration_ticks
        ]
        for node_id in expired:
            del self.extent_node_map[node_id]
            self.removed_nodes.add(node_id)
            self.extent_center.remove_node(node_id)
        return expired

    def run_repair_loop(self) -> List[RepairTask]:
        """Schedule repair tasks for every extent missing replicas."""
        scheduled: List[RepairTask] = []
        live_nodes = set(self.extent_node_map)
        for extent_id in self.extent_center.extents():
            locations = self.extent_center.locations(extent_id)
            if len(locations) >= self.config.replica_target:
                continue
            sources = sorted(locations & live_nodes)
            targets = sorted(live_nodes - locations)
            if not sources or not targets:
                continue
            missing = self.config.replica_target - len(locations)
            for target in targets[:missing]:
                task = RepairTask(extent_id, sources[0], target)
                scheduled.append(task)
                self.repairs_scheduled.append(task)
                self.network.send_message(
                    target, RepairRequest(extent_id, sources[0], target)
                )
        return scheduled

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def believed_replica_count(self, extent_id: ExtentId) -> int:
        return self.extent_center.replica_count(extent_id)

    def is_registered(self, node_id: int) -> bool:
        return node_id in self.extent_node_map
