"""Extent Node storage bookkeeping.

The harness models the Extent Node (EN) machine but, as in the paper (§3.2),
reuses the real bookkeeping structure for the extents it stores.  The
:class:`ExtentNodeStore` tracks which extents are held locally and produces
the periodic sync report the Extent Manager consumes.
"""

from __future__ import annotations

from typing import List, Tuple

from .extent import ExtentCenter, ExtentId
from .messages import SyncReport


class ExtentNodeStore:
    """Local extent bookkeeping of one Extent Node."""

    def __init__(self, node_id: int) -> None:
        self.node_id = node_id
        self.extent_center = ExtentCenter()

    # ------------------------------------------------------------------
    def add_extent(self, extent_id: ExtentId) -> None:
        """Record that this node now holds a replica of ``extent_id``."""
        self.extent_center.add_replica(extent_id, self.node_id)

    def remove_extent(self, extent_id: ExtentId) -> None:
        self.extent_center.remove_replica(extent_id, self.node_id)

    def has_extent(self, extent_id: ExtentId) -> bool:
        return self.node_id in self.extent_center.locations(extent_id)

    def local_extents(self) -> List[ExtentId]:
        return [eid for eid in self.extent_center.extents() if self.has_extent(eid)]

    # ------------------------------------------------------------------
    def get_sync_report(self) -> SyncReport:
        """Build the periodic sync report listing every locally stored extent."""
        return SyncReport(self.node_id, tuple(sorted(self.local_extents())))

    def __repr__(self) -> str:
        extents: Tuple[ExtentId, ...] = tuple(self.local_extents())
        return f"<ExtentNodeStore node={self.node_id} extents={extents}>"
