"""Extents and the ExtentCenter bookkeeping structure.

An *extent* is the unit of replication in Azure Storage vNext: a container of
data blocks that must be kept at a target number of replicas across Extent
Nodes (ENs).  The :class:`ExtentCenter` maps extents to the set of ENs
believed to host them; the real Extent Manager keeps one (its view of the
world, updated from sync reports) and every EN keeps one for its local
bookkeeping — the harness reuses the same structure in the modeled EN, just
like the paper's harness reuses the real ``ExtentCenter`` (§3.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Set


@dataclass(frozen=True, order=True)
class ExtentId:
    """Identifier of a replicated extent."""

    value: int

    def __str__(self) -> str:
        return f"extent-{self.value}"


@dataclass
class ExtentRecord:
    """One ExtentCenter record: an extent and the ENs believed to host it."""

    extent_id: ExtentId
    node_ids: Set[int] = field(default_factory=set)

    @property
    def replica_count(self) -> int:
        return len(self.node_ids)


class ExtentCenter:
    """Mapping from extents to the extent nodes hosting them."""

    def __init__(self) -> None:
        self._records: Dict[ExtentId, ExtentRecord] = {}

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def extents(self) -> List[ExtentId]:
        return list(self._records)

    def record(self, extent_id: ExtentId) -> ExtentRecord:
        if extent_id not in self._records:
            self._records[extent_id] = ExtentRecord(extent_id)
        return self._records[extent_id]

    def locations(self, extent_id: ExtentId) -> Set[int]:
        record = self._records.get(extent_id)
        return set(record.node_ids) if record is not None else set()

    def replica_count(self, extent_id: ExtentId) -> int:
        return len(self.locations(extent_id))

    def hosts(self, node_id: int) -> List[ExtentId]:
        return [eid for eid, record in self._records.items() if node_id in record.node_ids]

    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, extent_id: ExtentId) -> bool:
        return extent_id in self._records

    # ------------------------------------------------------------------
    # updates
    # ------------------------------------------------------------------
    def add_replica(self, extent_id: ExtentId, node_id: int) -> None:
        self.record(extent_id).node_ids.add(node_id)

    def remove_replica(self, extent_id: ExtentId, node_id: int) -> None:
        record = self._records.get(extent_id)
        if record is not None:
            record.node_ids.discard(node_id)

    def remove_node(self, node_id: int) -> List[ExtentId]:
        """Remove ``node_id`` from every record; return the affected extents."""
        affected = []
        for extent_id, record in self._records.items():
            if node_id in record.node_ids:
                record.node_ids.discard(node_id)
                affected.append(extent_id)
        return affected

    def update_from_sync(self, node_id: int, extent_ids: Iterable[ExtentId]) -> None:
        """Reconcile the center with a sync report from ``node_id``.

        A sync report lists every extent stored on the reporting node, so the
        node is added to each listed extent and removed from any extent it no
        longer reports.
        """
        reported = set(extent_ids)
        for extent_id in reported:
            self.add_replica(extent_id, node_id)
        for extent_id, record in self._records.items():
            if extent_id not in reported:
                record.node_ids.discard(node_id)

    def snapshot(self) -> Dict[ExtentId, Set[int]]:
        """A copy of the full mapping (handy for assertions in tests)."""
        return {eid: set(record.node_ids) for eid, record in self._records.items()}
