"""Wire messages of the vNext extent-management protocol.

These are the messages the *real* components exchange (heartbeats, sync
reports and repair requests).  They are plain data objects, independent of the
testing framework; the harness wraps them into events when relaying them
between machines.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from .extent import ExtentId


@dataclass(frozen=True)
class Heartbeat:
    """Frequent periodic liveness signal from an EN to its Extent Manager."""

    node_id: int


@dataclass(frozen=True)
class SyncReport:
    """Less frequent periodic report listing every extent stored on the EN."""

    node_id: int
    extent_ids: Tuple[ExtentId, ...]


@dataclass(frozen=True)
class RepairRequest:
    """Extent Manager asks ``target_node_id`` to repair an extent from ``source_node_id``."""

    extent_id: ExtentId
    source_node_id: int
    target_node_id: int


@dataclass(frozen=True)
class CopyRequest:
    """An EN asks a peer EN for a copy of an extent replica."""

    extent_id: ExtentId
    requester_node_id: int


@dataclass(frozen=True)
class CopyResponse:
    """Reply to a :class:`CopyRequest`; ``success`` is false if the source lost the replica."""

    extent_id: ExtentId
    source_node_id: int
    success: bool
