"""Unified command-line interface: ``python -m repro <subcommand>``.

Subcommands:

* ``list-scenarios`` — enumerate every registered scenario (name, tags,
  expected bug), optionally filtered by ``--tag``.
* ``list-strategies`` — enumerate every registered scheduling strategy.
* ``run`` — fan a scenario out across a strategy portfolio on a worker pool
  and write the merged report (traces included) to a JSON file.
* ``replay`` — load a report file and deterministically re-execute its
  recorded bug trace against the scenario it names.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from .core.portfolio import Portfolio, PortfolioReport, replay_trace
from .core.registry import all_scenarios, get_scenario, import_scenario_modules
from .core.strategy import available_strategies

# Shared with the portfolio workers, which re-run the same imports inside
# spawn-started processes (see repro.core.registry.import_scenario_modules).
_import_extra_modules = import_scenario_modules


def _cmd_list_scenarios(args: argparse.Namespace) -> int:
    _import_extra_modules(args.imports)
    cases = all_scenarios(tag=args.tag)
    if args.json:
        print(json.dumps([case.to_dict() for case in cases], indent=2))
        return 0
    if not cases:
        print("no scenarios registered" + (f" with tag {args.tag!r}" if args.tag else ""))
        return 1
    width = max(len(case.name) for case in cases)
    for case in cases:
        bug = case.expected_bug or "-"
        tags = ",".join(case.tags)
        print(f"{case.name:{width}s}  bug={bug:40s} tags={tags}")
    print(f"({len(cases)} scenarios)")
    return 0


def _cmd_list_strategies(args: argparse.Namespace) -> int:
    names = available_strategies()
    if args.json:
        print(json.dumps(names, indent=2))
    else:
        for name in names:
            print(name)
        print(f"({len(names)} strategies)")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    _import_extra_modules(args.imports)
    testcase = get_scenario(args.scenario)
    overrides = {"seed": args.seed}
    if args.max_steps is not None:
        overrides["max_steps"] = args.max_steps
    # Built through the constructor so __post_init__ validates the values.
    config = testcase.default_config(**overrides)
    portfolio = Portfolio(
        testcase,
        strategies=args.strategy or ["random", "pct"],
        iterations=args.iterations,
        num_workers=args.workers,
        num_shards=args.shards,
        seed=args.seed,
        config=config,
        imports=tuple(args.imports or ()),
        start_method=args.start_method,
    )
    report = portfolio.run()
    print(report.summary())
    if args.output:
        report.save(args.output)
        print(f"report written to {args.output}")
    if args.expect_bug and not report.bug_found:
        print("error: a bug was expected but none was found", file=sys.stderr)
        return 1
    return 0


def _cmd_replay(args: argparse.Namespace) -> int:
    _import_extra_modules(args.imports)
    report = PortfolioReport.load(args.report)
    bugs = [
        (result, bug)
        for result in report.results
        for bug in result.report.bugs
        if bug.trace is not None
    ]
    if not bugs:
        print(f"error: {args.report} contains no replayable bug trace", file=sys.stderr)
        return 1
    if not (0 <= args.bug < len(bugs)):
        print(f"error: --bug must be in [0, {len(bugs)})", file=sys.stderr)
        return 1
    result, bug = bugs[args.bug]
    config = result.job.config
    print(f"replaying bug #{args.bug} of {report.scenario!r} "
          f"(job #{result.job.index}, {result.job.strategy}, seed {result.job.seed})")
    print(f"recorded: {bug}")
    replayed = replay_trace(report.scenario, bug.trace, config)
    if replayed is None:
        print("error: replay completed without reproducing the bug", file=sys.stderr)
        return 1
    print(f"replayed: {replayed}")
    if replayed.kind != bug.kind or replayed.message != bug.message:
        print("error: replay diverged from the recorded bug", file=sys.stderr)
        return 1
    print("replay reproduced the recorded bug deterministically")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Systematic testing of distributed-system models "
        "(Deligiannis et al., FAST'16 reproduction).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_import_option(subparser):
        subparser.add_argument(
            "--import",
            dest="imports",
            action="append",
            metavar="MODULE_OR_FILE",
            help="extra module (dotted name or .py path) whose @scenario / "
            "@register_strategy registrations should be loaded first "
            "(repeatable)",
        )

    list_scenarios = sub.add_parser("list-scenarios", help="enumerate registered scenarios")
    list_scenarios.add_argument("--tag", help="only scenarios carrying this tag")
    list_scenarios.add_argument("--json", action="store_true", help="machine-readable output")
    add_import_option(list_scenarios)
    list_scenarios.set_defaults(func=_cmd_list_scenarios)

    list_strategies = sub.add_parser("list-strategies", help="enumerate registered strategies")
    list_strategies.add_argument("--json", action="store_true", help="machine-readable output")
    list_strategies.set_defaults(func=_cmd_list_strategies)

    run = sub.add_parser("run", help="run a strategy portfolio over one scenario")
    run.add_argument("--scenario", required=True, help="registered scenario name")
    run.add_argument(
        "--strategy",
        action="append",
        help="strategy to include (repeatable; default: random and pct)",
    )
    run.add_argument("--iterations", type=int, default=100,
                     help="total execution budget per strategy (default 100)")
    run.add_argument("--workers", type=int, default=1, help="worker processes (default 1)")
    run.add_argument("--shards", type=int, default=None,
                     help="seed shards per strategy (default: same as --workers)")
    run.add_argument("--seed", type=int, default=0, help="base random seed (default 0)")
    run.add_argument("--max-steps", type=int, default=None,
                     help="override the scenario's per-execution step bound")
    run.add_argument("--start-method", default=None,
                     choices=["fork", "spawn", "forkserver"],
                     help="multiprocessing start method for the worker pool "
                     "(default: platform default)")
    run.add_argument("--output", default="repro-report.json",
                     help="JSON report path (default repro-report.json)")
    run.add_argument("--expect-bug", action="store_true",
                     help="exit non-zero if no bug is found")
    add_import_option(run)
    run.set_defaults(func=_cmd_run)

    replay = sub.add_parser("replay", help="replay a bug trace from a report file")
    replay.add_argument("report", help="JSON report written by `run`")
    replay.add_argument("--bug", type=int, default=0,
                        help="index of the bug to replay among the report's bugs (default 0)")
    add_import_option(replay)
    replay.set_defaults(func=_cmd_replay)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except (KeyError, ValueError, FileNotFoundError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
