"""Unified command-line interface: ``python -m repro <subcommand>``.

Subcommands:

* ``list-scenarios`` — enumerate every registered scenario (name, tags,
  expected bug), optionally filtered by ``--tag``.
* ``list-strategies`` — enumerate every registered scheduling strategy.
* ``analyze`` — statically analyze the machines reachable from registered
  scenarios (no schedule is executed) and report rule violations; see
  :mod:`repro.analysis` for the rule catalog and suppression syntax.
  ``--list-rules`` prints the catalog; ``--graph`` emits the whole-program
  communication graph (byte-stable JSON, or Graphviz with ``--dot``) instead
  of running rules.
* ``run`` — fan a scenario out across a strategy portfolio on a worker pool
  and write the merged report (traces included) to a JSON file; ``--shrink``
  minimizes the winning bug trace before the report is written; ``--prune``
  builds the scenario's static independence table and defaults the portfolio
  to the dependence-aware ``dpor-lite`` strategy; ``--stop-on-bug`` cancels
  the remaining jobs once one finds a bug; ``--parallel N`` switches from
  the portfolio to the prefix-partitioned parallel *exhaustive* search
  (:mod:`repro.core.parallel`): one DFS-family strategy, N worker processes
  splitting the choice tree with work stealing and shared fingerprints.
* ``replay`` — load a report file and deterministically re-execute its
  recorded bug trace against the scenario it names (``--shrunk`` replays the
  minimized trace instead).
* ``shrink`` — load a report file, delta-debug its bug trace down to a
  minimal counterexample, and write the report back with ``shrunk_trace``
  and shrink statistics attached.
* ``serve`` — boot a registered scenario on the concurrent
  :class:`~repro.core.ProductionRuntime` and drive it with a configurable
  concurrent client load, reporting throughput and the monitors' verdict.

``run``, ``replay`` and ``serve`` accept ``--verbose`` to stream the
runtime's formatted log records live instead of only surfacing the log at
bug-record time.
"""

from __future__ import annotations

import argparse
import dataclasses
import inspect
import json
import sys
import time
from typing import List, Optional

from .core.config import TestingConfig
from .core.engine import TestingEngine
from .core.portfolio import Portfolio, PortfolioReport, replay_trace
from .core.registry import all_scenarios, get_scenario, import_scenario_modules
from .core.runtime import ProductionRuntime
from .core.strategy import available_strategies

# Shared with the portfolio workers, which re-run the same imports inside
# spawn-started processes (see repro.core.registry.import_scenario_modules).
_import_extra_modules = import_scenario_modules


def _cmd_list_scenarios(args: argparse.Namespace) -> int:
    _import_extra_modules(args.imports)
    cases = all_scenarios(tag=args.tag)
    if args.json:
        print(json.dumps([case.to_dict() for case in cases], indent=2))
        return 0
    if not cases:
        print("no scenarios registered" + (f" with tag {args.tag!r}" if args.tag else ""))
        return 1
    width = max(len(case.name) for case in cases)
    for case in cases:
        bug = case.expected_bug or "-"
        tags = ",".join(case.tags)
        print(f"{case.name:{width}s}  bug={bug:40s} tags={tags}")
    print(f"({len(cases)} scenarios)")
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    from .analysis import RULES, AnalysisCache, analyze_scenarios, graph_for_scenarios

    if args.list_rules:
        if args.json:
            catalog = {
                rule: {"severity": severity, "summary": summary}
                for rule, (severity, summary) in sorted(RULES.items())
            }
            print(json.dumps(catalog, indent=2))
        else:
            width = max(len(rule) for rule in RULES)
            for rule, (severity, summary) in sorted(RULES.items()):
                print(f"{rule:{width}s}  {severity:7s}  {summary}")
            print(f"({len(RULES)} rules)")
        return 0
    if args.dot and not args.graph:
        print("error: --dot requires --graph", file=sys.stderr)
        return 2
    _import_extra_modules(args.imports)
    if args.scenario:
        cases = [get_scenario(name) for name in args.scenario]
    else:
        cases = all_scenarios()
        if not cases:
            print("no scenarios registered", file=sys.stderr)
            return 2
    if args.graph:
        graph = graph_for_scenarios(cases)
        print(graph.to_dot() if args.dot else graph.to_json())
        return 0
    cache = AnalysisCache(enabled=not args.no_cache)
    report = analyze_scenarios(cases, cache=cache)
    if args.json:
        print(report.to_json(sorted(RULES) if args.stats else None))
    else:
        print(report.render())
        if args.stats:
            print()
            print(report.render_stats(sorted(RULES)))
            print(cache.describe())
    return 1 if report.gate_failures(args.fail_on) else 0


def _cmd_list_strategies(args: argparse.Namespace) -> int:
    names = available_strategies()
    if args.json:
        print(json.dumps(names, indent=2))
    else:
        for name in names:
            print(name)
        print(f"({len(names)} strategies)")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    if args.json and args.verbose:
        # the execution log would corrupt the machine-readable document
        print("error: --json and --verbose are mutually exclusive", file=sys.stderr)
        return 2
    _import_extra_modules(args.imports)
    testcase = get_scenario(args.scenario)
    overrides = {"seed": args.seed}
    if args.max_steps is not None:
        overrides["max_steps"] = args.max_steps
    if args.verbose:
        overrides["verbose"] = True
    if args.fingerprints:
        overrides["fingerprints"] = True
    if args.stateful:
        overrides["stateful"] = True
    if args.prune:
        from .analysis import AnalysisCache, independence_for_scenarios

        cache = AnalysisCache(enabled=not args.no_cache)
        overrides["independence"] = independence_for_scenarios([testcase], cache=cache)
    # Built through the constructor so __post_init__ validates the values.
    config = testcase.default_config(**overrides)
    if args.parallel is not None:
        return _run_parallel_search(args, testcase, config)
    default_strategies = ["random", "pct"]
    if args.prune:
        default_strategies = ["dpor-lite"]
    elif args.stateful:
        default_strategies = ["dfs"]
    portfolio = Portfolio(
        testcase,
        strategies=args.strategy or default_strategies,
        iterations=args.iterations,
        num_workers=args.workers,
        num_shards=args.shards,
        seed=args.seed,
        config=config,
        imports=tuple(args.imports or ()),
        start_method=args.start_method,
        shrink=args.shrink,
        stop_on_first_bug=args.stop_on_bug,
    )
    report = portfolio.run()
    if args.json:
        merged = report.merged_coverage
        print(json.dumps({
            "scenario": report.scenario,
            "summary": report.summary(),
            "bug_found": report.bug_found,
            "total_iterations": report.total_iterations,
            "coverage": merged.summary(),
            "fingerprints": sorted(format(fp, "016x") for fp in merged.fingerprints),
        }, indent=2))
    else:
        print(report.summary())
    if args.output:
        report.save(args.output)
        if not args.json:
            print(f"report written to {args.output}")
    if args.expect_bug and not report.bug_found:
        print("error: a bug was expected but none was found", file=sys.stderr)
        return 1
    return 0


def _run_parallel_search(args: argparse.Namespace, testcase, config) -> int:
    """The ``run --parallel N`` path: one exhaustive strategy, N processes."""
    from .core.parallel import ParallelExplorer

    if args.shrink:
        print("error: --shrink is not supported with --parallel; shrink the "
              "written report with `python -m repro shrink`", file=sys.stderr)
        return 2
    strategies = args.strategy or (["dpor-lite"] if args.prune else ["dfs"])
    if len(strategies) != 1:
        print("error: --parallel explores the choice tree with a single "
              "exhaustive strategy; pass at most one --strategy", file=sys.stderr)
        return 2
    # The portfolio splits --iterations across seed shards; the parallel
    # search has no shards — the same flag is the total execution budget.
    config = dataclasses.replace(config, iterations=args.iterations)
    explorer = ParallelExplorer(
        testcase,
        strategy=strategies[0],
        num_workers=args.parallel,
        config=config,
        claim_iterations=args.claim_iterations,
        imports=tuple(args.imports or ()),
        start_method=args.start_method,
        stop_on_first_bug=args.stop_on_bug,
    )
    report = explorer.run()
    if args.json:
        merged = report.merged_coverage
        print(json.dumps({
            "scenario": report.scenario,
            "summary": report.summary(),
            "bug_found": report.bug_found,
            "total_iterations": report.total_iterations,
            "claims": len(report.results),
            "state_space_exhausted": report.state_space_exhausted,
            "stopped_early": report.stopped_early,
            "coverage": merged.summary(),
            "fingerprints": sorted(format(fp, "016x") for fp in merged.fingerprints),
            "workers": report.worker_stats(),
        }, indent=2))
    else:
        print(report.summary())
    if args.output:
        # Repackaged claim-per-job so `python -m repro replay` just works.
        report.as_portfolio_report(config, tuple(args.imports or ())).save(args.output)
        if not args.json:
            print(f"report written to {args.output}")
    if args.expect_bug and not report.bug_found:
        print("error: a bug was expected but none was found", file=sys.stderr)
        return 1
    return 0


def _replayable_bugs(report: PortfolioReport):
    """Every (job result, bug) pair of the report that carries a trace."""
    return [
        (result, bug)
        for result in report.results
        for bug in result.report.bugs
        if bug.trace is not None
    ]


def _select_bug(report: PortfolioReport, path: str, index: int):
    """Pick the ``--bug``-selected pair, or print an error and return None."""
    bugs = _replayable_bugs(report)
    if not bugs:
        print(f"error: {path} contains no replayable bug trace", file=sys.stderr)
        return None
    if not (0 <= index < len(bugs)):
        print(f"error: --bug must be in [0, {len(bugs)})", file=sys.stderr)
        return None
    return bugs[index]


def _print_state_context(trace, limit: int = 8) -> None:
    """Show the machine/state pairs of the trace's final dispatch steps.

    Uses the per-step state names the runtime records alongside schedule
    steps; traces written before states were recorded print nothing.
    """
    context = list(trace.schedule_context())
    if not context:
        return
    print(f"state context (last {min(limit, len(context))} of {len(context)} dispatches):")
    for position, (step, state) in enumerate(context[-limit:], start=len(context) - min(limit, len(context))):
        print(f"  dispatch {position}: {step.label} in state {state!r}")


def _cmd_replay(args: argparse.Namespace) -> int:
    _import_extra_modules(args.imports)
    report = PortfolioReport.load(args.report)
    selected = _select_bug(report, args.report, args.bug)
    if selected is None:
        return 1
    result, bug = selected
    config = result.job.config
    if args.verbose:
        config = dataclasses.replace(config, verbose=True)
    if args.shrunk:
        if bug.shrunk_trace is None:
            print(f"error: bug #{args.bug} has no shrunk trace; run "
                  f"`python -m repro shrink {args.report}` first", file=sys.stderr)
            return 1
        trace = bug.shrunk_trace
    else:
        trace = bug.trace
    which = "shrunk trace of bug" if args.shrunk else "bug"
    print(f"replaying {which} #{args.bug} of {report.scenario!r} "
          f"(job #{result.job.index}, {result.job.strategy}, seed {result.job.seed})")
    print(f"recorded: {bug}")
    _print_state_context(trace)
    replayed = replay_trace(report.scenario, trace, config)
    if replayed is None:
        print("error: replay completed without reproducing the bug", file=sys.stderr)
        return 1
    print(f"replayed: {replayed}")
    if args.shrunk:
        # The shrunk execution is shorter than the recorded one, so messages
        # (step counts, per-machine tallies) legitimately differ; the bug
        # *class* must match.
        if replayed.kind != bug.kind:
            print("error: shrunk-trace replay found a different bug class", file=sys.stderr)
            return 1
        print("shrunk trace reproduced the recorded bug class deterministically")
        return 0
    if replayed.kind != bug.kind or replayed.message != bug.message:
        print("error: replay diverged from the recorded bug", file=sys.stderr)
        return 1
    print("replay reproduced the recorded bug deterministically")
    return 0


def _cmd_shrink(args: argparse.Namespace) -> int:
    _import_extra_modules(args.imports)
    report = PortfolioReport.load(args.report)
    selected = _select_bug(report, args.report, args.bug)
    if selected is None:
        return 1
    result, bug = selected
    testcase = get_scenario(report.scenario)
    config = result.job.config
    if args.max_replays is not None:
        config = dataclasses.replace(config, shrink_max_replays=args.max_replays)
    print(f"shrinking bug #{args.bug} of {report.scenario!r} "
          f"(job #{result.job.index}, {result.job.strategy}, seed {result.job.seed})")
    print(f"recorded: {bug}")
    engine = TestingEngine(testcase.build(), config)
    shrink_result = engine.shrink_bug(bug)
    stats = shrink_result.stats
    print(stats.summary())
    print(f"minimal: {shrink_result.bug}")
    # Sanity: the minimized trace must replay in *strict* mode to the same
    # bug class (it was recorded from an actual execution, so it does unless
    # the program under test is nondeterministic outside runtime control).
    replayed = engine.replay(shrink_result.trace)
    if replayed is None or replayed.kind != bug.kind:
        print("error: shrunk trace does not replay to the same bug class", file=sys.stderr)
        return 1
    output = args.output or args.report
    report.save(output)
    print(f"report with shrunk trace written to {output}")
    if args.expect_reduction is not None and stats.reduction < args.expect_reduction:
        print(f"error: expected a >= {args.expect_reduction:g}x reduction, "
              f"got {stats.reduction:.1f}x", file=sys.stderr)
        return 1
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    if args.json and args.verbose:
        # Verbose mirroring writes "[repro] ..." lines to stdout during the
        # run, which would corrupt the machine-readable JSON document.
        print("error: --json and --verbose are mutually exclusive", file=sys.stderr)
        return 2
    _import_extra_modules(args.imports)
    testcase = get_scenario(args.scenario)
    # Scenario factories opt into load parameters by declaring them as
    # keyword defaults (see examplesys/service); flags for parameters the
    # factory does not accept are an error rather than silently ignored.
    factory_params = inspect.signature(testcase.build).parameters
    build_kwargs = {}
    for flag, param in (("clients", "num_clients"), ("requests", "num_requests")):
        value = getattr(args, flag)
        if value is None:
            continue
        if param not in factory_params:
            print(
                f"error: scenario {args.scenario!r} does not accept --{flag} "
                f"(its factory has no {param!r} parameter)",
                file=sys.stderr,
            )
            return 2
        build_kwargs[param] = value
    entry = testcase.build(**build_kwargs)
    config = TestingConfig(verbose=args.verbose)
    runtime = ProductionRuntime(config, tick_interval=args.tick_interval)
    started = time.perf_counter()
    bug = runtime.run(entry, timeout=args.timeout)
    elapsed = time.perf_counter() - started
    quiesced = runtime.termination_reason == "quiescence"
    dispatched = runtime.step_count
    active_machines = runtime.active_machine_count()
    stats = {
        "scenario": args.scenario,
        "machines": len(runtime.dispatch_counts),
        "active_machines": active_machines,
        "events_dispatched": dispatched,
        "elapsed_seconds": elapsed,
        "events_per_second": dispatched / elapsed if elapsed > 0 else 0.0,
        "quiesced": quiesced,
        "bug": bug.to_dict() if bug is not None else None,
    }
    if args.json:
        print(json.dumps(stats, indent=2))
    else:
        print(
            f"served {args.scenario!r} under ProductionRuntime: "
            f"{dispatched} events across {active_machines} machines "
            f"in {elapsed:.2f}s ({stats['events_per_second']:.0f} events/s)"
        )
        print("clean shutdown, no monitor violations" if bug is None and quiesced
              else ("timed out before quiescence" if bug is None else f"VIOLATION: {bug}"))
    if bug is not None:
        if not args.json:
            print(f"error: {bug}", file=sys.stderr)
        return 1
    if not quiesced:
        print(f"error: system did not quiesce within {args.timeout:.0f}s", file=sys.stderr)
        return 1
    if args.expect_events is not None and dispatched < args.expect_events:
        print(
            f"error: expected >= {args.expect_events} dispatched events, got {dispatched}",
            file=sys.stderr,
        )
        return 1
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Systematic testing of distributed-system models "
        "(Deligiannis et al., FAST'16 reproduction).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_import_option(subparser):
        subparser.add_argument(
            "--import",
            dest="imports",
            action="append",
            metavar="MODULE_OR_FILE",
            help="extra module (dotted name or .py path) whose @scenario / "
            "@register_strategy registrations should be loaded first "
            "(repeatable)",
        )

    list_scenarios = sub.add_parser("list-scenarios", help="enumerate registered scenarios")
    list_scenarios.add_argument("--tag", help="only scenarios carrying this tag")
    list_scenarios.add_argument("--json", action="store_true", help="machine-readable output")
    add_import_option(list_scenarios)
    list_scenarios.set_defaults(func=_cmd_list_scenarios)

    list_strategies = sub.add_parser("list-strategies", help="enumerate registered strategies")
    list_strategies.add_argument("--json", action="store_true", help="machine-readable output")
    list_strategies.set_defaults(func=_cmd_list_strategies)

    analyze = sub.add_parser(
        "analyze",
        help="statically analyze machine programs (no schedule is executed)",
        description="Extract per-machine summary graphs for every machine "
        "reachable from the selected scenarios, build the whole-program "
        "communication graph, and run the rule catalog over them "
        "(see --list-rules for the full catalog).",
        epilog="exit status: 0 = no gate failure (clean, or everything below "
        "--fail-on / suppressed); 1 = unsuppressed diagnostics at or above "
        "the --fail-on severity remain; 2 = usage or scenario-discovery "
        "error.",
    )
    analyze.add_argument(
        "--scenario",
        action="append",
        metavar="NAME",
        help="analyze only the machines of this registered scenario "
        "(repeatable; default: all registered scenarios)",
    )
    analyze.add_argument(
        "--fail-on",
        choices=["error", "warning"],
        default="error",
        help="exit non-zero when diagnostics at or above this severity "
        "remain unsuppressed (default: error)",
    )
    analyze.add_argument("--json", action="store_true", help="machine-readable report")
    analyze.add_argument(
        "--graph",
        action="store_true",
        help="emit the whole-program communication graph (byte-stable JSON) "
        "instead of running rules",
    )
    analyze.add_argument(
        "--dot",
        action="store_true",
        help="with --graph: emit Graphviz DOT instead of JSON",
    )
    analyze.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog (id, severity, summary) and exit; "
        "honors --json",
    )
    analyze.add_argument(
        "--stats",
        action="store_true",
        help="append per-rule active/suppressed counts (and with --json a "
        "'stats' block; without it the --json payload is unchanged)",
    )
    analyze.add_argument(
        "--no-cache",
        action="store_true",
        help="bypass the on-disk incremental analysis cache (.repro-cache, "
        "override the location with $REPRO_ANALYSIS_CACHE)",
    )
    add_import_option(analyze)
    analyze.set_defaults(func=_cmd_analyze)

    run = sub.add_parser("run", help="run a strategy portfolio over one scenario")
    run.add_argument("--scenario", required=True, help="registered scenario name")
    run.add_argument(
        "--strategy",
        action="append",
        help="strategy to include (repeatable; default: random and pct)",
    )
    run.add_argument("--iterations", type=int, default=100,
                     help="total execution budget per strategy (default 100)")
    run.add_argument("--workers", type=int, default=1, help="worker processes (default 1)")
    run.add_argument("--shards", type=int, default=None,
                     help="seed shards per strategy (default: same as --workers)")
    run.add_argument("--parallel", type=int, default=None, metavar="N",
                     help="prefix-partitioned parallel exhaustive search on N "
                     "worker processes instead of a portfolio: one DFS-family "
                     "strategy (default dfs, or dpor-lite with --prune) splits "
                     "the choice tree into subtree claims with work stealing "
                     "and cross-process fingerprint sharing; --iterations is "
                     "the total execution budget")
    run.add_argument("--claim-iterations", type=int, default=50, metavar="K",
                     help="with --parallel: schedules a worker explores per "
                     "claim before re-splitting its subtree for stealing "
                     "(default 50)")
    run.add_argument("--stop-on-bug", action="store_true",
                     help="cancel remaining work as soon as a completed "
                     "job/claim reports a bug (portfolio and --parallel)")
    run.add_argument("--seed", type=int, default=0, help="base random seed (default 0)")
    run.add_argument("--max-steps", type=int, default=None,
                     help="override the scenario's per-execution step bound")
    run.add_argument("--start-method", default=None,
                     choices=["fork", "spawn", "forkserver"],
                     help="multiprocessing start method for the worker pool "
                     "(default: platform default)")
    run.add_argument("--output", default="repro-report.json",
                     help="JSON report path (default repro-report.json)")
    run.add_argument("--expect-bug", action="store_true",
                     help="exit non-zero if no bug is found")
    run.add_argument("--shrink", action="store_true",
                     help="minimize the winning bug trace before writing the report")
    run.add_argument("--prune", action="store_true",
                     help="build the scenario's static independence table and "
                     "prune provably-commuting schedules (defaults the "
                     "portfolio to the dpor-lite strategy)")
    run.add_argument("--no-cache", action="store_true",
                     help="with --prune: rebuild the independence table even "
                     "when the on-disk analysis cache has a current entry")
    run.add_argument("--fingerprints", action="store_true",
                     help="maintain the global-state execution fingerprint and "
                     "record distinct states into coverage")
    run.add_argument("--stateful", action="store_true",
                     help="prune schedules revisiting fully-explored global "
                     "states (dfs/dpor-lite; implies fingerprinting; defaults "
                     "the portfolio to the dfs strategy)")
    run.add_argument("--json", action="store_true",
                     help="print a machine-readable result document (summary, "
                     "merged coverage, distinct state fingerprints)")
    run.add_argument("--verbose", action="store_true",
                     help="stream formatted execution-log records live "
                     "(instead of only at bug-record time)")
    add_import_option(run)
    run.set_defaults(func=_cmd_run)

    replay = sub.add_parser("replay", help="replay a bug trace from a report file")
    replay.add_argument("report", help="JSON report written by `run`")
    replay.add_argument("--bug", type=int, default=0,
                        help="index of the bug to replay among the report's bugs (default 0)")
    replay.add_argument("--shrunk", action="store_true",
                        help="replay the minimized trace instead of the recorded one")
    replay.add_argument("--verbose", action="store_true",
                        help="stream the replayed execution's log records live")
    add_import_option(replay)
    replay.set_defaults(func=_cmd_replay)

    serve = sub.add_parser(
        "serve",
        help="boot a scenario on the concurrent ProductionRuntime and drive "
        "it with client load",
    )
    serve.add_argument("--scenario", required=True, help="registered scenario name")
    serve.add_argument("--clients", type=int, default=None,
                       help="concurrent load clients (scenario factories opt in "
                       "via a num_clients parameter)")
    serve.add_argument("--requests", type=int, default=None,
                       help="requests per client (factories opt in via num_requests)")
    serve.add_argument("--timeout", type=float, default=120.0,
                       help="seconds to wait for quiescence (default 120)")
    serve.add_argument("--tick-interval", type=float, default=0.005,
                       help="wall-clock timer period in seconds (default 0.005)")
    serve.add_argument("--expect-events", type=int, default=None,
                       help="exit non-zero unless at least this many events were dispatched")
    serve.add_argument("--json", action="store_true", help="machine-readable stats")
    serve.add_argument("--verbose", action="store_true",
                       help="stream formatted execution-log records live")
    add_import_option(serve)
    serve.set_defaults(func=_cmd_serve)

    shrink = sub.add_parser(
        "shrink", help="minimize a bug trace in a report file (delta debugging)"
    )
    shrink.add_argument("report", help="JSON report written by `run`")
    shrink.add_argument("--bug", type=int, default=0,
                        help="index of the bug to shrink among the report's bugs (default 0)")
    shrink.add_argument("--output", default=None,
                        help="where to write the updated report (default: in place)")
    shrink.add_argument("--max-replays", type=int, default=None,
                        help="candidate-replay budget (default: config's shrink_max_replays)")
    shrink.add_argument("--expect-reduction", type=float, default=None, metavar="X",
                        help="exit non-zero unless the trace shrank by at least X times")
    add_import_option(shrink)
    shrink.set_defaults(func=_cmd_shrink)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except (KeyError, ValueError, FileNotFoundError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
