"""The systematic testing engine.

The engine repeatedly executes a test entry point (a function that registers
monitors and creates machines on a fresh :class:`~repro.core.runtime.TestRuntime`),
each time under a potentially different schedule, until it either finds a bug
or exhausts its iteration budget — exactly the testing process described in
§2 of the paper.  The result is a :class:`TestReport` containing, for each bug,
the fields reported in Table 2: whether the bug was found, the time it took,
and the number of nondeterministic choices of the buggy execution, plus the
replayable trace.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, NamedTuple, Optional, Sequence, Tuple

from .config import TestingConfig
from .coverage import CoverageTracker
from .runtime import BugInfo, TestRuntime
from .shrink import Shrinker, ShrinkResult
from .strategy import create_strategy
from .strategy.base import SchedulingStrategy
from .strategy.replay import ReplayStrategy
from .trace import ScheduleTrace

TestEntry = Callable[[TestRuntime], None]


@dataclass
class TestReport:
    """Outcome of a systematic testing session."""

    __test__ = False  # not a pytest test class despite the name

    strategy: str
    iterations_requested: int
    iterations_executed: int = 0
    bugs: List[BugInfo] = field(default_factory=list)
    elapsed_seconds: float = 0.0
    time_to_first_bug: Optional[float] = None
    first_bug_iteration: Optional[int] = None
    coverage: CoverageTracker = field(default_factory=CoverageTracker)
    state_space_exhausted: bool = False

    @property
    def bug_found(self) -> bool:
        return bool(self.bugs)

    @property
    def first_bug(self) -> Optional[BugInfo]:
        return self.bugs[0] if self.bugs else None

    @property
    def num_nondeterministic_choices(self) -> Optional[int]:
        """#NDC of the first buggy execution (the Table 2 column)."""
        bug = self.first_bug
        if bug is None or bug.trace is None:
            return None
        return bug.trace.num_nondeterministic_choices

    def summary(self) -> str:
        if not self.bug_found:
            return (
                f"no bug found: {self.iterations_executed} executions with the "
                f"{self.strategy} scheduler in {self.elapsed_seconds:.2f}s"
            )
        bug = self.first_bug
        # Reports loaded from JSON (or aggregated across workers) may carry
        # bugs without the session-local timing fields; degrade gracefully
        # instead of crashing on formatting None.
        if self.time_to_first_bug is None or self.first_bug_iteration is None:
            return (
                f"bug found by the {self.strategy} scheduler (timing unavailable) "
                f"({self.num_nondeterministic_choices} nondeterministic choices): "
                f"{bug.message}"
            )
        return (
            f"bug found by the {self.strategy} scheduler in {self.time_to_first_bug:.2f}s "
            f"after {self.first_bug_iteration + 1} executions "
            f"({self.num_nondeterministic_choices} nondeterministic choices): {bug.message}"
        )

    # ------------------------------------------------------------------
    # serialization: reports round-trip to JSON so that portfolio workers,
    # result files and the replay CLI can exchange them across processes.
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "strategy": self.strategy,
            "iterations_requested": self.iterations_requested,
            "iterations_executed": self.iterations_executed,
            "bugs": [bug.to_dict() for bug in self.bugs],
            "elapsed_seconds": self.elapsed_seconds,
            "time_to_first_bug": self.time_to_first_bug,
            "first_bug_iteration": self.first_bug_iteration,
            "coverage": self.coverage.to_dict(),
            "state_space_exhausted": self.state_space_exhausted,
        }

    @staticmethod
    def from_dict(payload: dict) -> "TestReport":
        return TestReport(
            strategy=payload["strategy"],
            iterations_requested=payload["iterations_requested"],
            iterations_executed=payload.get("iterations_executed", 0),
            bugs=[BugInfo.from_dict(entry) for entry in payload.get("bugs", [])],
            elapsed_seconds=payload.get("elapsed_seconds", 0.0),
            time_to_first_bug=payload.get("time_to_first_bug"),
            first_bug_iteration=payload.get("first_bug_iteration"),
            coverage=CoverageTracker.from_dict(payload.get("coverage", {})),
            state_space_exhausted=payload.get("state_space_exhausted", False),
        )

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @staticmethod
    def from_json(text: str) -> "TestReport":
        return TestReport.from_dict(json.loads(text))


class ClaimOutcome(NamedTuple):
    """Result of exploring one subtree claim (see :meth:`TestingEngine.explore_claim`)."""

    report: TestReport
    #: the claimed subtree was fully explored within the budget
    exhausted: bool
    #: the claim was abandoned: its prefix hit a state another search had
    #: already fully explored (per the seeded visited entries)
    covered: bool
    #: unexplored remainder, split into disjoint sub-claims (empty when
    #: ``exhausted`` or ``covered``); each is a decision-prefix path
    frontier: List[Tuple[Tuple[int, int], ...]]
    #: visited entries this exploration proved (fingerprint -> remaining
    #: steps), for gossip to other workers
    visited_delta: Dict[int, int]


class TestingEngine:
    """Drives repeated controlled executions of a test harness.

    Kept as the single-strategy building block; multi-strategy parallel runs
    live in :class:`repro.core.portfolio.Portfolio`, and prefix-partitioned
    parallel exhaustive search in :class:`repro.core.parallel.ParallelExplorer`
    — both compose engines.
    """

    __test__ = False  # not a pytest test class despite the name

    def __init__(
        self,
        test_entry: TestEntry,
        config: Optional[TestingConfig] = None,
        strategy: Optional[SchedulingStrategy] = None,
        runtime_cls: type = TestRuntime,
        shrink: bool = False,
    ) -> None:
        self.test_entry = test_entry
        self.config = config or TestingConfig()
        self.strategy = strategy or create_strategy(self.config)
        #: runtime class instantiated per iteration; overridable so the
        #: seed-reference runtime (repro.core._baseline) and the before/after
        #: benchmarks can drive the same engine loop.
        self.runtime_cls = runtime_cls
        #: when True, every bug found by :meth:`run` is shrunk before the
        #: report is returned (``bug.shrunk_trace`` / ``bug.shrink``).
        self.shrink = shrink

    # ------------------------------------------------------------------
    def run(self) -> TestReport:
        """Explore executions until a bug is found or the budget is spent."""
        report = TestReport(strategy=self.strategy.name, iterations_requested=self.config.iterations)
        started = time.perf_counter()
        max_bugs = self.config.max_bugs if self.config.max_bugs is not None else float("inf")
        for iteration in range(self.config.iterations):
            self.strategy.prepare_iteration(iteration)
            if self.strategy.exhausted:
                report.state_space_exhausted = True
                break
            runtime = self.runtime_cls(self.strategy, self.config, coverage=report.coverage)
            bug = runtime.run(self.test_entry)
            report.iterations_executed += 1
            if bug is not None:
                report.bugs.append(bug)
                if report.time_to_first_bug is None:
                    report.time_to_first_bug = time.perf_counter() - started
                    report.first_bug_iteration = iteration
                if self.config.stop_at_first_bug or len(report.bugs) >= max_bugs:
                    break
        if self.shrink and report.bugs:
            for bug in report.bugs:
                if bug.trace is not None:
                    self.shrink_bug(bug)
        report.elapsed_seconds = time.perf_counter() - started
        return report

    # ------------------------------------------------------------------
    def explore_claim(
        self,
        claim: Sequence[Tuple[int, int]] = (),
        visited: Optional[Dict[int, int]] = None,
    ) -> ClaimOutcome:
        """Explore (a budget's worth of) the subtree rooted at ``claim``.

        The parallel run path: restricts this engine's exhaustive strategy to
        the decision prefix ``claim``, seeds it with ``visited`` entries from
        other searches, runs up to ``config.iterations`` executions, and —
        when the budget expired before the subtree did — advances the search
        one last time and exports the unexplored remainder as sub-claims.
        An engine (and its strategy) explores exactly one claim; build a
        fresh one per claim.
        """
        strategy = self.strategy
        if not getattr(strategy, "supports_claims", False):
            raise ValueError(
                f"strategy {strategy.name!r} cannot explore subtree claims "
                "(needs an exhaustive DFS-family strategy)"
            )
        strategy.set_claim(claim)
        if visited:
            strategy.seed_visited(visited)
        report = self.run()
        covered = strategy.claim_covered
        exhausted = strategy.exhausted and not covered
        frontier: List[Tuple[Tuple[int, int], ...]] = []
        if not covered and not exhausted and report.iterations_executed > 0:
            # The budget ran out mid-subtree: advance past the last executed
            # schedule (recording its post-order visited entries) and hand
            # the rest back for other workers to steal.
            strategy.prepare_iteration(report.iterations_executed)
            covered = strategy.claim_covered
            exhausted = strategy.exhausted and not covered
            if not exhausted and not covered:
                frontier = strategy.export_frontier()
        return ClaimOutcome(
            report=report,
            exhausted=exhausted,
            covered=covered,
            frontier=frontier,
            visited_delta=dict(strategy.visited_delta),
        )

    # ------------------------------------------------------------------
    def replay(self, trace: ScheduleTrace, tolerant: bool = False) -> Optional[BugInfo]:
        """Deterministically re-execute a recorded schedule trace.

        ``tolerant`` selects the guided-replay mode: instead of raising on a
        divergence, the execution falls back to a deterministic default
        schedule (see :class:`~repro.core.strategy.replay.ReplayStrategy`).
        """
        strategy = ReplayStrategy(trace, tolerant=tolerant)
        strategy.prepare_iteration(0)
        runtime = self.runtime_cls(strategy, self.config)
        return runtime.run(self.test_entry)

    def shrink_bug(self, bug: BugInfo) -> ShrinkResult:
        """Minimize ``bug``'s trace and attach ``shrunk_trace``/``shrink``."""
        shrinker = Shrinker(self.test_entry, self.config, runtime_cls=self.runtime_cls)
        return shrinker.shrink_bug(bug)


def run_test(
    test_entry: TestEntry,
    config: Optional[TestingConfig] = None,
    strategy: Optional[SchedulingStrategy] = None,
    shrink: bool = False,
) -> TestReport:
    """Convenience wrapper: build an engine, run it, return the report."""
    return TestingEngine(test_entry, config, strategy, shrink=shrink).run()
