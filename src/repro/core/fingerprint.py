"""Execution fingerprinting: an incremental hash of the global state.

A *fingerprint* summarizes the complete controlled-execution state — for
every machine its state stack, its inbox and raised-queue contents (in
order), its halted/paused status, its user-visible attributes and its
pending start arguments, plus every registered monitor's state — in one
64-bit value.  The testing runtime maintains it *incrementally*, alongside
the enabled-set bookkeeping: every enqueue/dequeue updates a rolling queue
hash in O(1), every dispatched step refreshes only the executed machine's
component, and the global value is the XOR-fold of the per-machine and
per-monitor components.  Nothing ever rescans the whole system.

Three consumers build on it:

* **Coverage** — :class:`~repro.core.coverage.CoverageTracker` collects the
  set of distinct fingerprints seen across executions ("novel behaviours"),
  which survives JSON round-trips and portfolio merges.
* **Stateful search** — the DFS-family strategies prune schedules that
  revisit an already fully-explored global state (see
  :mod:`repro.core.strategy.dfs_strategy`).
* **Feedback** — the ``feedback`` strategy mutates schedule prefixes that
  reached novel fingerprints, AFL-style.

Determinism and exactness
-------------------------

Fingerprints must be identical across processes and runs for the same
execution, so all hashing goes through :func:`stable_hash` — a
``blake2b``-based canonical encoding that never touches Python's
``PYTHONHASHSEED``-randomized built-in ``hash()``.  Values the encoder does
not understand (open files, lambdas, ...) degrade to a type-only marker and
mark the encoding *inexact*: still deterministic, but two genuinely
different states may collide.  Similarly, a machine paused inside a
generator handler carries frame state no encoding can capture, so it is
inexact while paused.  :meth:`FingerprintTracker.current` reports both the
value and whether it is exact; stateful-search dedupe only ever acts on
exact fingerprints, while coverage and feedback (heuristics) use every
value.
"""

from __future__ import annotations

from collections import deque
from hashlib import blake2b
from types import ModuleType
from typing import TYPE_CHECKING, Dict, Mapping, NamedTuple, Optional, Set

from .events import Event
from .ids import MachineId

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .machine import Machine
    from .monitors import Monitor
    from .runtime.kernel import RuntimeKernel

__all__ = ["Fingerprint", "FingerprintTracker", "merge_visited", "stable_hash"]

#: Mersenne-prime modulus of the rolling queue hashes; keeps every hash in
#: 61 bits so the Python ints stay single-digit (fast) on 64-bit builds.
_M = (1 << 61) - 1
#: rolling-hash base (any value coprime with the modulus works)
_B = 1_000_003
#: modular inverse of the base: multiplying by it "pops" one power off the
#: front of the polynomial, which is what makes popleft O(1).
_B_INV = pow(_B, _M - 2, _M)

_MASK64 = (1 << 64) - 1
_GOLDEN = 0x9E3779B97F4A7C15


def _mix(*parts: int) -> int:
    """Order-sensitive 64-bit combiner for already-hashed components."""
    acc = 0x243F6A8885A308D3
    for part in parts:
        acc ^= (part + _GOLDEN + ((acc << 6) & _MASK64) + (acc >> 2)) & _MASK64
        acc = (acc * _GOLDEN) & _MASK64
        acc ^= acc >> 29
    return acc


# ---------------------------------------------------------------------------
# stable hashing
# ---------------------------------------------------------------------------
def stable_hash(value) -> "tuple[int, bool]":
    """Hash ``value`` into ``(64-bit int, exact)`` deterministically.

    Identical values produce identical hashes in every process and on every
    run (no dependence on ``PYTHONHASHSEED``, object identity or dict
    insertion order).  ``exact`` is False when some part of ``value`` had no
    canonical encoding and was represented by a type-only marker.
    """
    hasher = blake2b(digest_size=8)
    exact = _feed(hasher, value, {})
    return int.from_bytes(hasher.digest(), "big"), exact


def _sub_digest(value, memo) -> "tuple[bytes, bool]":
    """Digest of one value in isolation (for order-canonicalizing sets/dicts)."""
    hasher = blake2b(digest_size=8)
    exact = _feed(hasher, value, memo)
    return hasher.digest(), exact


def _feed(hasher, value, memo) -> bool:
    """Feed a canonical encoding of ``value`` into ``hasher``.

    ``memo`` maps ``id()`` of the containers currently on the encoding path
    to their path position, turning reference cycles into a deterministic
    back-reference marker instead of infinite recursion.
    """
    # Exact scalar types first (isinstance checks ordered by frequency).
    if value is None:
        hasher.update(b"N")
        return True
    cls = value.__class__
    if cls is bool:
        hasher.update(b"T" if value else b"F")
        return True
    if cls is int:
        data = str(value).encode()
        hasher.update(b"i%d:" % len(data))
        hasher.update(data)
        return True
    if cls is str:
        data = value.encode("utf-8", "surrogatepass")
        hasher.update(b"s%d:" % len(data))
        hasher.update(data)
        return True
    if cls is float:
        data = repr(value).encode()
        hasher.update(b"f%d:" % len(data))
        hasher.update(data)
        return True
    if cls is bytes:
        hasher.update(b"y%d:" % len(value))
        hasher.update(value)
        return True
    if cls is MachineId:
        hasher.update(b"m")
        return (
            _feed(hasher, value.value, memo)
            & _feed(hasher, value.type_name, memo)
            & _feed(hasher, value.name, memo)
        )
    ident = id(value)
    if ident in memo:
        # Back-reference: encode the cycle by path position, which is the
        # same in every process for the same object graph shape.
        hasher.update(b"c%d:" % memo[ident])
        return True
    if isinstance(value, (tuple, list, deque)):
        memo[ident] = len(memo)
        hasher.update(b"t%d:" % len(value))
        exact = True
        for item in value:
            exact &= _feed(hasher, item, memo)
        del memo[ident]
        return exact
    if isinstance(value, dict):
        memo[ident] = len(memo)
        hasher.update(b"d%d:" % len(value))
        exact = True
        entries = []
        for key, item in value.items():
            key_digest, key_exact = _sub_digest(key, memo)
            item_digest, item_exact = _sub_digest(item, memo)
            exact &= key_exact & item_exact
            entries.append(key_digest + item_digest)
        # Canonical order: sort by encoded bytes, not by key comparison,
        # so mixed-type keys never raise and the order is process-stable.
        for entry in sorted(entries):
            hasher.update(entry)
        del memo[ident]
        return exact
    if isinstance(value, (set, frozenset)):
        memo[ident] = len(memo)
        hasher.update(b"S%d:" % len(value))
        exact = True
        digests = []
        for item in value:
            digest, item_exact = _sub_digest(item, memo)
            exact &= item_exact
            digests.append(digest)
        for digest in sorted(digests):
            hasher.update(digest)
        del memo[ident]
        return exact
    # Avoid a module-level import cycle: machine -> runtime -> fingerprint.
    from .machine import Machine

    if isinstance(value, Machine):
        # A machine *reference* is its identity: the referenced machine's own
        # component already covers its state, and encoding it structurally
        # would chase the back-references it holds (runtime, strategy, ...).
        hasher.update(b"R")
        return _feed(hasher, value._id, memo)
    if isinstance(value, type):
        # A class reference is fully identified by its import path.
        hasher.update(b"k")
        return _feed(hasher, f"{value.__module__}.{value.__qualname__}", memo)
    attrs = getattr(value, "__dict__", None)
    if attrs is not None and not callable(value) and not isinstance(value, ModuleType):
        # Structured object (event payloads, harness helper objects,
        # dataclasses): class identity plus its public attributes.
        # Underscore-prefixed attributes are runtime-internal bookkeeping by
        # repo convention and excluded.
        memo[ident] = len(memo)
        hasher.update(b"o")
        _feed(hasher, f"{cls.__module__}.{cls.__qualname__}", memo)
        exact = True
        public = [name for name in attrs if not name.startswith("_")]
        hasher.update(b"%d:" % len(public))
        for name in sorted(public):
            _feed(hasher, name, memo)
            exact &= _feed(hasher, attrs[name], memo)
        del memo[ident]
        return exact
    # No canonical encoding (functions, modules, file handles, slotted
    # objects, ...): a deterministic type-only marker, flagged inexact.
    hasher.update(b"?")
    _feed(hasher, f"{cls.__module__}.{cls.__qualname__}", memo)
    return False


class Fingerprint(NamedTuple):
    """One observation of the global execution fingerprint."""

    value: int
    #: True when the value captures the state exactly (no paused coroutine,
    #: no unencodable attribute or payload anywhere); dedupe requires it.
    exact: bool


class _QueueHash:
    """Rolling polynomial hash of one event queue (order-sensitive).

    ``hash = sum(h_i * B**(n-1-i)) mod M`` over the per-event hashes, so
    append is ``H*B + h`` and popleft subtracts the head term using the
    maintained ``B**n`` power and the precomputed modular inverse — both
    O(1).  Removal at an arbitrary index (the rare discipline/receive path,
    itself already O(n)) refolds from the mirrored hash deque.
    """

    __slots__ = ("value", "power", "items", "inexact")

    def __init__(self) -> None:
        self.value = 0
        self.power = 1  # B ** len(items) mod M
        #: per-event ``(hash mod M, exact)`` pairs mirroring the real queue
        self.items: deque = deque()
        #: number of queued items whose encoding was inexact
        self.inexact = 0

    def append(self, item_hash: int, exact: bool) -> None:
        folded = item_hash % _M
        self.items.append((folded, exact))
        self.value = (self.value * _B + folded) % _M
        self.power = (self.power * _B) % _M
        if not exact:
            self.inexact += 1

    def popleft(self) -> None:
        folded, exact = self.items.popleft()
        self.power = (self.power * _B_INV) % _M
        self.value = (self.value - folded * self.power) % _M
        if not exact:
            self.inexact -= 1

    def remove_at(self, index: int) -> None:
        _, exact = self.items[index]
        del self.items[index]
        if not exact:
            self.inexact -= 1
        self._refold()

    def clear(self) -> None:
        self.items.clear()
        self.value = 0
        self.power = 1
        self.inexact = 0

    def _refold(self) -> None:
        value = 0
        for folded, _ in self.items:
            value = (value * _B + folded) % _M
        self.value = value
        self.power = pow(_B, len(self.items), _M)


class _MachineRecord:
    """Cached fingerprint component of one machine."""

    __slots__ = (
        "base", "start_hash", "start_exact", "stack_hash", "attrs_hash",
        "attrs_exact", "status", "paused", "inbox", "raised", "component",
        "exact",
    )

    def __init__(self, base: int, start_hash: int, start_exact: bool) -> None:
        self.base = base
        self.start_hash = start_hash
        self.start_exact = start_exact
        self.stack_hash = 0
        self.attrs_hash = 0
        self.attrs_exact = True
        self.status = 0
        self.paused = False
        self.inbox = _QueueHash()
        self.raised = _QueueHash()
        self.component = 0
        self.exact = True

    def fold(self) -> int:
        inbox = self.inbox
        raised = self.raised
        return _mix(
            self.base, self.start_hash, self.stack_hash, self.attrs_hash,
            self.status, inbox.value, len(inbox.items), raised.value,
            len(raised.items),
        )

    def is_exact(self) -> bool:
        return (
            self.attrs_exact
            and self.start_exact
            and not self.paused
            and self.inbox.inexact == 0
            and self.raised.inexact == 0
        )


class FingerprintTracker:
    """Incrementally maintained global execution fingerprint.

    The owning runtime calls the ``on_*`` hooks from every queue-mutation
    site (mirroring the enabled-set bookkeeping) and :meth:`touch` once per
    dispatched step for the executed machine — the only machine whose state
    stack, attributes or paused/halted status can have changed during the
    step.  Monitors are notified synchronously from inside steps, so they
    are dirty-marked at notification and refreshed lazily at the next
    :meth:`current` query.
    """

    def __init__(self, runtime: "RuntimeKernel") -> None:
        self._runtime = runtime
        self._records: Dict[int, _MachineRecord] = {}
        self._monitor_components: Dict[type, int] = {}
        self._monitor_exact: Dict[type, bool] = {}
        self._dirty_monitors: Set[type] = set()
        self._global = 0
        #: count of machines/monitors whose component is currently inexact
        self._inexact = 0
        #: stack-tuple -> hash cache (state stacks repeat across machines
        #: and steps; the tuples are tiny and the set of distinct stacks is
        #: bounded by the specs)
        self._stack_cache: Dict[tuple, int] = {}
        #: set by :meth:`current` when the latest observation had not been
        #: seen before in this tracker's lifetime (one execution)
        self.last_novel = False
        self._seen: Set[int] = set()

    # ------------------------------------------------------------------
    # machine lifecycle
    # ------------------------------------------------------------------
    def register_machine(self, machine: "Machine") -> None:
        """Start tracking ``machine`` (before its StartEvent is enqueued)."""
        mid = machine._id
        base = stable_hash((mid.value, mid.type_name, mid.name))[0]
        args, kwargs = getattr(machine, "_start_args", ((), {}))
        start_hash, start_exact = stable_hash((args, kwargs))
        record = _MachineRecord(base, start_hash, start_exact)
        self._records[mid.value] = record
        self._refresh(machine, record)

    def touch(self, machine: "Machine") -> None:
        """Refresh the slow-changing parts of ``machine``'s component.

        Called once after each dispatched step of ``machine``: the state
        stack, public attributes, paused status and halted flag only change
        while the machine itself executes, so this plus the eager queue
        hooks keeps the component exact without ever scanning other
        machines.
        """
        record = self._records.get(machine._id.value)
        if record is not None:
            self._refresh(machine, record)

    def _refresh(self, machine: "Machine", record: _MachineRecord) -> None:
        stack = tuple(machine._state_stack)
        stack_hash = self._stack_cache.get(stack)
        if stack_hash is None:
            stack_hash = self._stack_cache[stack] = stable_hash(stack)[0]
        record.stack_hash = stack_hash
        attrs = machine.__dict__
        public = {name: attrs[name] for name in attrs if not name.startswith("_")}
        record.attrs_hash, record.attrs_exact = stable_hash(public)
        record.paused = (
            machine._coroutine is not None or machine._pending_receive is not None
        )
        record.status = (1 if machine._halted else 0) | (2 if record.paused else 0)
        self._fold(record)

    def _fold(self, record: _MachineRecord) -> None:
        component = record.fold()
        self._global ^= record.component ^ component
        record.component = component
        exact = record.is_exact()
        if exact != record.exact:
            self._inexact += -1 if exact else 1
            record.exact = exact

    # ------------------------------------------------------------------
    # queue hooks (O(1) on the append/popleft hot paths)
    # ------------------------------------------------------------------
    def on_enqueue(self, machine: "Machine", event: Event) -> None:
        record = self._records.get(machine._id.value)
        if record is not None:
            record.inbox.append(*stable_hash(event))
            self._fold(record)

    def on_inbox_popleft(self, machine: "Machine") -> None:
        record = self._records.get(machine._id.value)
        if record is not None:
            record.inbox.popleft()
            self._fold(record)

    def on_inbox_remove(self, machine: "Machine", index: int) -> None:
        record = self._records.get(machine._id.value)
        if record is not None:
            record.inbox.remove_at(index)
            self._fold(record)

    def on_raise(self, machine: "Machine", event: Event) -> None:
        record = self._records.get(machine._id.value)
        if record is not None:
            record.raised.append(*stable_hash(event))
            self._fold(record)

    def on_raised_popleft(self, machine: "Machine") -> None:
        record = self._records.get(machine._id.value)
        if record is not None:
            record.raised.popleft()
            self._fold(record)

    def on_halt_clear(self, machine: "Machine") -> None:
        """Both queues were cleared by a halt (touch refreshes the rest)."""
        record = self._records.get(machine._id.value)
        if record is not None:
            record.inbox.clear()
            record.raised.clear()
            self._fold(record)

    # ------------------------------------------------------------------
    # monitors (synchronously notified => dirty-marked, lazily refreshed)
    # ------------------------------------------------------------------
    def register_monitor(self, monitor: "Monitor") -> None:
        self._monitor_components[type(monitor)] = 0
        self._monitor_exact[type(monitor)] = True
        self._dirty_monitors.add(type(monitor))

    def mark_monitor_dirty(self, monitor: "Monitor") -> None:
        self._dirty_monitors.add(type(monitor))

    def _refresh_monitor(self, monitor_cls: type) -> None:
        monitor = self._runtime._monitors.get(monitor_cls)
        if monitor is None:  # pragma: no cover - defensive
            return
        attrs = monitor.__dict__
        public = {name: attrs[name] for name in attrs if not name.startswith("_")}
        component_input = (monitor_cls.__name__, monitor._current_state)
        state_hash, _ = stable_hash(component_input)
        attrs_hash, exact = stable_hash(public)
        component = _mix(state_hash, attrs_hash)
        self._global ^= self._monitor_components[monitor_cls] ^ component
        self._monitor_components[monitor_cls] = component
        if exact != self._monitor_exact[monitor_cls]:
            self._inexact += -1 if exact else 1
            self._monitor_exact[monitor_cls] = exact

    # ------------------------------------------------------------------
    # observation
    # ------------------------------------------------------------------
    def current(self) -> Fingerprint:
        """The fingerprint of the current global state."""
        if self._dirty_monitors:
            for monitor_cls in self._dirty_monitors:
                self._refresh_monitor(monitor_cls)
            self._dirty_monitors.clear()
        value = self._global
        self.last_novel = value not in self._seen
        if self.last_novel:
            self._seen.add(value)
        return Fingerprint(value, self._inexact == 0)

    def recompute(self) -> Fingerprint:
        """The fingerprint rebuilt from scratch (for invariant checking).

        Walks every machine and monitor and re-derives the value the
        incremental bookkeeping should be holding; tests assert
        ``current().value == recompute().value`` at arbitrary points.  Never
        called on any hot path.
        """
        fresh = FingerprintTracker(self._runtime)
        for machine in self._runtime._machines.values():
            fresh.register_machine(machine)
            record = fresh._records[machine._id.value]
            for event in machine._inbox:
                record.inbox.append(*stable_hash(event))
            for event in machine._raised:
                record.raised.append(*stable_hash(event))
            fresh._fold(record)
        for monitor_cls in self._runtime._monitors:
            fresh.register_monitor(fresh._runtime._monitors[monitor_cls])
        value = fresh.current()
        return Fingerprint(value.value, value.exact)


def tracker_for(runtime: "RuntimeKernel") -> Optional[FingerprintTracker]:
    """The runtime's tracker, if fingerprinting is active (else ``None``)."""
    return getattr(runtime, "_fingerprint", None)


def merge_visited(target: Dict[int, int], entries: "Mapping[int, int]") -> int:
    """Max-merge fully-explored-state entries into ``target``; returns the
    number of entries added or improved.

    A visited entry maps a fingerprint to the most *remaining steps* any
    search has fully explored it with (see stateful search in
    :mod:`repro.core.strategy.dfs_strategy`).  Entries are monotone facts
    about the program — "everything within ``r`` steps of this state has
    been visited" — so merging across searches (and across processes, which
    is how the parallel driver composes dedupe) is sound as long as the
    larger remaining-steps value wins.
    """
    novel = 0
    for fingerprint, remaining in entries.items():
        if remaining > target.get(fingerprint, -1):
            target[fingerprint] = remaining
            novel += 1
    return novel
