"""The machine programming model.

A :class:`Machine` is a state machine with an inbox.  Machines communicate
exclusively by sending events to each other's :class:`~repro.core.ids.MachineId`;
the runtime owns every inbox and decides, at each step, which machine runs
next.  During systematic testing that decision — along with every value
returned from :meth:`Machine.random`, :meth:`Machine.random_integer` and
:meth:`Machine.choose` — is a controlled nondeterministic choice.

Handlers are ordinary methods registered with
:func:`~repro.core.declarations.on_event`.  A handler may be a plain function
(run to completion) or a generator function that yields
:class:`~repro.core.events.Receive` to block until a matching event arrives,
which is how request/response protocols are written without manual
continuation passing.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Optional, Sequence, TYPE_CHECKING

from .declarations import StateMachineSpec, StateRef, build_spec
from .errors import FrameworkError
from .events import Event, Receive
from .ids import MachineId

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .runtime.kernel import RuntimeKernel


class MachineHaltRequested(Exception):
    """Internal control-flow exception raised by :meth:`Machine.halt`."""


def _dec_pending(counts: dict, event_type: type) -> None:
    """Decrement the per-type pending count for one dequeued/dropped event.

    Every inbox removal site calls this so that
    :meth:`RuntimeKernel.count_pending_events` /
    :meth:`RuntimeKernel.has_pending_event` can answer type-only queries
    from the counts instead of scanning the inbox.  Entries are deleted at
    zero to keep the dict as small as the set of queued event types.
    """
    remaining = counts.get(event_type, 1) - 1
    if remaining > 0:
        counts[event_type] = remaining
    else:
        counts.pop(event_type, None)


class Machine:
    """Base class for all machines (harness machines and wrapped components).

    Subclasses declare their behaviour with nested
    :class:`~repro.core.declarations.State` classes (the State DSL)::

        class Server(Machine):
            class Listening(State, initial=True):
                deferred = (SyncReport,)       # keep queued until un-deferred
                ignored = (Noise,)             # drop at dequeue time

                @on_event(ClientRequest)
                def handle_request(self, event):
                    self.goto(Server.Closing)

            class Closing(State):
                def on_entry(self):
                    ...

    or with the legacy string-state form (``@on_event(EventT, state="...")``
    plus the ``initial_state`` class attribute) — both lower to the same
    :class:`~repro.core.declarations.StateMachineSpec` and may be mixed.
    Subclasses may override:

    * ``on_start(*args, **kwargs)`` — runs when the machine starts; receives
      the arguments passed to :meth:`create`.
    * ``on_halt()`` — runs when the machine halts.

    Class attributes:

    * ``initial_state`` — legacy name of the start state; superseded by a
      DSL state declared with ``initial=True``.
    * ``ignore_unhandled_events`` — if true, events without a handler in the
      current state are dropped instead of being reported as a bug.
    """

    initial_state: str = "init"
    ignore_unhandled_events: bool = False

    _spec_cache: dict = {}

    def __init__(self, runtime: "RuntimeKernel", machine_id: MachineId) -> None:
        self._runtime = runtime
        self._id = machine_id
        self._inbox: deque[Event] = deque()
        #: per-event-type tallies of the inbox contents, maintained at every
        #: enqueue/dequeue so type-only pending queries are O(#types), not
        #: O(inbox length).  Keys are exact event classes.
        self._pending_counts: dict = {}
        self._halted = False
        self._coroutine = None
        self._pending_receive: Optional[Receive] = None
        #: mirror of this machine's membership in the runtime's enabled set;
        #: maintained by the runtime and by :meth:`_enqueue`.
        self._enabled = False
        #: per-instance handle on the (class-cached) spec, so dispatch and
        #: transitions skip a dict lookup per event.
        spec = type(self).spec()
        self._spec = spec
        #: P#-style state stack (bottom .. top); ``goto`` replaces the top,
        #: ``push_state``/``pop_state`` grow and shrink it.  The DSL-declared
        #: initial state wins over the legacy ``initial_state`` string.
        initial = spec.initial_state if spec.initial_state is not None else type(self).initial_state
        self._state_stack = [initial]
        #: mirror of ``_state_stack[-1]`` (dispatch reads it once per event).
        self._current_state = initial
        #: monotonic count of goto/push/pop transitions; lets machine start-up
        #: tell "never left the initial state" from "left and came back".
        self._transition_count = 0
        #: classification context for the current stack (shared per class,
        #: cached per stack tuple); the runtime swaps it on every transition.
        self._state_ctx = spec.context_for((initial,))
        #: local high-priority queue filled by :meth:`raise_event`; drained
        #: before the inbox and never subject to defer/ignore disciplines.
        self._raised: deque[Event] = deque()
        #: bound handler methods, cached by method name on first dispatch
        #: (avoids descriptor lookup + bound-method allocation per event).
        self._bound_handlers: dict = {}

    # ------------------------------------------------------------------
    # class-level metadata
    # ------------------------------------------------------------------
    @classmethod
    def spec(cls) -> StateMachineSpec:
        """The static state-machine description of this class (cached)."""
        cached = Machine._spec_cache.get(cls)
        if cached is None:
            cached = build_spec(cls)
            Machine._spec_cache[cls] = cached
        return cached

    # ------------------------------------------------------------------
    # identity and state
    # ------------------------------------------------------------------
    @property
    def id(self) -> MachineId:
        return self._id

    @property
    def current_state(self) -> str:
        """Name of the active state (the top of the state stack)."""
        return self._current_state

    @property
    def state_stack(self) -> tuple:
        """The state stack bottom-to-top (a one-element tuple without pushes)."""
        return tuple(self._state_stack)

    @property
    def is_halted(self) -> bool:
        return self._halted

    # ------------------------------------------------------------------
    # hooks
    # ------------------------------------------------------------------
    def on_start(self, *args: Any, **kwargs: Any):
        """Hook invoked when the machine starts.  May be a generator."""

    def on_halt(self) -> None:
        """Hook invoked when the machine halts."""

    # ------------------------------------------------------------------
    # communication
    # ------------------------------------------------------------------
    def send(self, target: MachineId, event: Event) -> None:
        """Enqueue ``event`` in ``target``'s inbox (non-blocking)."""
        self._runtime.send_event(target, event, self._id)

    def create(self, machine_cls: type, *args: Any, name: str = "", **kwargs: Any) -> MachineId:
        """Create a new machine and return its id.

        The new machine starts asynchronously: its ``on_start`` hook runs only
        when the scheduler chooses to run it, so creation itself is part of
        the explored interleavings.
        """
        return self._runtime.create_machine(machine_cls, *args, name=name, creator=self._id, **kwargs)

    def goto(self, state: StateRef) -> None:
        """Transition this machine to ``state``, running exit/entry actions.

        ``state`` is a state name or a nested :class:`~repro.core.declarations.State`
        subclass.  With a state stack in place, ``goto`` replaces the top of
        the stack (the states below are unaffected).
        """
        self._runtime.transition_machine(self, state)

    def push_state(self, state: StateRef) -> None:
        """Push ``state`` onto the state stack and enter it.

        The current state is paused, not exited: its exit action does not
        run, and events it handles (or defers/ignores) that the pushed state
        does not resolve itself are still governed by it — P#'s handler
        inheritance through the state stack.  :meth:`pop_state` returns to
        it without re-running its entry action.
        """
        self._runtime.push_machine_state(self, state)

    def pop_state(self) -> None:
        """Pop the top of the state stack, running its exit action."""
        self._runtime.pop_machine_state(self)

    def raise_event(self, event: Event) -> None:
        """Queue ``event`` on this machine's local high-priority queue.

        Raised events are dispatched before anything in the inbox and are
        never deferred or ignored (they bypass the queue disciplines, like
        P#'s ``raise``).  They are handled by ordinary handlers; a raised
        event no state handles is an unhandled-event bug as usual.  A
        machine blocked in a :class:`Receive` is *not* woken by a raised
        event — raised events are dispatched, never received — so the queue
        drains only once the receive has been satisfied.
        """
        if not isinstance(event, Event):
            raise FrameworkError(f"raise_event expects an Event instance, got {event!r}")
        if self._halted:
            return
        self._raised.append(event)
        tracker = self._runtime._fingerprint
        if tracker is not None:
            tracker.on_raise(self, event)
        if not self._enabled and self._pending_receive is None:
            self._runtime._mark_enabled(self)

    def halt(self) -> None:
        """Halt this machine.  Control does not return to the handler."""
        raise MachineHaltRequested()

    # ------------------------------------------------------------------
    # controlled nondeterminism
    # ------------------------------------------------------------------
    def random(self) -> bool:
        """A controlled fair boolean choice (the P# ``Nondet()``)."""
        return self._runtime.next_boolean(self._id)

    def random_integer(self, max_value: int) -> int:
        """A controlled integer choice in ``[0, max_value)``."""
        return self._runtime.next_integer(self._id, max_value)

    def choose(self, options: Sequence[Any]) -> Any:
        """Pick one element of ``options`` under scheduler control."""
        options = list(options)
        if not options:
            raise FrameworkError("choose() requires a non-empty sequence")
        return options[self._runtime.next_integer(self._id, len(options))]

    def count_pending(self, target: MachineId, event_type: type, predicate=None) -> int:
        """Number of matching events currently queued at ``target``.

        Environment-model machines use this to avoid flooding a component's
        inbox with redundant periodic messages (heartbeats, sync reports,
        timer ticks): sending a new one only when the previous one has been
        consumed models a sender whose period is much longer than the
        receiver's processing time, and keeps queue growth bounded without
        removing any interleaving of *distinct* events.
        """
        return self._runtime.count_pending_events(target, event_type, predicate)

    # ------------------------------------------------------------------
    # specification
    # ------------------------------------------------------------------
    def assert_that(self, condition: bool, message: str = "") -> None:
        """Local safety assertion; a falsy ``condition`` is a safety bug."""
        self._runtime.check_assertion(condition, message, source=str(self._id))

    def notify_monitor(self, monitor_cls: type, event: Event) -> None:
        """Synchronously notify a registered monitor of ``event``."""
        self._runtime.notify_monitor(monitor_cls, event, source=self._id)

    # ------------------------------------------------------------------
    # logging
    # ------------------------------------------------------------------
    def log(self, message: str) -> None:
        """Record a message in the execution log (shown in bug traces).

        The message is captured lazily: the final ``"<id>: <message>"``
        string is only built if the log is materialized (bug found, or
        ``verbose`` mirroring enabled).
        """
        self._runtime.log("{}: {}", self._id, message)

    # ------------------------------------------------------------------
    # runtime-facing helpers (not part of the user API)
    # ------------------------------------------------------------------
    def _enqueue(self, event: Event) -> None:
        self._inbox.append(event)
        counts = self._pending_counts
        event_type = type(event)
        counts[event_type] = counts.get(event_type, 0) + 1
        tracker = self._runtime._fingerprint
        if tracker is not None:
            tracker.on_enqueue(self, event)
        # Incremental enabled-set maintenance: a new event can only make
        # this machine runnable (never less runnable), and only does so if
        # the machine is not blocked in a receive the event fails to match
        # and the current state's disciplines let the event dequeue (an
        # event that is deferred or ignored right now adds no work).
        if not self._enabled and not self._halted:
            receive = self._pending_receive
            if receive is None:
                ctx = self._state_ctx
                if ctx.plain or ctx.dequeuable(event_type):
                    self._runtime._mark_enabled(self)
            elif receive.matches(event):
                self._runtime._mark_enabled(self)

    def _has_work(self) -> bool:
        if self._halted:
            return False
        if self._pending_receive is not None:
            return any(self._pending_receive.matches(event) for event in self._inbox)
        if self._coroutine is not None:
            # Paused at a plain ``yield`` (an explicit scheduling point): the
            # machine can resume as soon as the scheduler picks it again.
            return True
        if self._raised:
            return True
        ctx = self._state_ctx
        if ctx.plain:
            return bool(self._inbox)
        return ctx.any_dequeuable(self._inbox)

    def _dequeue_matching(self, receive: Receive) -> Event:
        for index, event in enumerate(self._inbox):
            if receive.matches(event):
                del self._inbox[index]
                _dec_pending(self._pending_counts, type(event))
                tracker = self._runtime._fingerprint
                if tracker is not None:
                    tracker.on_inbox_remove(self, index)
                return event
        raise FrameworkError(f"{self._id}: no event matching {receive} in inbox")

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self._id} state={self._current_state!r}>"
