"""Prefix-partitioned parallel exhaustive search with work stealing.

The exhaustive strategies (``dfs``, ``dpor-lite``, stateful variants) walk
the choice tree one schedule at a time on a single core.  This module drives
them on several processes at once by partitioning the *tree*, not the seed
space: a subtree claim is a frozen prefix of scheduler decisions (see
``DFSStrategy.set_claim``), and the subtrees of distinct claims are disjoint
by construction, so workers never explore the same schedule twice.

Coordinator/worker protocol
---------------------------

::

    coordinator                         worker 0..N-1
    ───────────                         ─────────────
    pending ── claim+visited ──▶ task queue ──▶ replay frozen prefix,
      ▲                                         exhaust subtree for up to
      │                                         claim_iterations schedules
      └── result queue ◀── report, frontier, ◀──┘
          merge visited    visited delta

The coordinator keeps at most one outstanding claim per worker, so every
dispatched claim carries a fresh snapshot of the *global* visited set.
Work stealing is dynamic: a worker whose claim outlives its per-claim budget
advances the search one last step and exports the unexplored remainder as
sub-claims (``DFSStrategy.export_frontier``) — the current path plus every
unvisited right sibling — which the coordinator re-queues for whichever
worker frees up first, so deep subtrees keep splitting and cores never idle.

Cross-process stateful dedupe composes through fingerprint gossip: each
result carries the visited entries the worker proved (post-order, so each is
a globally valid "fully explored with ``r`` steps remaining" fact), the
coordinator max-merges them (:func:`repro.core.fingerprint.merge_visited`),
and later claims ship the union.  A worker whose claim *prefix* hits a state
another worker already exhausted abandons the whole claim
(``DFSStrategy.claim_covered``) instead of re-exploring it.

Determinism: per-claim reports merge by claim order — the lexicographic
order of the decision-index path, i.e. depth-first order of the subtree
roots — regardless of which worker finished first, exactly like the
portfolio's job-index merge.  The set of distinct fingerprints (and the set
of bug kinds) is identical to the serial search's: sleep sets and stateful
pruning only ever skip states that some execution, somewhere, still visits.

With ``num_workers=1`` no processes are spawned at all: the scenario runs on
a plain :class:`~repro.core.engine.TestingEngine`, trace-for-trace identical
to the serial strategy.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import queue as queue_module
import time
import traceback
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from .config import TestingConfig
from .coverage import CoverageTracker
from .engine import TestingEngine, TestReport
from .fingerprint import merge_visited
from .portfolio import JobResult, PortfolioJob, PortfolioReport
from .registry import TestCase, get_scenario, import_scenario_modules
from .runtime import BugInfo
from .strategy.registry import strategy_class

#: decision path: ``(num_options, chosen index)`` per choice-tree node
ClaimPath = Tuple[Tuple[int, int], ...]


@dataclass(frozen=True)
class SubtreeClaim:
    """One unit of parallel work: the subtree rooted at a decision prefix."""

    path: ClaimPath = ()

    @property
    def depth(self) -> int:
        return len(self.path)

    @property
    def indices(self) -> Tuple[int, ...]:
        """The merge key: depth-first order of subtree roots."""
        return tuple(index for _, index in self.path)

    def to_dict(self) -> dict:
        return {"path": [[num_options, index] for num_options, index in self.path]}

    @staticmethod
    def from_dict(payload: dict) -> "SubtreeClaim":
        return SubtreeClaim(
            path=tuple((int(pair[0]), int(pair[1])) for pair in payload.get("path", ()))
        )


@dataclass
class ClaimResult:
    """What one worker's exploration of one claim produced."""

    claim: SubtreeClaim
    report: TestReport
    worker: int
    #: subtree fully explored within this claim's budget
    exhausted: bool
    #: claim abandoned: its prefix hit a state another worker had exhausted
    covered: bool
    #: sub-claims the worker exported for stealing (0 when exhausted/covered)
    split: int = 0

    def to_dict(self) -> dict:
        return {
            "claim": self.claim.to_dict(),
            "report": self.report.to_dict(),
            "worker": self.worker,
            "exhausted": self.exhausted,
            "covered": self.covered,
            "split": self.split,
        }

    @staticmethod
    def from_dict(payload: dict) -> "ClaimResult":
        return ClaimResult(
            claim=SubtreeClaim.from_dict(payload["claim"]),
            report=TestReport.from_dict(payload["report"]),
            worker=payload.get("worker", 0),
            exhausted=payload.get("exhausted", False),
            covered=payload.get("covered", False),
            split=payload.get("split", 0),
        )


@dataclass
class ParallelReport:
    """Deterministically merged outcome of a parallel exhaustive search."""

    scenario: str
    strategy: str
    num_workers: int
    claim_iterations: int
    results: List[ClaimResult] = field(default_factory=list)
    elapsed_seconds: float = 0.0
    #: True when the run stopped before the space was exhausted (total
    #: iteration budget spent, or --stop-on-bug fired)
    stopped_early: bool = False

    @property
    def bug_found(self) -> bool:
        return any(result.report.bug_found for result in self.results)

    @property
    def bugs(self) -> List[BugInfo]:
        """Every bug, in claim (depth-first subtree) order."""
        return [bug for result in self.results for bug in result.report.bugs]

    @property
    def winning_result(self) -> Optional[ClaimResult]:
        """The first claim (in claim order) whose exploration found a bug."""
        for result in self.results:
            if result.report.bug_found:
                return result
        return None

    @property
    def first_bug(self) -> Optional[BugInfo]:
        winner = self.winning_result
        return winner.report.first_bug if winner is not None else None

    @property
    def total_iterations(self) -> int:
        return sum(result.report.iterations_executed for result in self.results)

    @property
    def state_space_exhausted(self) -> bool:
        """Whether the whole bounded space was covered.

        A split claim is not itself exhausted — its remainder was re-queued
        as sub-claims — so completeness is the coordinator's invariant: the
        run ended with an empty frontier and no early stop, which means every
        exported sub-claim was eventually exhausted or proven covered.
        """
        return bool(self.results) and not self.stopped_early

    @property
    def merged_coverage(self) -> CoverageTracker:
        """Coverage aggregated across every claim's report (claim order)."""
        merged = CoverageTracker()
        for result in self.results:
            merged.merge(result.report.coverage)
        return merged

    def worker_stats(self) -> List[dict]:
        """Per-worker claim/execution tallies (``run --parallel --json``)."""
        stats: Dict[int, dict] = {}
        for result in self.results:
            entry = stats.setdefault(
                result.worker,
                {
                    "worker": result.worker,
                    "claims": 0,
                    "claims_exhausted": 0,
                    "claims_covered": 0,
                    "claims_split": 0,
                    "executions": 0,
                    "bugs": 0,
                    "busy_seconds": 0.0,
                },
            )
            entry["claims"] += 1
            entry["claims_exhausted"] += 1 if result.exhausted else 0
            entry["claims_covered"] += 1 if result.covered else 0
            entry["claims_split"] += 1 if result.split else 0
            entry["executions"] += result.report.iterations_executed
            entry["bugs"] += len(result.report.bugs)
            entry["busy_seconds"] += result.report.elapsed_seconds
        for entry in stats.values():
            entry["busy_seconds"] = round(entry["busy_seconds"], 6)
        return [stats[worker] for worker in sorted(stats)]

    def summary(self) -> str:
        base = (
            f"parallel[{self.strategy}] on {self.scenario!r}: "
            f"{len(self.results)} claims, {self.total_iterations} executions "
            f"in {self.elapsed_seconds:.2f}s ({self.num_workers} workers)"
        )
        if self.state_space_exhausted:
            base = f"{base}, space exhausted"
        distinct_states = len(self.merged_coverage.fingerprints)
        if distinct_states:
            base = f"{base}, {distinct_states} distinct states"
        bug = self.first_bug
        if bug is None:
            return f"{base} — no bug found"
        winner = self.winning_result
        return (
            f"{base} — bug found (claim {list(winner.claim.indices)!r}, "
            f"worker {winner.worker}): {bug.message}"
        )

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "scenario": self.scenario,
            "strategy": self.strategy,
            "num_workers": self.num_workers,
            "claim_iterations": self.claim_iterations,
            "results": [result.to_dict() for result in self.results],
            "elapsed_seconds": self.elapsed_seconds,
            "stopped_early": self.stopped_early,
        }

    @staticmethod
    def from_dict(payload: dict) -> "ParallelReport":
        return ParallelReport(
            scenario=payload["scenario"],
            strategy=payload["strategy"],
            num_workers=payload.get("num_workers", 1),
            claim_iterations=payload.get("claim_iterations", 1),
            results=[ClaimResult.from_dict(entry) for entry in payload.get("results", [])],
            elapsed_seconds=payload.get("elapsed_seconds", 0.0),
            stopped_early=payload.get("stopped_early", False),
        )

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @staticmethod
    def from_json(text: str) -> "ParallelReport":
        return ParallelReport.from_dict(json.loads(text))

    def as_portfolio_report(
        self, config: TestingConfig, imports: Sequence[str] = ()
    ) -> PortfolioReport:
        """Repackage the claim results as a :class:`PortfolioReport`.

        One job per claim, numbered in claim order, so the saved file is
        replayable with ``python -m repro replay`` (and loadable by every
        existing report consumer) exactly like a portfolio run's output.
        """
        results = []
        for position, result in enumerate(self.results):
            job = PortfolioJob(
                index=position,
                scenario=self.scenario,
                strategy=self.strategy,
                seed=config.seed,
                config=replace(
                    config,
                    strategy=self.strategy,
                    iterations=max(1, result.report.iterations_requested),
                ),
                imports=tuple(imports),
            )
            results.append(JobResult(job=job, report=result.report))
        return PortfolioReport(
            scenario=self.scenario,
            results=results,
            elapsed_seconds=self.elapsed_seconds,
            num_workers=self.num_workers,
        )


# ---------------------------------------------------------------------------
# worker entry point (top-level so it pickles under every start method)
# ---------------------------------------------------------------------------
def _claim_worker(
    worker_id: int,
    scenario: str,
    config_payload: dict,
    imports: Sequence[str],
    task_queue,
    result_queue,
) -> None:
    """Pull claims, exhaust (a budget of) each, push results — until the
    ``None`` sentinel.  Mirrors the portfolio worker: the scenario is
    rebuilt *by name* after replaying the parent's ``--import`` list, so the
    loop is self-contained under the ``spawn`` start method too."""
    try:
        import_scenario_modules(imports)
        testcase = get_scenario(scenario)
        config = TestingConfig.from_dict(config_payload)
    except BaseException:
        result_queue.put({"worker": worker_id, "error": traceback.format_exc()})
        return
    while True:
        task = task_queue.get()
        if task is None:
            return
        try:
            claim = SubtreeClaim.from_dict(task["claim"])
            engine = TestingEngine(testcase.build(), config)
            outcome = engine.explore_claim(claim.path, task["visited"])
            result_queue.put(
                {
                    "worker": worker_id,
                    "claim": claim.to_dict(),
                    "report": outcome.report.to_dict(),
                    "exhausted": outcome.exhausted,
                    "covered": outcome.covered,
                    "frontier": [
                        [[num_options, index] for num_options, index in path]
                        for path in outcome.frontier
                    ],
                    "visited_delta": outcome.visited_delta,
                    "error": None,
                }
            )
        except BaseException:
            result_queue.put({"worker": worker_id, "error": traceback.format_exc()})


class ParallelExplorer:
    """Exhaust a scenario's bounded schedule space on multiple processes.

    Args:
        scenario: a registered scenario name or a :class:`TestCase`; with
            ``num_workers > 1`` it must be resolvable *by name* in a fresh
            process (i.e. registered, plus ``imports`` for user scenarios).
        strategy: an exhaustive DFS-family strategy name (``dfs`` /
            ``dpor-lite``); the strategy class must support subtree claims.
        num_workers: worker processes; 1 runs serially in-process on a plain
            :class:`TestingEngine` (trace-for-trace identical to a serial
            run of the strategy).
        config: template :class:`TestingConfig`; ``config.iterations`` is
            the *total* execution budget across all claims (the space is
            usually exhausted first), and ``config.strategy`` is overridden.
        claim_iterations: per-claim schedule budget before a worker re-splits
            its subtree for stealing.  Smaller = finer load balancing but
            more claim overhead.
        imports: module names / ``.py`` paths replayed in each worker before
            the registry lookup (the CLI's ``--import``).
        start_method: multiprocessing start method; None = platform default.
        stop_on_first_bug: stop dispatching new claims once a completed
            claim reports a bug (in-flight claims still drain, keeping the
            merge deterministic over completed claims).
    """

    def __init__(
        self,
        scenario: "str | TestCase",
        strategy: str = "dpor-lite",
        num_workers: Optional[int] = None,
        config: Optional[TestingConfig] = None,
        claim_iterations: int = 50,
        imports: Sequence[str] = (),
        start_method: Optional[str] = None,
        stop_on_first_bug: bool = False,
    ) -> None:
        self.testcase = scenario if isinstance(scenario, TestCase) else get_scenario(scenario)
        if not getattr(strategy_class(strategy), "supports_claims", False):
            raise ValueError(
                f"strategy {strategy!r} does not support subtree claims; "
                "parallel exploration needs an exhaustive DFS-family strategy"
            )
        self.strategy = strategy
        self.num_workers = max(1, num_workers if num_workers is not None else os.cpu_count() or 1)
        if claim_iterations < 1:
            raise ValueError("claim_iterations must be >= 1")
        self.claim_iterations = claim_iterations
        base = config if config is not None else self.testcase.default_config()
        self.config = replace(base, strategy=strategy)
        self.imports = tuple(imports)
        self.start_method = start_method
        self.stop_on_first_bug = stop_on_first_bug

    # ------------------------------------------------------------------
    def run(self) -> ParallelReport:
        started = time.perf_counter()
        if self.num_workers == 1:
            report = self._run_serial()
        else:
            report = self._run_parallel()
        report.elapsed_seconds = time.perf_counter() - started
        return report

    def _run_serial(self) -> ParallelReport:
        """One worker: the plain serial engine, wrapped as a root claim."""
        engine = TestingEngine(self.testcase.build(), self.config)
        report = engine.run()
        result = ClaimResult(
            claim=SubtreeClaim(),
            report=report,
            worker=0,
            exhausted=report.state_space_exhausted,
            covered=False,
        )
        return ParallelReport(
            scenario=self.testcase.name,
            strategy=self.strategy,
            num_workers=1,
            claim_iterations=self.claim_iterations,
            results=[result],
            stopped_early=not report.state_space_exhausted,
        )

    def _run_parallel(self) -> ParallelReport:
        context = (
            multiprocessing.get_context(self.start_method)
            if self.start_method is not None
            else multiprocessing.get_context()
        )
        # Queue.put serializes in a feeder thread, possibly after the
        # coordinator has merged more gossip into the global visited set —
        # which is why every task ships its own dict(...) snapshot.
        task_queue = context.Queue()
        result_queue = context.Queue()
        per_claim_config = replace(self.config, iterations=self.claim_iterations)
        workers = [
            context.Process(
                target=_claim_worker,
                args=(
                    worker_id,
                    self.testcase.name,
                    per_claim_config.to_dict(),
                    self.imports,
                    task_queue,
                    result_queue,
                ),
                daemon=True,
            )
            for worker_id in range(self.num_workers)
        ]
        for worker in workers:
            worker.start()

        pending: List[SubtreeClaim] = [SubtreeClaim()]
        visited: Dict[int, int] = {}
        results: List[ClaimResult] = []
        budget = self.config.iterations
        executed = 0
        in_flight = 0
        stopping = False
        try:
            while pending or in_flight:
                if stopping or executed >= budget:
                    if not in_flight:
                        break
                else:
                    # Keep at most one claim outstanding per worker: each
                    # dispatch then carries the freshest visited snapshot,
                    # which is what lets workers skip each other's subtrees.
                    while pending and in_flight < self.num_workers:
                        claim = pending.pop()  # LIFO: deepest claims first
                        task_queue.put({"claim": claim.to_dict(), "visited": dict(visited)})
                        in_flight += 1
                if not in_flight:
                    continue
                message = self._next_result(result_queue, workers)
                in_flight -= 1
                if message.get("error"):
                    raise RuntimeError(
                        f"parallel worker {message.get('worker')} failed:\n"
                        f"{message['error']}"
                    )
                merge_visited(visited, message["visited_delta"])
                frontier = [
                    SubtreeClaim(tuple((pair[0], pair[1]) for pair in path))
                    for path in message["frontier"]
                ]
                # Re-queue in reverse so the LIFO pop dispatches the
                # depth-first-first claim first.
                pending.extend(reversed(frontier))
                result = ClaimResult(
                    claim=SubtreeClaim.from_dict(message["claim"]),
                    report=TestReport.from_dict(message["report"]),
                    worker=message["worker"],
                    exhausted=message["exhausted"],
                    covered=message["covered"],
                    split=len(frontier),
                )
                results.append(result)
                executed += result.report.iterations_executed
                if self.stop_on_first_bug and result.report.bug_found:
                    stopping = True
        finally:
            for _ in workers:
                task_queue.put(None)
            for worker in workers:
                worker.join(timeout=10)
            for worker in workers:
                if worker.is_alive():  # pragma: no cover - hang safety net
                    worker.terminate()
                    worker.join(timeout=5)
            for shared_queue in (task_queue, result_queue):
                shared_queue.close()
                shared_queue.cancel_join_thread()

        results.sort(key=lambda result: result.claim.indices)
        return ParallelReport(
            scenario=self.testcase.name,
            strategy=self.strategy,
            num_workers=self.num_workers,
            claim_iterations=self.claim_iterations,
            results=results,
            stopped_early=bool(pending) or stopping,
        )

    @staticmethod
    def _next_result(result_queue, workers) -> dict:
        """Blocking result read that notices dead workers instead of hanging.

        A worker that is killed (OOM, signal) between pulling a task and
        pushing its result would otherwise leave the coordinator blocked
        forever with a claim marked in flight.
        """
        while True:
            try:
                return result_queue.get(timeout=1.0)
            except queue_module.Empty:
                dead = [worker for worker in workers if not worker.is_alive()]
                if dead:
                    codes = [worker.exitcode for worker in dead]
                    raise RuntimeError(
                        f"{len(dead)} parallel worker(s) died without reporting "
                        f"(exit codes {codes})"
                    ) from None


def explore_scenario(
    name: str,
    strategy: str = "dpor-lite",
    num_workers: Optional[int] = None,
    config: Optional[TestingConfig] = None,
    **explorer_kwargs,
) -> ParallelReport:
    """Convenience wrapper: build a :class:`ParallelExplorer`, run it."""
    return ParallelExplorer(
        name, strategy=strategy, num_workers=num_workers, config=config, **explorer_kwargs
    ).run()


__all__ = [
    "ClaimResult",
    "ParallelExplorer",
    "ParallelReport",
    "SubtreeClaim",
    "explore_scenario",
]
