"""Modeled timers.

System correctness should never hinge on the frequency of any individual
timer (§3.3), so harnesses delegate all timing nondeterminism to the testing
runtime: a :class:`TimerMachine` repeatedly makes a controlled boolean choice
and, when it comes up true, delivers a :class:`~repro.core.events.TimerTick`
to its target.  The scheduler is therefore free to interleave timeouts
arbitrarily with every other event in the system, which is precisely what
exposes expiration/heartbeat races such as the vNext liveness bug.
"""

from __future__ import annotations

from .declarations import on_event
from .events import Event, TimerTick
from .ids import MachineId
from .machine import Machine


class StartTimer(Event):
    """Ask a timer to start (or restart) ticking."""


class StopTimer(Event):
    """Ask a timer to stop ticking (pending ticks may still be delivered)."""


class _TimerLoop(Event):
    """Internal self-message that keeps the timer loop running."""


class TimerMachine(Machine):
    """Nondeterministic timer driven entirely by controlled choices.

    Created with ``create(TimerMachine, target=<machine id>, timer_name=...,
    max_ticks=...)``.  By default the timer loops forever (executions are cut
    off by the engine's step bound, as in the paper); pass ``max_ticks`` to
    bound the number of loop rounds when a naturally terminating execution is
    preferred (e.g. for quiescence-based harnesses).  With ``always_fire`` the
    timer delivers a tick on every loop round (regular periodic timer); by
    default each round makes a controlled nondeterministic choice, exactly as
    in Figure 9 of the paper.
    """

    initial_state = "running"

    def on_start(
        self,
        target: MachineId,
        timer_name: str = "timer",
        max_ticks: "int | None" = None,
        always_fire: bool = False,
    ) -> None:
        self.target = target
        self.timer_name = timer_name
        self.max_ticks = max_ticks
        self.always_fire = always_fire
        self.rounds = 0
        self.active = True
        # Loop-round plumbing allocated once: the loop event has at most one
        # outstanding copy (it is this machine's own self-message), and the
        # tick predicate closes over nothing that changes between rounds.
        self._loop_event = _TimerLoop()
        name = timer_name
        self._tick_predicate = lambda tick: tick.timer_name == name
        if self._runtime.wall_clock:
            # Production mode: ticks come from the runtime's real wall-clock
            # timer service (one round per tick interval, same
            # one-outstanding-tick and max_ticks rules); the controlled
            # self-message loop below exists only under systematic testing.
            self._runtime.start_wall_clock_timer(self)
            return
        self.send(self._id, self._loop_event)

    @on_event(_TimerLoop)
    def run_loop(self) -> None:
        if not self.active:
            return
        self.rounds += 1
        # At most one outstanding tick per timer: a timeout the target has
        # not observed yet is not duplicated (mirroring a periodic timer),
        # which also stops unfair scheduling prefixes from flooding the
        # target's inbox with redundant timeouts.
        if not self._runtime.has_pending_event(
            self.target, TimerTick, self._tick_predicate
        ) and (self.always_fire or self.random()):
            self.send(self.target, TimerTick(self.timer_name))
        if self.max_ticks is None or self.rounds < self.max_ticks:
            self.send(self._id, self._loop_event)

    @on_event(StopTimer)
    def stop(self) -> None:
        self.active = False
        if self._runtime.wall_clock:
            # A tick already delivered stays in the target's inbox: the
            # documented "pending ticks may still be delivered" race holds
            # in production too — only *future* rounds are cancelled.
            self._runtime.stop_wall_clock_timer(self)

    @on_event(StartTimer)
    def restart(self) -> None:
        if not self.active:
            self.active = True
            self.rounds = 0
            if self._runtime.wall_clock:
                self._runtime.start_wall_clock_timer(self)
            else:
                self.send(self.id, _TimerLoop())
