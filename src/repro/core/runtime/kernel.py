"""The runtime kernel: everything both execution modes share.

:class:`RuntimeKernel` owns the *semantics* of the machine programming model —
the machine table, the monitor registry, state-stack transitions, handler
dispatch, event disciplines, coroutine (``yield Receive``) advancement,
assertion checking, deferred structured logging and bug recording — without
committing to an execution policy.  Two controllers plug in on top:

* :class:`~repro.core.runtime.testing.TestRuntime` — the serialized
  systematic-testing controller: one thread, every interleaving decision
  delegated to a scheduling strategy and recorded in a replayable
  :class:`~repro.core.trace.ScheduleTrace`.
* :class:`~repro.core.runtime.production.ProductionRuntime` — the concurrent
  deployment controller: an asyncio event loop with one mailbox task per
  machine, thread-safe external sends, ``os.urandom``-seeded nondeterminism
  and real wall-clock timers.

Machines and monitors talk to the runtime exclusively through the narrow
kernel surface (``send_event``, ``create_machine``, ``next_boolean`` /
``next_integer``, ``transition_machine`` / ``push_machine_state`` /
``pop_machine_state``, ``check_assertion``, ``notify_monitor``,
``count_pending_events`` / ``has_pending_event``, ``log`` and the
``_mark_enabled`` / ``_mark_disabled`` runnability hooks), so the same
harness classes run unmodified under either controller — the paper's promise
that the *tested* program is the *deployed* program.

Controllers must implement:

* ``send_event(target, event, sender=None)`` — deliver an event.
* ``next_boolean(requester)`` / ``next_integer(requester, max_value)`` —
  resolve a nondeterministic choice (controlled in testing, random in
  production).
* ``_mark_enabled(machine)`` / ``_mark_disabled(machine)`` — react to a
  machine's runnability changing (enabled-set bookkeeping in testing, mailbox
  wake-ups in production).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from types import GeneratorType
from typing import Any, Dict, List, Optional, Tuple

from ..config import TestingConfig
from ..coverage import CoverageTracker
from ..declarations import DEFER, IGNORE, HandlerInfo, StateRef, resolve_state_name
from ..errors import (
    BugError,
    DeadlockError,
    FrameworkError,
    LivenessViolationError,
    SafetyViolationError,
    UnhandledEventError,
)
from ..events import Event, Halt, Receive, StartEvent
from ..ids import MachineId
from ..machine import Machine, _dec_pending
from ..monitors import Monitor

#: One deferred log entry: a flat ``(template, *args)`` tuple (flat rather
#: than nested to save one allocation per record on the hot path).  Arguments
#: are formatted (and therefore ``repr()``-ed) only when the log is
#: materialized, so they should be values whose printable form is stable for
#: the duration of the execution (ids, event payloads, state names).
LogRecord = Tuple[Any, ...]


#: Runtime-control events, dispatched outside the user handler table.
_CONTROL_EVENTS = (Halt, StartEvent)


def format_log_record(record: LogRecord) -> str:
    """Materialize one deferred log record into its final string."""
    return record[0].format(*record[1:]) if len(record) > 1 else record[0]


class _VerboseLogSink:
    """Log sink that mirrors every record to stdout as it is appended.

    Non-verbose runtimes use the raw ring-buffer deque as their sink, so the
    per-record cost is a single C-level ``deque.append``; this wrapper is
    swapped in only when ``config.verbose`` is set and pays the formatting
    cost eagerly (that is the point of verbose mode).
    """

    __slots__ = ("_log",)

    def __init__(self, log: "deque[LogRecord]") -> None:
        self._log = log

    def append(self, record: LogRecord) -> None:
        self._log.append(record)
        print(f"[repro] {format_log_record(record)}")


@dataclass
class BugInfo:
    """Description of a specification violation found in one execution."""

    kind: str
    message: str
    step: int
    #: the live exception object; process-local, excluded from equality and
    #: JSON serialization so reports round-trip across process boundaries.
    exception: Optional[BaseException] = field(default=None, compare=False)
    trace: Optional["ScheduleTrace"] = None  # noqa: F821 - repro.core.trace
    log: List[str] = field(default_factory=list)
    #: minimized counterexample produced by :mod:`repro.core.shrink`, plus its
    #: shrink statistics; both None until a shrinker has run on this bug.
    shrunk_trace: Optional["ScheduleTrace"] = None  # noqa: F821
    shrink: Optional["ShrinkStats"] = None  # noqa: F821 - see repro.core.shrink

    def __str__(self) -> str:
        return f"[{self.kind}] {self.message} (at step {self.step})"

    def to_dict(self) -> dict:
        payload = {
            "kind": self.kind,
            "message": self.message,
            "step": self.step,
            "trace": self.trace.to_dict() if self.trace is not None else None,
        }
        # The runtime stores the same materialized log on the bug and on its
        # replayable trace; serialize it once (on the trace) and only emit a
        # separate "log" key when the two genuinely differ (hand-built bugs,
        # production-mode bugs that have no trace).
        if self.trace is None or self.log != self.trace.log:
            payload["log"] = list(self.log)
        # Shrink results are optional: payloads of unshrunk bugs stay
        # byte-identical to what previous versions wrote.  When shrinking
        # achieved nothing (shrunk == recorded trace) only the statistics
        # are emitted — from_dict points shrunk_trace back at trace — so the
        # full step list and log are never serialized twice.
        if self.shrunk_trace is not None and (
            self.trace is None or self.shrunk_trace.steps != self.trace.steps
        ):
            payload["shrunk_trace"] = self.shrunk_trace.to_dict()
        if self.shrink is not None:
            payload["shrink"] = self.shrink.to_dict()
        return payload

    @staticmethod
    def from_dict(payload: dict) -> "BugInfo":
        from ..trace import ScheduleTrace

        trace = payload.get("trace")
        trace = ScheduleTrace.from_dict(trace) if trace is not None else None
        log = payload.get("log")
        if log is None:
            log = trace.log if trace is not None else []
        shrunk = payload.get("shrunk_trace")
        shrink_stats = payload.get("shrink")
        if shrunk is not None:
            shrunk = ScheduleTrace.from_dict(shrunk)
        elif shrink_stats is not None:
            # stats without a shrunk_trace key: the shrink achieved no
            # reduction and to_dict elided the duplicate trace.
            shrunk = trace
        if shrink_stats is not None:
            from ..shrink import ShrinkStats  # late import: shrink imports runtime

            shrink_stats = ShrinkStats.from_dict(shrink_stats)
        return BugInfo(
            kind=payload["kind"],
            message=payload["message"],
            step=int(payload["step"]),
            trace=trace,
            log=list(log),
            shrunk_trace=shrunk,
            shrink=shrink_stats,
        )


class RuntimeKernel:
    """Execution-policy-free core shared by the testing and production modes."""

    #: True on runtimes that run real wall-clock timers; the modeled
    #: :class:`~repro.core.timer.TimerMachine` consults it to decide between
    #: its controlled-choice loop and the runtime's timer service.
    wall_clock = False

    #: execution-fingerprint tracker (:mod:`repro.core.fingerprint`); ``None``
    #: unless the testing controller enabled fingerprinting, so every hook
    #: site below guards with one ``is not None`` check and the default hot
    #: path pays nothing else.
    _fingerprint = None

    def __init__(
        self,
        config: Optional[TestingConfig] = None,
        coverage: Optional[CoverageTracker] = None,
    ) -> None:
        self.config = config or TestingConfig()
        self.coverage = coverage
        self.bug: Optional[BugInfo] = None
        self.step_count = 0
        self.termination_reason: Optional[str] = None

        self._machines: Dict[MachineId, Machine] = {}
        self._monitors: Dict[type, Monitor] = {}
        self._next_machine_value = 0
        #: deferred (template, args) records in a ring buffer; bounded so
        #: that executions that run for millions of steps cannot grow memory
        #: without bound.  Only the most recent ``config.max_log_records``
        #: entries survive, which is what a bug report needs (the tail
        #: leading up to the violation).
        self._log: deque[LogRecord] = deque(maxlen=self.config.max_log_records)
        #: where hot-path call sites append records: the raw deque normally,
        #: a stdout-mirroring wrapper when ``verbose`` is on.
        self._sink = _VerboseLogSink(self._log) if self.config.verbose else self._log
        #: hot-path machine lookup keyed by the id's integer value: hashing
        #: an int is C-level, hashing a MachineId calls back into Python.
        self._machines_by_value: Dict[int, Machine] = {}

    # ------------------------------------------------------------------
    # controller hooks (implemented by TestRuntime / ProductionRuntime)
    # ------------------------------------------------------------------
    def send_event(self, target: MachineId, event: Event, sender: Optional[MachineId] = None) -> None:
        raise NotImplementedError

    def next_boolean(self, requester: MachineId) -> bool:
        raise NotImplementedError

    def next_integer(self, requester: MachineId, max_value: int) -> int:
        raise NotImplementedError

    def _mark_enabled(self, machine: Machine) -> None:
        """React to ``machine`` becoming runnable (send/create/raise)."""
        raise NotImplementedError

    def _mark_disabled(self, machine: Machine) -> None:
        """React to ``machine`` ceasing to be runnable (halt)."""
        raise NotImplementedError

    def start_wall_clock_timer(self, timer: Machine) -> None:
        """Timer service of wall-clock runtimes; testing mode never calls it."""
        raise FrameworkError(
            "wall-clock timers require a ProductionRuntime "
            "(testing mode models timers with controlled choices)"
        )

    def stop_wall_clock_timer(self, timer: Machine) -> None:
        raise FrameworkError("wall-clock timers require a ProductionRuntime")

    # ------------------------------------------------------------------
    # registration API (used by the test entry point and by machines)
    # ------------------------------------------------------------------
    def create_machine(
        self,
        machine_cls: type,
        *args: Any,
        name: str = "",
        creator: Optional[MachineId] = None,
        **kwargs: Any,
    ) -> MachineId:
        """Instantiate ``machine_cls`` and schedule its asynchronous start."""
        if not (isinstance(machine_cls, type) and issubclass(machine_cls, Machine)):
            raise FrameworkError(f"create_machine expects a Machine subclass, got {machine_cls!r}")
        machine_id = MachineId(self._next_machine_value, machine_cls.__name__, name)
        self._next_machine_value += 1
        machine = machine_cls(self, machine_id)
        machine._start_args = (args, kwargs)
        self._machines[machine_id] = machine
        self._machines_by_value[machine_id.value] = machine
        # The tracker must know the machine before its StartEvent lands in
        # the inbox (the enqueue hook looks its record up).
        if self._fingerprint is not None:
            self._fingerprint.register_machine(machine)
        machine._enqueue(StartEvent())
        if self.coverage is not None:
            self.coverage.record_machine(machine_cls.__name__)
        if creator is not None:
            self.log("created {} by {}", machine_id, creator)
        else:
            self.log("created {}", machine_id)
        return machine_id

    def register_monitor(self, monitor_cls: type) -> Monitor:
        """Register a safety/liveness monitor for this execution."""
        if not (isinstance(monitor_cls, type) and issubclass(monitor_cls, Monitor)):
            raise FrameworkError(f"register_monitor expects a Monitor subclass, got {monitor_cls!r}")
        if monitor_cls in self._monitors:
            raise FrameworkError(f"monitor {monitor_cls.__name__} is already registered")
        monitor = monitor_cls(self)
        self._monitors[monitor_cls] = monitor
        if self._fingerprint is not None:
            self._fingerprint.register_monitor(monitor)
        self.log("registered monitor {}", monitor_cls.__name__)
        # Like machine start-up, the monitor's initial state runs its entry
        # action once, at registration — unless the constructor already
        # transitioned (its goto ran the target's entry action itself).
        if monitor._transition_count == 0:
            entry_action = monitor._spec.entry_actions.get(monitor._current_state)
            if entry_action is not None:
                getattr(monitor, entry_action)()
        return monitor

    # ------------------------------------------------------------------
    # introspection helpers (useful in tests)
    # ------------------------------------------------------------------
    def machine_instance(self, machine_id: MachineId) -> Machine:
        return self._machines[machine_id]

    def count_pending_events(self, target: MachineId, event_type: type, predicate=None) -> int:
        """Number of events of ``event_type`` currently queued at ``target``.

        Used by modeled environment machines (e.g. the timer) to avoid
        flooding a target's inbox with redundant events, which shrinks the
        explored state space without removing any interleaving of distinct
        events.

        Type-only queries read the per-``(machine, event type)`` counts the
        inbox bookkeeping maintains, so their cost is bounded by the number
        of *distinct* queued event types, never by the inbox length.
        Predicate queries still scan, but return immediately when the counts
        show no event of a matching type at all.
        """
        machine = self._machines_by_value.get(target.value)
        if machine is None:
            return 0
        counts = machine._pending_counts
        if not counts:
            return 0
        if predicate is None:
            total = 0
            for queued_type, count in counts.items():
                if queued_type is event_type or issubclass(queued_type, event_type):
                    total += count
            return total
        if not any(
            queued_type is event_type or issubclass(queued_type, event_type)
            for queued_type in counts
        ):
            return 0
        count = 0
        for event in machine._inbox:
            if isinstance(event, event_type) and predicate(event):
                count += 1
        return count

    def has_pending_event(self, target: MachineId, event_type: type, predicate=None) -> bool:
        """Whether at least one matching event is queued at ``target``.

        Early-exit variant of :meth:`count_pending_events` for callers that
        only need existence (e.g. the modeled timer's one-outstanding-tick
        rule).  Type-only queries are answered from the maintained pending
        counts without touching the inbox; predicate queries scan but stop
        at the first match (and skip the scan entirely when the counts rule
        the type out).
        """
        machine = self._machines_by_value.get(target.value)
        if machine is None:
            return False
        counts = machine._pending_counts
        if not counts:
            return False
        matched_type = any(
            queued_type is event_type or issubclass(queued_type, event_type)
            for queued_type in counts
        )
        if predicate is None or not matched_type:
            return matched_type
        for event in machine._inbox:
            if isinstance(event, event_type) and predicate(event):
                return True
        return False

    def machines_of_type(self, machine_cls: type) -> List[Machine]:
        return [m for m in self._machines.values() if isinstance(m, machine_cls)]

    def monitor_instance(self, monitor_cls: type) -> Optional[Monitor]:
        return self._monitors.get(monitor_cls)

    @property
    def execution_log(self) -> List[str]:
        """The execution log, materialized on demand (see :meth:`log`)."""
        return [format_log_record(record) for record in self._log]

    # ------------------------------------------------------------------
    # machine-facing services
    # ------------------------------------------------------------------
    def check_assertion(self, condition: bool, message: str, source: str) -> None:
        if not condition:
            raise SafetyViolationError(f"{source}: assertion failed: {message}")

    def notify_monitor(self, monitor_cls: type, event: Event, source: Optional[MachineId] = None) -> None:
        monitor = self._monitors.get(monitor_cls)
        if monitor is None:
            self.log("monitor {} not registered; dropping {!r}", monitor_cls.__name__, event)
            return
        self.log("monitor {} <- {!r} (from {})", monitor_cls.__name__, event, source)
        monitor.handle(event)
        # Monitors run synchronously inside a machine's step; their component
        # is refreshed lazily at the next fingerprint observation.
        if self._fingerprint is not None:
            self._fingerprint.mark_monitor_dirty(monitor)

    def transition_machine(self, machine: Machine, state: StateRef) -> None:
        """``goto``: replace the top of the state stack, running exit/entry."""
        state = resolve_state_name(state)
        spec = machine._spec
        exit_action = spec.exit_actions.get(machine._current_state)
        if exit_action is not None:
            self._run_plain_action(machine, exit_action)
        previous = machine._current_state
        machine._state_stack[-1] = state
        machine._current_state = state
        machine._state_ctx = spec.context_for(tuple(machine._state_stack))
        machine._transition_count += 1
        self.log("{}: {} -> {}", machine._id, previous, state)
        if self.coverage is not None:
            self.coverage.record_transition(type(machine).__name__, previous, state)
        entry_action = spec.entry_actions.get(state)
        if entry_action is not None:
            self._run_plain_action(machine, entry_action)

    def push_machine_state(self, machine: Machine, state: StateRef) -> None:
        """Push ``state`` onto the stack: the current state pauses (no exit
        action) and keeps handling whatever the pushed state does not."""
        state = resolve_state_name(state)
        previous = machine._current_state
        machine._state_stack.append(state)
        machine._current_state = state
        machine._state_ctx = machine._spec.context_for(tuple(machine._state_stack))
        machine._transition_count += 1
        self.log("{}: pushed {} over {}", machine._id, state, previous)
        if self.coverage is not None:
            self.coverage.record_transition(type(machine).__name__, previous, state)
        entry_action = machine._spec.entry_actions.get(state)
        if entry_action is not None:
            self._run_plain_action(machine, entry_action)

    def pop_machine_state(self, machine: Machine) -> None:
        """Pop the top of the stack, running its exit action; the revealed
        state resumes without re-running its entry action."""
        stack = machine._state_stack
        if len(stack) == 1:
            raise FrameworkError(
                f"{machine.id}: pop_state on the bottom state {stack[0]!r}"
            )
        exit_action = machine._spec.exit_actions.get(machine._current_state)
        if exit_action is not None:
            self._run_plain_action(machine, exit_action)
        popped = stack.pop()
        machine._current_state = stack[-1]
        machine._state_ctx = machine._spec.context_for(tuple(stack))
        machine._transition_count += 1
        self.log("{}: popped {} back to {}", machine._id, popped, stack[-1])
        if self.coverage is not None:
            self.coverage.record_transition(type(machine).__name__, popped, stack[-1])

    def record_monitor_state(self, monitor: Monitor, state: str) -> None:
        if state in monitor._hot_states:
            self.log("monitor {} -> {} (hot)", type(monitor).__name__, state)
        else:
            self.log("monitor {} -> {}", type(monitor).__name__, state)
        if self.coverage is not None:
            self.coverage.record_monitor_state(type(monitor).__name__, state)

    def log(self, template: str, *args: Any) -> None:
        """Record a deferred log entry (``str.format`` template + arguments).

        The string is only built when the log is materialized — at bug-record
        time or via :attr:`execution_log` — or immediately when ``verbose``
        mirroring to stdout is enabled.  Call sites therefore pay a tuple
        append, not a ``repr()``, on the no-bug fast path.  The buffer is a
        ring bounded by ``config.max_log_records``.
        """
        self._sink.append((template, *args))

    # ------------------------------------------------------------------
    # dispatch machinery (shared semantics of one machine step)
    # ------------------------------------------------------------------
    def _dequeue_next(self, machine: Machine, ctx) -> Event:
        """Select the next event for one step of ``machine``.

        The reference form of the selection rule (the testing controller
        inlines it in its hot loop): the raised queue drains first and
        bypasses disciplines, a discipline-free state pops the inbox head,
        and otherwise selection goes through the discipline scan.
        """
        if machine._raised:
            event = machine._raised.popleft()
            if self._fingerprint is not None:
                self._fingerprint.on_raised_popleft(machine)
            return event
        if ctx.plain:
            event = machine._inbox.popleft()
            _dec_pending(machine._pending_counts, type(event))
            if self._fingerprint is not None:
                self._fingerprint.on_inbox_popleft(machine)
            return event
        return self._dequeue_with_disciplines(machine, ctx)

    def _dequeue_with_disciplines(self, machine: Machine, ctx) -> Event:
        """Dequeue selection under the current state's event disciplines.

        Scans the inbox front-to-back: ignored events are dropped (and
        logged), deferred events are skipped (they stay queued, in order),
        and the first dequeuable event is removed and returned.  Controllers
        only schedule machines with at least one dequeuable event, so the
        scan finding nothing means the runnability bookkeeping is broken —
        a framework bug, reported as such.
        """
        inbox = machine._inbox
        counts = machine._pending_counts
        actions = ctx.actions
        index = 0
        while index < len(inbox):
            event = inbox[index]
            event_type = type(event)
            try:
                action = actions[event_type]
            except KeyError:
                action = ctx.resolve(event_type)
            if action is IGNORE:
                del inbox[index]
                _dec_pending(counts, event_type)
                if self._fingerprint is not None:
                    self._fingerprint.on_inbox_remove(machine, index)
                self._sink.append((
                    "{}: ignored {!r} in state {!r}",
                    machine._id, event, machine._current_state,
                ))
                continue
            if action is DEFER:
                index += 1
                continue
            del inbox[index]
            _dec_pending(counts, event_type)
            if self._fingerprint is not None:
                self._fingerprint.on_inbox_remove(machine, index)
            return event
        raise FrameworkError(
            f"{machine.id}: scheduled with no dequeuable event "
            f"(inbox holds only deferred events in state {machine.current_state!r})"
        )

    def _execute_coroutine_step(self, machine: Machine) -> None:
        """Resume a machine whose handler is paused in a generator."""
        if machine._pending_receive is None:
            # Paused at a plain ``yield``: resume at this scheduling point.
            self._advance_coroutine(machine, None)
            return
        event = machine._dequeue_matching(machine._pending_receive)
        self._sink.append(("{}: resumed with {!r}", machine._id, event))
        machine._pending_receive = None
        self._advance_coroutine(machine, event)

    def _dispatch_control_event(self, machine: Machine, event: Event) -> None:
        """Handle the two runtime-control events (Halt, StartEvent)."""
        if isinstance(event, Halt):
            self._halt_machine(machine)
            return
        args, kwargs = getattr(machine, "_start_args", ((), {}))
        self._sink.append(("{}: starting", machine._id))
        initial = machine._current_state
        transitions_before = machine._transition_count
        result = machine.on_start(*args, **kwargs)
        if result is not None:
            self._maybe_start_coroutine(machine, result)
        # The initial state's entry action runs once the machine has started
        # (after ``on_start`` — or its first generator segment — so the
        # fields it initializes are available), unless on_start already
        # transitioned (even away and back: that goto ran the entry action
        # itself) or halted the machine.
        if not machine._halted and machine._transition_count == transitions_before:
            entry_action = machine._spec.entry_actions.get(initial)
            if entry_action is not None:
                self._run_plain_action(machine, entry_action)

    def _dispatch_user_event(self, machine: Machine, event: Event, ctx) -> None:
        """Resolve and invoke the handler for one non-control event.

        This is the reference (non-inlined) form of the dispatch block the
        testing controller unrolls into its hot loop; the production
        controller dispatches through it directly.
        """
        event_type = type(event)
        actions = ctx.actions
        try:
            info = actions[event_type]
        except KeyError:
            info = ctx.resolve(event_type)
        if info is not None and info.__class__ is not HandlerInfo:
            # DEFER/IGNORE classification can only reach dispatch for a
            # *raised* event (dequeue already applied the disciplines):
            # disciplines do not govern the raised queue, so fall back to
            # handler-only resolution.
            info = ctx.handler_only(event_type)
        if info is None:
            self._on_unhandled_event(machine, event, event_type)
            return
        self._sink.append((
            "{}: handling {!r} in state {!r}",
            machine._id, event, machine._current_state,
        ))
        if self.coverage is not None:
            self.coverage.handled[
                (type(machine).__name__, machine._current_state, event_type.__name__)
            ] += 1
        name = info.method_name
        handler = machine._bound_handlers.get(name)
        if handler is None:
            handler = getattr(machine, name)
            machine._bound_handlers[name] = handler
        result = handler(event) if info.wants_event else handler()
        if result is not None:
            self._maybe_start_coroutine(machine, result)

    def _on_unhandled_event(self, machine: Machine, event: Event, event_type: type) -> None:
        if machine.ignore_unhandled_events:
            self._sink.append((
                "{}: ignored unhandled {!r} in state {!r}",
                machine._id, event, machine._current_state,
            ))
            return
        raise UnhandledEventError(
            f"{machine.id}: no handler for {event_type.__name__} "
            f"in state {machine.current_state!r}"
        )

    def _maybe_start_coroutine(self, machine: Machine, result: Any) -> None:
        if result is None:
            return
        if isinstance(result, GeneratorType):
            machine._coroutine = result
            self._advance_coroutine(machine, None)
            return
        raise FrameworkError(
            f"{machine.id}: handlers must return None or be generator functions, got {result!r}"
        )

    def _advance_coroutine(self, machine: Machine, value: Any) -> None:
        try:
            yielded = machine._coroutine.send(value)
        except StopIteration:
            machine._coroutine = None
            machine._pending_receive = None
            return
        if isinstance(yielded, Receive):
            machine._pending_receive = yielded
            self.log("{}: waiting for {!r}", machine._id, yielded)
            return
        if yielded is None:
            # A bare ``yield`` is an explicit scheduling point: the machine
            # stays runnable and other machines may interleave here.
            machine._pending_receive = None
            return
        machine._coroutine = None
        raise FrameworkError(
            f"{machine.id}: handlers may only yield Receive objects or None, got {yielded!r}"
        )

    def _run_plain_action(self, machine: Machine, method_name: str) -> None:
        result = getattr(machine, method_name)()
        if result is not None:
            raise FrameworkError(
                f"{machine.id}: entry/exit action {method_name!r} must not be a generator"
            )

    def _halt_machine(self, machine: Machine) -> None:
        if machine._halted:
            return
        machine._halted = True
        if machine._coroutine is not None:
            machine._coroutine.close()
            machine._coroutine = None
        machine._pending_receive = None
        machine._inbox.clear()
        machine._pending_counts.clear()
        machine._raised.clear()
        if self._fingerprint is not None:
            self._fingerprint.on_halt_clear(machine)
        self._mark_disabled(machine)
        machine.on_halt()
        self.log("{}: halted", machine._id)

    # ------------------------------------------------------------------
    # end-of-execution checks
    # ------------------------------------------------------------------
    def _check_end_of_execution(self) -> None:
        reason = self.termination_reason
        check_liveness = (
            (reason == "bound" and self.config.check_liveness_at_bound)
            or (reason == "quiescence" and self.config.check_liveness_on_quiescence)
        )
        if check_liveness:
            for monitor in self._monitors.values():
                if type(monitor).is_liveness_monitor() and monitor.is_hot:
                    self._record_bug(
                        LivenessViolationError(
                            f"liveness monitor {type(monitor).__name__} is still in hot state "
                            f"{monitor.current_state!r} at the end of a bounded execution ({reason})"
                        )
                    )
                    return
        if reason == "quiescence" and self.config.report_deadlocks:
            blocked = [
                m for m in self._machines.values()
                if not m.is_halted and m._pending_receive is not None
            ]
            # A machine whose inbox holds deferred events at quiescence is
            # waiting for a transition that will never happen: the deferred
            # analogue of being blocked in receive.  (Ignored-only backlogs
            # are benign — dropping them needs no further progress.)
            defer_stuck = [
                m for m in self._machines.values()
                if not m.is_halted
                and m._pending_receive is None
                and m._inbox
                and any(m._state_ctx.resolve(type(e)) is DEFER for e in m._inbox)
            ]
            if blocked or defer_stuck:
                clauses = []
                if blocked:
                    names = ", ".join(str(m.id) for m in blocked)
                    clauses.append(f"{names} are blocked in receive")
                if defer_stuck:
                    names = ", ".join(
                        f"{m.id} (state {m.current_state!r})" for m in defer_stuck
                    )
                    # "deferred", not "only deferred": the stuck inbox may
                    # also contain ignored (likewise non-dequeuable) events.
                    if len(defer_stuck) == 1:
                        clauses.append(
                            f"the inbox of {names} holds deferred events "
                            f"it can never dequeue"
                        )
                    else:
                        clauses.append(
                            f"the inboxes of {names} hold deferred events "
                            f"they can never dequeue"
                        )
                self._record_bug(
                    DeadlockError("no machine is runnable but " + " and ".join(clauses))
                )

    def _record_bug(self, error: BugError) -> None:
        self.bug = BugInfo(
            kind=error.kind,
            message=str(error),
            step=self.step_count,
            exception=error,
        )
        self.log("BUG ({}): {}", error.kind, error)
