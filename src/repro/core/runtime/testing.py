"""The serialized systematic-testing execution controller.

The :class:`TestRuntime` owns every machine inbox and executes the whole
system in a single thread.  Every interleaving decision — which machine runs
next, and the value of every controlled boolean/integer choice — is delegated
to a :class:`~repro.core.strategy.base.SchedulingStrategy` and recorded in a
:class:`~repro.core.trace.ScheduleTrace`, so that any execution (in particular
a buggy one) can be replayed deterministically.

One :class:`TestRuntime` instance corresponds to one execution; the
:class:`~repro.core.engine.TestingEngine` creates a fresh runtime per
iteration.  All model *semantics* (dispatch, disciplines, transitions,
monitors, logging) live in the shared
:class:`~repro.core.runtime.kernel.RuntimeKernel`; this module adds only the
execution policy: serialized strategy-driven scheduling with trace recording.

Hot-path design
---------------

Table 2 of the paper rests on running very large numbers of controlled
executions, so the per-step path is engineered to do no avoidable work on
executions that find no bug:

* **Lazy structured logging.**  :meth:`RuntimeKernel.log` records
  ``(template, args)`` tuples in a bounded ring buffer instead of building
  strings eagerly.  ``repr()``/``str.format`` run only when ``verbose`` is
  set (mirroring to stdout) or when a bug is recorded and the log has to be
  materialized for the report — never on the no-bug fast path.
* **Incremental enabled set.**  Machines register/deregister their
  runnability on enqueue/dequeue/halt/receive-match, so the scheduler reads
  a maintained, id-ordered list instead of re-scanning every machine on
  every step.  The order (ascending machine id == creation order) is exactly
  the order the previous full-scan implementation produced, so all
  strategies — including replay — see identical enabled sequences and emit
  byte-identical :class:`ScheduleTrace` steps.
* **Cached handler resolution.**  Dispatch resolves events through the
  machine's :class:`~repro.core.declarations.StateContext`, which memoizes
  the ``event_type -> handler | DEFER | IGNORE`` classification per state
  stack, so dispatch stops re-walking the handler table for every event.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Callable, List, Optional

from ..config import TestingConfig
from ..coverage import CoverageTracker
from ..declarations import HandlerInfo
from ..errors import (
    BugError,
    FrameworkError,
    UnexpectedExceptionError,
)
from ..events import Event
from ..fingerprint import Fingerprint, FingerprintTracker
from ..ids import MachineId
from ..machine import Machine, MachineHaltRequested
from ..strategy.base import SchedulingStrategy
from ..trace import BOOLEAN, INTEGER, SCHEDULE, ScheduleTrace, TraceStep
from .kernel import _CONTROL_EVENTS, BugInfo, RuntimeKernel

#: ``tuple.__new__`` bound once: constructing a TraceStep through it skips
#: the generated NamedTuple ``__new__`` (a Python-level function) while
#: producing an identical object; used at the per-step trace-record sites.
_new_step = tuple.__new__


class TestRuntime(RuntimeKernel):
    """Single-execution serialized runtime under scheduler control."""

    __test__ = False  # not a pytest test class despite the name

    def __init__(
        self,
        strategy: SchedulingStrategy,
        config: Optional[TestingConfig] = None,
        coverage: Optional[CoverageTracker] = None,
    ) -> None:
        super().__init__(config, coverage)
        self.strategy = strategy
        # Fingerprint maintenance is opt-in (config) or strategy-demanded
        # (stateful search, feedback); the tracker must exist before
        # attach_runtime so strategies can observe state from step 0.
        if self.config.fingerprints or getattr(strategy, "wants_fingerprints", False):
            self._fingerprint = FingerprintTracker(self)
        strategy.attach_runtime(self)
        self.trace = ScheduleTrace()
        #: machine ids currently runnable, kept sorted ascending by id value
        #: (== creation order); maintained incrementally, never rebound.
        #: ``_enabled_values`` mirrors it with the raw integer values so the
        #: bisect maintenance compares C ints, not Python-level MachineId.
        self._enabled_ids: List[MachineId] = []
        self._enabled_values: List[int] = []
        #: immutable snapshot handed to strategies, rebuilt lazily only on
        #: steps where the enabled set actually changed.  A tuple, so a
        #: strategy that tries to mutate its argument fails loudly instead
        #: of corrupting the bookkeeping.
        self._enabled_snapshot: tuple = ()
        self._enabled_dirty = True

    @property
    def enabled_machine_ids(self) -> List[MachineId]:
        """Snapshot of the currently runnable machine ids (ascending id)."""
        return list(self._enabled_ids)

    def execution_fingerprint(self) -> Optional[Fingerprint]:
        """Current global-state fingerprint, or ``None`` when not tracked."""
        tracker = self._fingerprint
        return None if tracker is None else tracker.current()

    # ------------------------------------------------------------------
    # machine-facing services
    # ------------------------------------------------------------------
    def send_event(self, target: MachineId, event: Event, sender: Optional[MachineId] = None) -> None:
        # Hot path: one call per message sent.  Enqueue, enabled-set update
        # and coverage bookkeeping are inlined (see Machine._enqueue for the
        # reference form of the enabled-set rule).
        if not isinstance(event, Event):
            raise FrameworkError(f"send expects an Event instance, got {event!r}")
        machine = self._machines_by_value.get(target.value)
        if machine is None:
            raise FrameworkError(f"send to unknown machine {target}")
        if machine._halted:
            if sender is not None:
                self._sink.append(("dropped {} -> {}: {!r} (target halted)", sender, target, event))
            else:
                self._sink.append(("dropped {}: {!r} (target halted)", target, event))
            return
        machine._inbox.append(event)
        event_type = type(event)
        counts = machine._pending_counts
        counts[event_type] = counts.get(event_type, 0) + 1
        if self._fingerprint is not None:
            self._fingerprint.on_enqueue(machine, event)
        if not machine._enabled:
            receive = machine._pending_receive
            if receive is None:
                # Deferred/ignored events add no work; every event does on
                # the (overwhelmingly common) discipline-free plain path.
                ctx = machine._state_ctx
                if ctx.plain or ctx.dequeuable(event_type):
                    self._mark_enabled(machine)
            elif receive.matches(event):
                self._mark_enabled(machine)
        if sender is not None:
            self._sink.append(("sent {} -> {}: {!r}", sender, target, event))
        else:
            self._sink.append(("sent {}: {!r}", target, event))
        if self.coverage is not None:
            self.coverage.events[event_type.__name__] += 1

    def next_boolean(self, requester: MachineId) -> bool:
        value = self.strategy.next_boolean(requester, self.step_count)
        # Inlined trace.add_boolean_choice; requester._str is the cached
        # str(), and tuple.__new__ skips the NamedTuple __new__ wrapper.
        self.trace.steps.append(
            _new_step(TraceStep, (BOOLEAN, 1 if value else 0, requester._str))
        )
        return value

    def next_integer(self, requester: MachineId, max_value: int) -> int:
        if max_value < 1:
            raise FrameworkError("next_integer requires max_value >= 1")
        value = self.strategy.next_integer(requester, max_value, self.step_count)
        self.trace.steps.append(_new_step(TraceStep, (INTEGER, value, requester._str)))
        return value

    # ------------------------------------------------------------------
    # enabled-set bookkeeping
    # ------------------------------------------------------------------
    # The runnability predicate (``Machine._has_work``) only changes when a
    # machine's inbox, coroutine or halted flag changes.  Inboxes of *other*
    # machines only ever grow during a step (sends/creates), which can only
    # enable them — handled at enqueue time by ``Machine._enqueue``.  All
    # disabling mutations (dequeue, receive-wait, halt, inbox clear) happen
    # to the machine currently executing a step, so one recheck of that
    # machine after its step keeps the set exact.

    def _mark_enabled(self, machine: Machine) -> None:
        if not machine._enabled:
            machine._enabled = True
            value = machine._id.value
            index = bisect_left(self._enabled_values, value)
            self._enabled_values.insert(index, value)
            self._enabled_ids.insert(index, machine._id)
            self._enabled_dirty = True

    def _mark_disabled(self, machine: Machine) -> None:
        if machine._enabled:
            machine._enabled = False
            index = bisect_left(self._enabled_values, machine._id.value)
            del self._enabled_values[index]
            del self._enabled_ids[index]
            self._enabled_dirty = True

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(self, test_entry: Callable[["TestRuntime"], None]) -> Optional[BugInfo]:
        """Run one full execution of ``test_entry`` under scheduler control."""
        try:
            test_entry(self)
            self._execution_loop()
            if self._fingerprint is not None and self.coverage is not None:
                # Record the terminal state too (the loop observes the state
                # *before* each step, so quiescence/bound ends are not yet
                # covered).
                self.coverage.record_fingerprint(self._fingerprint.current().value)
            if self.bug is None:
                self._check_end_of_execution()
        except BugError as error:
            self._record_bug(error)
        except MachineHaltRequested:
            raise FrameworkError("halt() called outside of a machine handler")
        if self.bug is not None:
            # Materialize the deferred log exactly once: the bug report and
            # the replayable trace both carry it (JSON-saved traces replay
            # with their execution log intact).
            materialized = self.execution_log
            self.trace.log = materialized
            self.bug.trace = self.trace
            self.bug.log = list(materialized)
        return self.bug

    def _execution_loop(self) -> None:
        # Locals for everything touched once per step: attribute loads in this
        # loop are a measurable fraction of per-execution cost.
        enabled_ids = self._enabled_ids
        machines_by_value = self._machines_by_value
        next_machine = self.strategy.next_machine
        trace_steps_append = self.trace.steps.append
        trace_states_append = self.trace.states.append
        sink_append = self._sink.append
        coverage = self.coverage
        coverage_handled = coverage.handled if coverage is not None else None
        tracker = self._fingerprint
        fingerprints_seen = (
            coverage.fingerprints if (tracker is not None and coverage is not None) else None
        )
        max_steps = self.config.max_steps
        step_count = self.step_count
        while step_count < max_steps:
            if not enabled_ids:
                self.termination_reason = "quiescence"
                return
            if fingerprints_seen is not None:
                fingerprints_seen.add(tracker.current().value)
            # Strategies receive an immutable snapshot, never the live list
            # the bookkeeping maintains; it is rebuilt only on steps where
            # the enabled set changed.
            if self._enabled_dirty:
                snapshot = self._enabled_snapshot = tuple(enabled_ids)
                self._enabled_dirty = False
            else:
                snapshot = self._enabled_snapshot
            chosen_id = next_machine(snapshot, step_count)
            machine = machines_by_value.get(chosen_id.value)
            if machine is None:
                raise FrameworkError(f"strategy chose unknown machine {chosen_id}")
            if not machine._enabled:
                # A known machine that is currently not runnable: scheduling
                # it would dequeue from an empty/unmatched inbox.  That is a
                # strategy bug, not a bug in the system under test.
                raise FrameworkError(
                    f"strategy chose disabled machine {chosen_id}; "
                    f"enabled machines: {[str(mid) for mid in enabled_ids]}"
                )
            # Inlined trace.add_scheduling_choice; _str is the cached str(),
            # and tuple.__new__ skips the NamedTuple __new__ wrapper.  The
            # dispatch state (top of the machine's state stack) is recorded
            # in the parallel ``states`` list so bug reports can show state
            # context per scheduling step.
            trace_steps_append(_new_step(TraceStep, (SCHEDULE, chosen_id.value, chosen_id._str)))
            trace_states_append(machine._current_state)
            # step_count is mirrored back to the instance before any user
            # code can observe it (next_boolean/next_integer read it).
            step_count += 1
            self.step_count = step_count
            # One scheduled step, dispatch inlined (this block runs once per
            # scheduling decision; the call overhead of a _execute_step
            # helper is measurable at Table 2 execution counts).  The common
            # case — a plain event with a cached handler resolution — stays
            # in this frame; coroutine resumption, raised events, control
            # events and state disciplines take the helper/slow paths.
            try:
                if machine._coroutine is not None:
                    self._execute_coroutine_step(machine)
                else:
                    ctx = machine._state_ctx
                    if machine._raised:
                        # The local high-priority queue drains before the
                        # inbox and bypasses defer/ignore disciplines.
                        event = machine._raised.popleft()
                        event_type = type(event)
                        if tracker is not None:
                            tracker.on_raised_popleft(machine)
                    elif ctx.plain:
                        event = machine._inbox.popleft()
                        event_type = type(event)
                        # Inlined _dec_pending: this branch runs once per
                        # dispatched event, so the call overhead matters.
                        counts = machine._pending_counts
                        remaining = counts.get(event_type, 1) - 1
                        if remaining > 0:
                            counts[event_type] = remaining
                        else:
                            counts.pop(event_type, None)
                        if tracker is not None:
                            tracker.on_inbox_popleft(machine)
                    else:
                        event = self._dequeue_with_disciplines(machine, ctx)
                        event_type = type(event)
                    if isinstance(event, _CONTROL_EVENTS):
                        self._dispatch_control_event(machine, event)
                    else:
                        actions = ctx.actions
                        try:
                            info = actions[event_type]
                        except KeyError:
                            info = ctx.resolve(event_type)
                        if info is not None and info.__class__ is not HandlerInfo:
                            # DEFER/IGNORE classification can only reach
                            # dispatch for a *raised* event (dequeue already
                            # applied the disciplines): disciplines do not
                            # govern the raised queue, so fall back to
                            # handler-only resolution.
                            info = ctx.handler_only(event_type)
                        if info is None:
                            self._on_unhandled_event(machine, event, event_type)
                        else:
                            sink_append((
                                "{}: handling {!r} in state {!r}",
                                machine._id, event, machine._current_state,
                            ))
                            if coverage_handled is not None:
                                coverage_handled[
                                    (type(machine).__name__, machine._current_state,
                                     event_type.__name__)
                                ] += 1
                            # Bound handlers are cached per machine: a dict
                            # hit instead of descriptor lookup + bound-method
                            # allocation per dispatch.
                            name = info.method_name
                            handler = machine._bound_handlers.get(name)
                            if handler is None:
                                handler = getattr(machine, name)
                                machine._bound_handlers[name] = handler
                            result = handler(event) if info.wants_event else handler()
                            if result is not None:
                                self._maybe_start_coroutine(machine, result)
            except MachineHaltRequested:
                self._halt_machine(machine)
            except BugError as error:
                self._record_bug(error)
                return
            except FrameworkError:
                raise
            except Exception as exc:
                error = UnexpectedExceptionError(
                    f"{machine.id}: unexpected {type(exc).__name__}: {exc}"
                )
                error.__cause__ = exc
                self._record_bug(error)
                return
            # The executed machine is the only one whose state stack, public
            # attributes or paused/halted status can have changed during the
            # step (queue mutations were tracked eagerly at their sites), so
            # one touch keeps its fingerprint component exact.
            if tracker is not None:
                tracker.touch(machine)
            # The executed machine is the only one whose runnability can
            # have *decreased* during the step (sends to other machines only
            # enable, handled at enqueue time; state transitions change only
            # its own disciplines), so one recheck keeps the enabled set
            # exact.  The no-receive, no-discipline case of
            # Machine._has_work is unrolled here; blocked-in-receive and
            # discipline-filtered machines take the slow paths.
            if machine._halted:
                has_work = False
            elif machine._pending_receive is None:
                if machine._coroutine is not None or machine._raised:
                    has_work = True
                else:
                    ctx = machine._state_ctx
                    if ctx.plain:
                        has_work = bool(machine._inbox)
                    else:
                        has_work = ctx.any_dequeuable(machine._inbox)
            else:
                has_work = machine._has_work()
            if has_work:
                if not machine._enabled:
                    self._mark_enabled(machine)
            elif machine._enabled:
                self._mark_disabled(machine)
        self.termination_reason = "bound"
