"""The concurrent production execution controller.

:class:`ProductionRuntime` runs the *same* machine programs the testing
controller explores, but on real concurrency: an asyncio event loop hosted in
a dedicated thread, with one mailbox task per machine draining that machine's
inbox.  Nothing about the programming model changes — machines still own
their state, communicate only through events, and block in ``yield Receive``
— which is the paper's deployment story: the program that was systematically
tested is the program that serves traffic.

Execution model
---------------

* **One mailbox task per machine.**  Each machine's events are dispatched by
  its own asyncio task, strictly in order; tasks of different machines
  interleave at every event boundary (each dispatch ends in a cooperative
  yield), so cross-machine schedules are genuinely nondeterministic.
* **Thread-safe sends.**  Sends from machine handlers run on the loop thread
  and deliver directly; sends from any other thread (external clients, load
  generators, :meth:`post_event`) hop onto the loop via
  ``call_soon_threadsafe``.  Per-machine FIFO ordering is preserved either
  way.
* **Monitors under a lock.**  Monitor notifications are serialized through an
  ``RLock`` so specification state stays consistent no matter which thread
  or task triggers them; monitor violations raise the same
  :class:`~repro.core.errors.SafetyViolationError` bugs as in testing and
  stop the system.
* **Real nondeterminism.**  ``random()`` / ``random_integer()`` /
  ``choose()`` draw from an ``os.urandom``-seeded RNG instead of the
  scheduling strategy; there is no schedule trace and no replay in this mode
  — that is what the testing controller is for.
* **Wall-clock timers.**  :class:`~repro.core.timer.TimerMachine` detects
  ``wall_clock`` runtimes and registers with the runtime's timer service
  instead of running its controlled-choice loop; ticks are produced by real
  ``asyncio.sleep`` timers (``tick_interval`` apart), still honoring the
  one-outstanding-tick rule and ``max_ticks``/``StopTimer`` semantics.

Lifecycle: :meth:`start` boots the system (the entry point runs on the
loop), :meth:`join` waits for quiescence / a bug / a timeout, and
:meth:`shutdown` stops every task, runs the shared end-of-execution checks
(liveness monitors still hot, machines wedged in receive) and returns the
:class:`~repro.core.runtime.kernel.BugInfo` if anything was violated.
:meth:`run` wraps the three for the common boot-drive-stop pattern.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import os
import random
import threading
import time
from typing import Any, Callable, Dict, Optional

from ..config import TestingConfig
from ..errors import BugError, FrameworkError, UnexpectedExceptionError
from ..events import Event, TimerTick
from ..ids import MachineId
from ..machine import Machine, MachineHaltRequested
from .kernel import _CONTROL_EVENTS, BugInfo, RuntimeKernel


class ProductionRuntime(RuntimeKernel):
    """Concurrent asyncio-backed runtime for deploying machine programs."""

    wall_clock = True

    def __init__(
        self,
        config: Optional[TestingConfig] = None,
        *,
        tick_interval: float = 0.005,
    ) -> None:
        super().__init__(config, coverage=None)
        #: seconds between wall-clock timer rounds (every registered
        #: TimerMachine shares this period; §3.3's point is precisely that
        #: correctness must not depend on its value).
        self.tick_interval = tick_interval
        #: machine id value -> number of events dispatched to that machine;
        #: the soak harnesses read it to assert genuine concurrency.
        self.dispatch_counts: Dict[int, int] = {}
        #: created in start(): an event loop holds selector file descriptors,
        #: so never-started runtimes must not allocate one.
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._loop_thread_id: Optional[int] = None
        self._thread: Optional[threading.Thread] = None
        self._monitor_lock = threading.RLock()
        self._rng = random.Random(int.from_bytes(os.urandom(16), "little"))
        self._mailbox_tasks: Dict[int, "asyncio.Task"] = {}
        self._timer_tasks: Dict[int, "asyncio.Task"] = {}
        #: external sends posted via call_soon_threadsafe that have not yet
        #: landed on the loop; quiescence cannot be declared while non-zero.
        #: Incremented from arbitrary client threads and decremented on the
        #: loop thread, so every mutation holds the lock.
        self._external_inflight = 0
        self._external_lock = threading.Lock()
        self._stopping = False
        self._started = False
        self._stopped = False
        #: set as soon as a bug is recorded / a framework error surfaces, so
        #: join() returns promptly instead of polling out its timeout.
        self._halted_event = threading.Event()
        self._framework_error: Optional[FrameworkError] = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self, entry: Callable[["ProductionRuntime"], None]) -> "ProductionRuntime":
        """Boot the system: run ``entry`` on the event loop and start serving."""
        if self._started:
            raise FrameworkError("ProductionRuntime.start() may only be called once")
        self._started = True
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._loop_main, name="repro-production-loop", daemon=True
        )
        self._thread.start()
        future = asyncio.run_coroutine_threadsafe(self._boot(entry), self._loop)
        try:
            future.result()
        except BaseException:
            # The entry point failed with a non-bug error (BugErrors are
            # recorded, see _boot): tear the loop thread down before
            # re-raising so a failed start leaks neither thread nor loop.
            self._stopped = True
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._thread.join(timeout=10.0)
            if not self._thread.is_alive():
                self._loop.close()
            raise
        return self

    def join(self, timeout: Optional[float] = None) -> bool:
        """Block until the system quiesces, fails, or ``timeout`` elapses.

        Returns True when the system reached quiescence (no machine has
        work, no external send is in flight, and no wall-clock timer can
        still fire) or was stopped by a bug; False on timeout.  Records the
        outcome in ``termination_reason`` ("quiescence", "stopped", or the
        testing step bound's analogue "bound" on timeout) so a subsequent
        :meth:`shutdown` applies the right end-of-execution rules — a system
        cut off mid-flight must not be judged by the quiescence rules.
        """
        if not self._started:
            raise FrameworkError("join() before start()")
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            if self._halted_event.is_set():
                self.termination_reason = "stopped"
                return True
            probe = asyncio.run_coroutine_threadsafe(self._probe_quiescent(), self._loop)
            try:
                # Bounded wait: a handler that wedges the loop thread (the
                # deployed-code failure mode) must not turn join(timeout=N)
                # into an unbounded hang — the probe simply counts as "not
                # quiescent" until the deadline expires.
                if probe.result(timeout=1.0):
                    self.termination_reason = (
                        "stopped" if self._halted_event.is_set() else "quiescence"
                    )
                    return True
            except concurrent.futures.TimeoutError:  # plain TimeoutError on 3.11+
                probe.cancel()
            if deadline is not None and time.monotonic() >= deadline:
                self.termination_reason = "bound"
                return False
            self._halted_event.wait(0.01)

    def shutdown(self) -> Optional[BugInfo]:
        """Stop every task and the loop, run end-of-execution checks.

        Returns the recorded :class:`BugInfo` (monitor violation, unexpected
        exception, liveness-at-shutdown, deadlock) or None for a clean run.
        """
        if not self._started:
            raise FrameworkError("shutdown() before start()")
        if not self._stopped:
            self._stopped = True
            stopper = asyncio.run_coroutine_threadsafe(self._stop_tasks(), self._loop)
            try:
                stopper.result(timeout=10.0)
            except Exception:
                # A wedged loop is diagnosed below (the thread fails to
                # join); cancellation noise from racing tasks is benign.
                pass
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._thread.join(timeout=10.0)
            if self._thread.is_alive():
                # Closing a still-running loop would raise an unrelated
                # RuntimeError; surface the actual problem instead.
                raise FrameworkError(
                    "production event loop failed to stop within 10s "
                    "(a machine handler is likely blocking the loop thread)"
                )
            self._loop.close()
        if self._framework_error is not None:
            raise self._framework_error
        if self.bug is None:
            if self.termination_reason is None:
                # shutdown() without a join(): the system was cut off at an
                # arbitrary point, which is the "bound" situation — claiming
                # quiescence would report spurious deadlocks for machines
                # that were merely still in flight.
                self.termination_reason = "bound"
            self._check_end_of_execution()
        if self.bug is not None and not self.bug.log:
            self.bug.log = self.execution_log
        return self.bug

    def run(
        self,
        entry: Callable[["ProductionRuntime"], None],
        *,
        timeout: float = 60.0,
    ) -> Optional[BugInfo]:
        """Boot ``entry``, wait for quiescence (or a bug/timeout), shut down."""
        self.start(entry)
        self.join(timeout)  # records termination_reason for shutdown()
        return self.shutdown()

    def _loop_main(self) -> None:
        asyncio.set_event_loop(self._loop)
        self._loop.run_forever()

    async def _boot(self, entry: Callable[["ProductionRuntime"], None]) -> None:
        self._loop_thread_id = threading.get_ident()
        try:
            entry(self)
        except MachineHaltRequested:
            raise FrameworkError("halt() called outside of a machine handler")
        except BugError as error:
            # Same contract as TestRuntime.run: a specification violation
            # raised while the entry point runs (e.g. a monitor's initial
            # entry action asserting) is a recorded bug, not a crash.
            self._record_bug(error)

    def _wake_all_mailboxes(self) -> None:
        """Wake every mailbox task so it can observe _stopping/bugs/halts."""
        for machine in self._machines.values():
            wakeup = getattr(machine, "_prod_wakeup", None)
            if wakeup is not None:
                wakeup.set()

    async def _stop_tasks(self) -> None:
        self._stopping = True
        for task in self._timer_tasks.values():
            task.cancel()
        self._wake_all_mailboxes()
        tasks = [
            task
            for task in list(self._mailbox_tasks.values()) + list(self._timer_tasks.values())
            if not task.done()
        ]
        if tasks:
            await asyncio.gather(*tasks, return_exceptions=True)

    # ------------------------------------------------------------------
    # controller hooks
    # ------------------------------------------------------------------
    def _mark_enabled(self, machine: Machine) -> None:
        # Runnability maps to the machine's mailbox wake-up: the enqueue
        # paths call this exactly when new work arrived (never for events
        # that are deferred/ignored or fail a pending receive).
        wakeup = getattr(machine, "_prod_wakeup", None)
        if wakeup is not None:
            wakeup.set()

    def _mark_disabled(self, machine: Machine) -> None:
        # Mailbox tasks re-evaluate ``_has_work`` themselves; nothing to do.
        pass

    def next_boolean(self, requester: MachineId) -> bool:
        return self._rng.random() < 0.5

    def next_integer(self, requester: MachineId, max_value: int) -> int:
        if max_value < 1:
            raise FrameworkError("next_integer requires max_value >= 1")
        return self._rng.randrange(max_value)

    def notify_monitor(self, monitor_cls: type, event: Event, source: Optional[MachineId] = None) -> None:
        with self._monitor_lock:
            super().notify_monitor(monitor_cls, event, source)

    def _record_bug(self, error: BugError) -> None:
        super()._record_bug(error)
        self.bug.log = self.execution_log
        self._stopping = True
        self._halted_event.set()
        self._wake_all_mailboxes()

    def _fail(self, error: FrameworkError) -> None:
        if self._framework_error is None:
            self._framework_error = error
        self._stopping = True
        self._halted_event.set()
        self._wake_all_mailboxes()

    # ------------------------------------------------------------------
    # machine creation / event delivery
    # ------------------------------------------------------------------
    def create_machine(
        self,
        machine_cls: type,
        *args: Any,
        name: str = "",
        creator: Optional[MachineId] = None,
        **kwargs: Any,
    ) -> MachineId:
        if self._loop is None:
            raise FrameworkError(
                "create_machine requires a started runtime "
                "(create machines from the entry point or from handlers)"
            )
        if (
            self._loop_thread_id is not None
            and threading.get_ident() != self._loop_thread_id
        ):
            raise FrameworkError(
                "create_machine must run on the runtime's event loop "
                "(create machines from the entry point or from handlers)"
            )
        machine_id = super().create_machine(
            machine_cls, *args, name=name, creator=creator, **kwargs
        )
        machine = self._machines[machine_id]
        machine._prod_wakeup = asyncio.Event()
        machine._prod_wakeup.set()  # the StartEvent is already queued
        self._mailbox_tasks[machine_id.value] = self._loop.create_task(
            self._mailbox(machine), name=f"mailbox-{machine_id}"
        )
        return machine_id

    def send_event(self, target: MachineId, event: Event, sender: Optional[MachineId] = None) -> None:
        if not isinstance(event, Event):
            raise FrameworkError(f"send expects an Event instance, got {event!r}")
        if threading.get_ident() != self._loop_thread_id:
            self._post_external(target, event, sender)
            return
        self._deliver(target, event, sender)

    def post_event(self, target: MachineId, event: Event) -> None:
        """Thread-safe external send into the running system.

        The delivery hops onto the event loop, so callers on any thread can
        push load into the machines without synchronizing with them.
        """
        if not isinstance(event, Event):
            raise FrameworkError(f"post_event expects an Event instance, got {event!r}")
        self._post_external(target, event, None)

    def _post_external(self, target: MachineId, event: Event, sender: Optional[MachineId]) -> None:
        if not self._started or self._stopped:
            raise FrameworkError(
                "external sends require a started, not-yet-shut-down runtime"
            )
        with self._external_lock:
            self._external_inflight += 1
        try:
            self._loop.call_soon_threadsafe(self._deliver_external, target, event, sender)
        except RuntimeError as error:
            # Raced with shutdown() closing the loop between the guard above
            # and the post: surface the same clean error as the sequential
            # case instead of a raw "Event loop is closed" crash.
            with self._external_lock:
                self._external_inflight -= 1
            raise FrameworkError(
                "external sends require a started, not-yet-shut-down runtime"
            ) from error

    def _deliver_external(self, target: MachineId, event: Event, sender: Optional[MachineId]) -> None:
        try:
            self._deliver(target, event, sender)
        except FrameworkError as error:
            self._fail(error)
        finally:
            with self._external_lock:
                self._external_inflight -= 1

    def _deliver(self, target: MachineId, event: Event, sender: Optional[MachineId]) -> None:
        machine = self._machines_by_value.get(target.value)
        if machine is None:
            raise FrameworkError(f"send to unknown machine {target}")
        if machine._halted:
            if sender is not None:
                self._sink.append(("dropped {} -> {}: {!r} (target halted)", sender, target, event))
            else:
                self._sink.append(("dropped {}: {!r} (target halted)", target, event))
            return
        machine._enqueue(event)  # inbox append + pending counts + wake-up
        if sender is not None:
            self._sink.append(("sent {} -> {}: {!r}", sender, target, event))
        else:
            self._sink.append(("sent {}: {!r}", target, event))

    # ------------------------------------------------------------------
    # mailbox tasks
    # ------------------------------------------------------------------
    async def _mailbox(self, machine: Machine) -> None:
        wakeup = machine._prod_wakeup
        try:
            while True:
                if self._stopping or machine._halted:
                    return
                if machine._has_work():
                    try:
                        self._dispatch_once(machine)
                    except MachineHaltRequested:
                        self._halt_machine(machine)
                    except BugError as error:
                        self._record_bug(error)
                        return
                    except FrameworkError as error:
                        self._fail(error)
                        return
                    except Exception as exc:
                        error = UnexpectedExceptionError(
                            f"{machine.id}: unexpected {type(exc).__name__}: {exc}"
                        )
                        error.__cause__ = exc
                        self._record_bug(error)
                        return
                    # One event per iteration, then a cooperative yield, so
                    # every other runnable machine interleaves at event
                    # granularity — the production analogue of a scheduling
                    # point after each dispatch.
                    await asyncio.sleep(0)
                else:
                    wakeup.clear()
                    # Single-threaded loop: nothing can have enqueued between
                    # the _has_work check and the clear, but a cheap recheck
                    # keeps this robust if a handler ever runs off-loop.
                    if machine._has_work() or machine._halted or self._stopping:
                        continue
                    await wakeup.wait()
        except asyncio.CancelledError:
            return

    def _dispatch_once(self, machine: Machine) -> None:
        self.step_count += 1
        counts = self.dispatch_counts
        value = machine._id.value
        counts[value] = counts.get(value, 0) + 1
        if machine._coroutine is not None:
            self._execute_coroutine_step(machine)
            return
        ctx = machine._state_ctx
        event = self._dequeue_next(machine, ctx)
        if isinstance(event, _CONTROL_EVENTS):
            self._dispatch_control_event(machine, event)
        else:
            self._dispatch_user_event(machine, event, ctx)

    def _halt_machine(self, machine: Machine) -> None:
        super()._halt_machine(machine)
        timer_task = self._timer_tasks.pop(machine._id.value, None)
        if timer_task is not None:
            timer_task.cancel()
        wakeup = getattr(machine, "_prod_wakeup", None)
        if wakeup is not None:
            wakeup.set()  # let the mailbox task observe the halt and exit

    # ------------------------------------------------------------------
    # wall-clock timer service
    # ------------------------------------------------------------------
    def start_wall_clock_timer(self, timer: Machine) -> None:
        value = timer._id.value
        existing = self._timer_tasks.get(value)
        if existing is not None and not existing.done():
            return
        self._timer_tasks[value] = self._loop.create_task(
            self._timer_loop(timer), name=f"timer-{timer._id}"
        )

    def stop_wall_clock_timer(self, timer: Machine) -> None:
        task = self._timer_tasks.get(timer._id.value)
        if task is not None:
            task.cancel()

    async def _timer_loop(self, timer: Machine) -> None:
        # Mirrors TimerMachine.run_loop with real sleeps in place of loop
        # self-messages: one round per tick_interval, at most one outstanding
        # tick, bounded by max_ticks, stopped by StopTimer/halt.  Ticks that
        # were already delivered when the timer stops remain in the target's
        # inbox — the documented "pending ticks may still be delivered" race
        # exists in production exactly as it does under testing.
        try:
            while not self._stopping and timer.active and not timer._halted:
                if timer.max_ticks is not None and timer.rounds >= timer.max_ticks:
                    return
                await asyncio.sleep(self.tick_interval)
                if self._stopping or not timer.active or timer._halted:
                    return
                timer.rounds += 1
                if not self.has_pending_event(
                    timer.target, TimerTick, timer._tick_predicate
                ) and (timer.always_fire or self.next_boolean(timer._id)):
                    self._deliver(timer.target, TimerTick(timer.timer_name), timer._id)
        except asyncio.CancelledError:
            return

    def active_machine_count(self) -> int:
        """Machines that dispatched beyond their start event.

        Every created machine dispatches at least its ``StartEvent``, so a
        bare "did it dispatch anything" tally is vacuously the machine
        count; requiring a second dispatch counts machines that actually
        participated in the run's event traffic.
        """
        return sum(1 for count in self.dispatch_counts.values() if count > 1)

    # ------------------------------------------------------------------
    # quiescence probing
    # ------------------------------------------------------------------
    async def _probe_quiescent(self) -> bool:
        # Runs on the loop, so every mailbox task is parked at an await
        # point: per-machine _has_work is exact here.  Live wall-clock timer
        # tasks are future event sources, so the system is not quiescent
        # while any survive (they end on max_ticks/StopTimer/halt).
        if self._stopping:
            return True
        if self._external_inflight:
            return False
        for task in self._timer_tasks.values():
            if not task.done():
                return False
        for machine in self._machines.values():
            if not machine._halted and machine._has_work():
                return False
        return True
