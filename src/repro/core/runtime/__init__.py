"""Layered runtime package: shared kernel + pluggable execution controllers.

* :mod:`repro.core.runtime.kernel` — :class:`RuntimeKernel`, the
  execution-policy-free core (machine table, monitors, dispatch, state
  stack, disciplines, logging, bug recording) both modes share.
* :mod:`repro.core.runtime.testing` — :class:`TestRuntime`, the serialized
  strategy-driven systematic-testing controller with replayable traces.
* :mod:`repro.core.runtime.production` — :class:`ProductionRuntime`, the
  concurrent asyncio controller that deploys the same machine programs on
  real concurrency, wall-clock timers and true randomness.

The historical import path ``repro.core.runtime`` (when the whole runtime
was one module) keeps working: :class:`TestRuntime`, :class:`BugInfo` and
the log helpers are re-exported here.
"""

from .kernel import (
    BugInfo,
    LogRecord,
    RuntimeKernel,
    format_log_record,
)
from .production import ProductionRuntime
from .testing import TestRuntime

__all__ = [
    "BugInfo",
    "LogRecord",
    "ProductionRuntime",
    "RuntimeKernel",
    "TestRuntime",
    "format_log_record",
]
