"""Scheduling strategies for the systematic testing engine.

The set of strategies is open: every strategy class self-registers with the
:func:`register_strategy` decorator (see :mod:`repro.core.strategy.registry`),
and :func:`create_strategy` builds whichever one a
:class:`~repro.core.config.TestingConfig` names.  Importing this package
registers the built-in strategies (random, pct/priority, round-robin, dfs,
dpor-lite, feedback).
"""

from __future__ import annotations

from .base import SchedulingStrategy
from .registry import (
    available_strategies,
    create_strategy,
    register_strategy,
    strategy_class,
)

# Importing the modules below runs their @register_strategy decorators.
from .dfs_strategy import DFSStrategy
from .dpor_lite import DporLiteStrategy
from .feedback import FeedbackStrategy
from .pct_strategy import PCTStrategy
from .random_strategy import RandomStrategy
from .replay import ReplayStrategy
from .round_robin import RoundRobinStrategy

__all__ = [
    "SchedulingStrategy",
    "RandomStrategy",
    "PCTStrategy",
    "RoundRobinStrategy",
    "DFSStrategy",
    "DporLiteStrategy",
    "FeedbackStrategy",
    "ReplayStrategy",
    "available_strategies",
    "create_strategy",
    "register_strategy",
    "strategy_class",
]
