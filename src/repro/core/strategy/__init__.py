"""Scheduling strategies for the systematic testing engine."""

from __future__ import annotations

from ..config import TestingConfig
from .base import SchedulingStrategy
from .dfs_strategy import DFSStrategy
from .pct_strategy import PCTStrategy
from .random_strategy import RandomStrategy
from .replay import ReplayStrategy
from .round_robin import RoundRobinStrategy

__all__ = [
    "SchedulingStrategy",
    "RandomStrategy",
    "PCTStrategy",
    "RoundRobinStrategy",
    "DFSStrategy",
    "ReplayStrategy",
    "create_strategy",
]

_STRATEGIES = {
    "random": RandomStrategy,
    "pct": PCTStrategy,
    "priority": PCTStrategy,
    "round-robin": RoundRobinStrategy,
    "dfs": DFSStrategy,
}


def create_strategy(config: TestingConfig) -> SchedulingStrategy:
    """Build the scheduling strategy described by ``config``."""
    name = config.strategy.lower()
    if name not in _STRATEGIES:
        known = ", ".join(sorted(_STRATEGIES))
        raise ValueError(f"unknown strategy {config.strategy!r}; known strategies: {known}")
    if name in ("pct", "priority"):
        fair_suffix_start = config.max_steps // 5 if config.pct_fair_suffix else None
        return PCTStrategy(
            seed=config.seed,
            priority_switches=config.pct_priority_switches,
            expected_length=config.max_steps,
            fair_suffix_start=fair_suffix_start,
        )
    return _STRATEGIES[name](seed=config.seed)
