"""Coverage-guided scheduling: mutate prefixes that reached novel states.

The ``feedback`` strategy closes the loop between the execution fingerprint
(:mod:`repro.core.fingerprint`) and schedule generation, AFL-style: every
execution records its decision sequence, and whenever the global-state
fingerprint observed at a scheduling point has never been seen before in the
session, the decision prefix that led there is marked *interesting*.  The
longest interesting prefix of each execution enters a bounded corpus; later
iterations pick a corpus entry, replay its prefix (tolerantly — a decision
that no longer applies falls back to a random one), and explore a fresh
random suffix from the novel state onwards.

Compared to pure random search this concentrates the execution budget on
the frontier of *behaviourally new* states instead of re-rolling the whole
schedule from the root every time.  Like the random strategy it is fair and
probabilistically complete; unlike DFS it needs no bounded state space.

Determinism: iteration ``i`` derives its RNG from ``(seed, i)`` and the
corpus evolves deterministically from the observed fingerprints, so a
session is exactly reproducible given the seed — and every buggy execution
is replayable from its trace as usual.
"""

from __future__ import annotations

import random
from collections import deque
from typing import List, Mapping, Optional, Sequence, Tuple

from ..ids import MachineId
from .base import SchedulingStrategy
from .registry import register_strategy

#: decision kinds recorded for replay
_SCHEDULE = "s"
_BOOLEAN = "b"
_INTEGER = "i"


@register_strategy("feedback")
class FeedbackStrategy(SchedulingStrategy):
    """Random scheduling with fingerprint-novelty prefix feedback."""

    name = "feedback"

    #: the runtime must maintain the execution fingerprint for this strategy
    wants_fingerprints = True

    def __init__(self, seed: int = 0, corpus_size: int = 64) -> None:
        super().__init__(seed)
        self.corpus_size = corpus_size
        self._rng = random.Random(seed)
        self._runtime = None
        #: fingerprints seen across the whole session (novelty baseline)
        self._seen: set = set()
        #: decisions of the current execution, as (kind, value) pairs
        self._decisions: List[Tuple[str, int]] = []
        #: length of the longest decision prefix that reached a novel state
        self._novel_prefix_len = 0
        #: interesting prefixes from previous executions
        self._corpus: deque = deque(maxlen=corpus_size)
        #: prefix being replayed this execution (None = pure random)
        self._replay: Optional[List[Tuple[str, int]]] = None
        self._replay_pos = 0
        #: observability counters
        self.novel_states = 0
        self.corpus_hits = 0

    @classmethod
    def from_config(cls, config, options: Optional[Mapping] = None) -> "FeedbackStrategy":
        options = dict(options or {})
        return cls(
            seed=config.seed,
            corpus_size=int(options.get("corpus_size", 64)),
        )

    def attach_runtime(self, runtime) -> None:
        self._runtime = runtime

    def prepare_iteration(self, iteration: int) -> None:
        # Harvest the previous execution before resetting: its longest
        # novel-state prefix becomes a corpus entry.  (The engine calls
        # prepare_iteration before building the next runtime, so the
        # decisions list is complete here.)
        if self._novel_prefix_len > 0:
            self._corpus.append(list(self._decisions[: self._novel_prefix_len]))
        self._rng = random.Random(f"{self.seed}:{iteration}:feedback")
        self._decisions = []
        self._novel_prefix_len = 0
        self._replay = None
        self._replay_pos = 0
        if self._corpus and iteration % 2 == 1:
            # Mutation on alternating iterations: replay a corpus prefix
            # (possibly truncated, which re-randomizes the tail of the
            # prefix itself), then a fresh random suffix from wherever the
            # replay lands.  Even iterations stay pure random so guided
            # depth never crowds out global exploration.
            entry = self._corpus[self._rng.randrange(len(self._corpus))]
            cut = self._rng.randrange(len(entry)) + 1
            self._replay = entry[:cut]
            self.corpus_hits += 1

    # ------------------------------------------------------------------
    def _observe_novelty(self) -> None:
        if self._runtime is None:
            return
        current = self._runtime.execution_fingerprint()
        if current is None:
            return
        if current.value not in self._seen:
            self._seen.add(current.value)
            self.novel_states += 1
            self._novel_prefix_len = len(self._decisions)

    def _replayed(self, kind: str) -> Optional[int]:
        """Next replay decision if it is of ``kind``, else end the replay."""
        replay = self._replay
        if replay is None or self._replay_pos >= len(replay):
            return None
        recorded_kind, value = replay[self._replay_pos]
        if recorded_kind != kind:
            # The schedule diverged structurally; the remaining recorded
            # decisions no longer line up, so fall back to random.
            self._replay = None
            return None
        self._replay_pos += 1
        return value

    # ------------------------------------------------------------------
    def next_machine(self, enabled: Sequence[MachineId], step: int) -> MachineId:
        self._observe_novelty()
        chosen = None
        recorded = self._replayed(_SCHEDULE)
        if recorded is not None:
            for mid in enabled:
                if mid.value == recorded:
                    chosen = mid
                    break
            # Tolerant replay: a recorded machine that is not currently
            # enabled degrades this decision to a random one.
        if chosen is None:
            chosen = enabled[self._rng.randrange(len(enabled))]
        self._decisions.append((_SCHEDULE, chosen.value))
        return chosen

    def next_boolean(self, requester: MachineId, step: int) -> bool:
        recorded = self._replayed(_BOOLEAN)
        value = bool(recorded) if recorded is not None else self._rng.random() < 0.5
        self._decisions.append((_BOOLEAN, int(value)))
        return value

    def next_integer(self, requester: MachineId, max_value: int, step: int) -> int:
        recorded = self._replayed(_INTEGER)
        if recorded is not None and 0 <= recorded < max_value:
            value = recorded
        else:
            value = self._rng.randrange(max_value)
        self._decisions.append((_INTEGER, value))
        return value

    def is_fair(self) -> bool:
        return True


__all__ = ["FeedbackStrategy"]
