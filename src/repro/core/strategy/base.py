"""Scheduling strategy interface.

A strategy answers three questions during an execution:

* which of the currently *enabled* machines runs next,
* what value a controlled boolean choice returns,
* what value a controlled integer choice returns.

The runtime calls :meth:`SchedulingStrategy.prepare_iteration` before each
execution with the iteration index, so strategies can reseed deterministically
(seed + iteration), which makes the whole testing session reproducible.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, Mapping, Optional, Sequence

from ..ids import MachineId

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from ..config import TestingConfig


class SchedulingStrategy(abc.ABC):
    """Base class of every scheduling strategy."""

    #: human-readable name used in reports
    name = "abstract"

    #: canonical registry name, set by ``@register_strategy``
    registered_name = "abstract"

    #: strategies that consult the execution fingerprint set this (or define
    #: a property) so the runtime builds a
    #: :class:`~repro.core.fingerprint.FingerprintTracker` even when
    #: ``TestingConfig.fingerprints`` is off.
    wants_fingerprints = False

    #: exhaustive strategies that can restrict their search to a *subtree
    #: claim* — a frozen prefix of choice-tree decisions — set this and
    #: implement ``set_claim`` / ``export_frontier`` / ``seed_visited`` (see
    #: :class:`~repro.core.strategy.dfs_strategy.DFSStrategy`).  The parallel
    #: driver (:mod:`repro.core.parallel`) only accepts such strategies.
    supports_claims = False

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        #: set to True by exhaustive strategies (e.g. DFS) once the bounded
        #: state space has been fully explored; the engine stops early.
        self.exhausted = False

    @classmethod
    def from_config(
        cls, config: "TestingConfig", options: Optional[Mapping] = None
    ) -> "SchedulingStrategy":
        """Build an instance from a :class:`TestingConfig`.

        ``options`` is the per-strategy namespace ``config.extra[<name>]``.
        The default implementation only consumes the seed; strategies with
        their own knobs override this.
        """
        return cls(seed=config.seed)

    def prepare_iteration(self, iteration: int) -> None:
        """Reset internal state before execution number ``iteration``."""

    def attach_runtime(self, runtime) -> None:
        """Called by the runtime in its constructor, before any choice.

        Most strategies are oblivious to program state and ignore this (the
        default is a no-op).  Dependence-aware strategies (``dpor-lite``)
        keep the reference to inspect machine inboxes at scheduling points.
        The runtime is rebuilt per iteration, so the hook fires once per
        execution and must not leak state across iterations on its own.
        """

    @abc.abstractmethod
    def next_machine(self, enabled: Sequence[MachineId], step: int) -> MachineId:
        """Choose which enabled machine executes the next step.

        ``enabled`` lists the runnable machines in ascending id (== creation)
        order.  It is an immutable snapshot (a tuple, possibly shared across
        consecutive steps): treat it as read-only — copy it first if you need
        to reorder (``sorted(enabled, key=...)`` does exactly that).
        """

    @abc.abstractmethod
    def next_boolean(self, requester: MachineId, step: int) -> bool:
        """Value of a controlled boolean choice."""

    @abc.abstractmethod
    def next_integer(self, requester: MachineId, max_value: int, step: int) -> int:
        """Value of a controlled integer choice in ``[0, max_value)``."""

    def is_fair(self) -> bool:
        """Whether the strategy is fair (relevant for liveness checking)."""
        return True

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"<{type(self).__name__} seed={self.seed}>"
