"""Trace replay strategy, strict and tolerant (guided).

Given a :class:`~repro.core.trace.ScheduleTrace` recorded by a previous
execution, this strategy reproduces the exact same sequence of decisions,
which deterministically replays the execution (and therefore the bug).

Two modes:

* **strict** (the default): any mismatch between the recorded trace and what
  the program under test actually requests — trace exhausted early, wrong
  choice kind, recorded machine not enabled, integer out of range — raises a
  :class:`~repro.core.errors.ReplayDivergenceError` (a
  :class:`~repro.core.errors.FrameworkError`).  This is the right mode for
  replaying a bug report: a divergence means the program changed.
* **tolerant** (``tolerant=True``): the strategy *guides* the execution along
  the trace, falling back to a deterministic default pick (lowest-id enabled
  machine, ``False``, ``0``) at every decision the trace cannot answer —
  recorded machine not enabled, integer out of range, wrong choice kind,
  trace exhausted — and then continues following the remaining recorded
  steps.  The resulting execution is still fully deterministic — replaying
  the same candidate twice yields byte-identical traces — which is what the
  delta-debugging shrinker (:mod:`repro.core.shrink`) needs: it feeds in
  mutilated candidate traces (chunks removed, values rewritten) and observes
  whether the bug still occurs; the per-decision fallback lets the suffix of
  a candidate keep guiding the run after a local divergence instead of
  crashing or degenerating into an all-default schedule.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..errors import ReplayDivergenceError
from ..ids import MachineId
from ..trace import BOOLEAN, INTEGER, SCHEDULE, ScheduleTrace, TraceStep
from .base import SchedulingStrategy


class ReplayStrategy(SchedulingStrategy):
    """Replay the decisions recorded in a schedule trace."""

    name = "replay"

    def __init__(self, trace: ScheduleTrace, tolerant: bool = False) -> None:
        super().__init__(seed=0)
        self._trace = trace
        self._cursor = 0
        self._tolerant = tolerant
        #: True once at least one decision could not be answered from the
        #: recorded trace (tolerant mode only; strict mode raises instead).
        self.diverged = False
        #: scheduling-step index of the first such fallback, or None.
        self.divergence_step: Optional[int] = None
        #: number of decisions answered by a default fallback pick.
        self.fallback_picks = 0

    def prepare_iteration(self, iteration: int) -> None:
        self._cursor = 0
        self.diverged = False
        self.divergence_step = None
        self.fallback_picks = 0

    @property
    def steps_followed(self) -> int:
        """Number of recorded steps consumed so far."""
        return self._cursor

    def _diverge(self, message: str, step: int) -> None:
        """Strict mode: raise.  Tolerant mode: note the fallback and go on."""
        if not self._tolerant:
            raise ReplayDivergenceError(message)
        if not self.diverged:
            self.diverged = True
            self.divergence_step = step
        self.fallback_picks += 1

    def _next_step(self, expected_kind: str, step: int) -> Optional[TraceStep]:
        """Consume and return the next recorded step if it has the expected
        kind; otherwise (exhausted or wrong kind) note a divergence and
        return None, leaving mismatched steps in place for later decisions
        of their own kind."""
        if self._cursor >= len(self._trace.steps):
            self._diverge(
                f"trace exhausted after {self._cursor} steps but the program "
                f"requested another {expected_kind} choice",
                step,
            )
            return None
        recorded = self._trace.steps[self._cursor]
        if recorded.kind != expected_kind:
            self._diverge(
                f"trace step {self._cursor} is a {recorded.kind!r} choice but "
                f"the program requested a {expected_kind!r} choice",
                step,
            )
            return None
        self._cursor += 1
        return recorded

    def next_machine(self, enabled: Sequence[MachineId], step: int) -> MachineId:
        recorded = self._next_step(SCHEDULE, step)
        if recorded is not None:
            for machine in enabled:
                if machine.value == recorded.value:
                    return machine
            self._diverge(
                f"recorded machine {recorded.label or recorded.value} "
                f"is not enabled at step {step}",
                step,
            )
        # Deterministic fallback: the lowest-id enabled machine (enabled is
        # handed over in ascending id order).
        return enabled[0]

    def next_boolean(self, requester: MachineId, step: int) -> bool:
        recorded = self._next_step(BOOLEAN, step)
        return bool(recorded.value) if recorded is not None else False

    def next_integer(self, requester: MachineId, max_value: int, step: int) -> int:
        recorded = self._next_step(INTEGER, step)
        if recorded is None:
            return 0
        if not 0 <= recorded.value < max_value:
            self._diverge(
                f"recorded integer choice {recorded.value} out of range [0, {max_value})",
                step,
            )
            return 0
        return recorded.value
