"""Trace replay strategy.

Given a :class:`~repro.core.trace.ScheduleTrace` recorded by a previous
execution, this strategy reproduces the exact same sequence of decisions,
which deterministically replays the execution (and therefore the bug).  If
the program under test has changed in a way that makes the recorded trace
inapplicable, a :class:`~repro.core.errors.ReplayDivergenceError` is raised.
"""

from __future__ import annotations

from typing import Sequence

from ..errors import ReplayDivergenceError
from ..ids import MachineId
from ..trace import BOOLEAN, INTEGER, SCHEDULE, ScheduleTrace
from .base import SchedulingStrategy


class ReplayStrategy(SchedulingStrategy):
    """Replay the decisions recorded in a schedule trace."""

    name = "replay"

    def __init__(self, trace: ScheduleTrace) -> None:
        super().__init__(seed=0)
        self._trace = trace
        self._cursor = 0

    def prepare_iteration(self, iteration: int) -> None:
        self._cursor = 0

    def _next_step(self, expected_kind: str):
        if self._cursor >= len(self._trace.steps):
            raise ReplayDivergenceError(
                f"trace exhausted after {self._cursor} steps but the program "
                f"requested another {expected_kind} choice"
            )
        step = self._trace.steps[self._cursor]
        self._cursor += 1
        if step.kind != expected_kind:
            raise ReplayDivergenceError(
                f"trace step {self._cursor - 1} is a {step.kind!r} choice but the "
                f"program requested a {expected_kind!r} choice"
            )
        return step

    def next_machine(self, enabled: Sequence[MachineId], step: int) -> MachineId:
        recorded = self._next_step(SCHEDULE)
        for machine in enabled:
            if machine.value == recorded.value:
                return machine
        raise ReplayDivergenceError(
            f"recorded machine {recorded.label or recorded.value} is not enabled at step {step}"
        )

    def next_boolean(self, requester: MachineId, step: int) -> bool:
        return bool(self._next_step(BOOLEAN).value)

    def next_integer(self, requester: MachineId, max_value: int, step: int) -> int:
        value = self._next_step(INTEGER).value
        if value >= max_value:
            raise ReplayDivergenceError(
                f"recorded integer choice {value} out of range [0, {max_value})"
            )
        return value
