"""Randomized priority-based scheduler.

This is the second scheduler evaluated in Table 2 of the paper: a randomized
priority-based scheduler in the style of PCT (Burckhardt et al., ASPLOS 2010).
Every machine receives a random priority when it first becomes schedulable;
at each scheduling point the highest-priority enabled machine runs.  A small
budget of *priority change points* (the paper used 2) is chosen uniformly at
random over the expected execution length; when a change point is reached the
currently scheduled machine's priority is demoted below every other machine,
which is what perturbs the otherwise deterministic priority order enough to
expose ordering bugs.

Strict priority scheduling is unfair — a machine that keeps sending events to
itself would starve everything else — so, like the "fair PCT" schedulers used
in practice, this implementation optionally switches to uniform random
scheduling after a configurable prefix (``fair_suffix_start`` steps).  The
prefix provides the bug-hunting power of PCT, the suffix provides the fairness
liveness checking needs.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Dict, List, Mapping, Optional, Sequence

from ..ids import MachineId
from .base import SchedulingStrategy
from .registry import register_strategy

if TYPE_CHECKING:  # pragma: no cover
    from ..config import TestingConfig


@register_strategy("pct", "priority")
class PCTStrategy(SchedulingStrategy):
    """Priority-based scheduling with random priority change points."""

    name = "pct"

    def __init__(
        self,
        seed: int = 0,
        priority_switches: int = 2,
        expected_length: int = 1000,
        fair_suffix_start: int | None = None,
    ) -> None:
        super().__init__(seed)
        self.priority_switches = priority_switches
        self.expected_length = max(1, expected_length)
        self.fair_suffix_start = fair_suffix_start
        self._rng = random.Random(seed)
        self._priorities: Dict[MachineId, float] = {}
        self._change_points: List[int] = []
        self._low_priority_counter = 0

    @classmethod
    def from_config(
        cls, config: "TestingConfig", options: Optional[Mapping] = None
    ) -> "PCTStrategy":
        """Options namespace ``config.extra["pct"]`` overrides the legacy
        ``pct_*`` fields of :class:`TestingConfig`."""
        options = dict(options or {})
        priority_switches = int(options.get("priority_switches", config.pct_priority_switches))
        fair_suffix = bool(options.get("fair_suffix", config.pct_fair_suffix))
        expected_length = int(options.get("expected_length", config.max_steps))
        fair_suffix_start = options.get(
            "fair_suffix_start", config.max_steps // 5 if fair_suffix else None
        )
        return cls(
            seed=config.seed,
            priority_switches=priority_switches,
            expected_length=expected_length,
            fair_suffix_start=fair_suffix_start,
        )

    def prepare_iteration(self, iteration: int) -> None:
        self._rng = random.Random(f"{self.seed}:{iteration}:pct")
        self._priorities = {}
        self._low_priority_counter = 0
        # Change points must be *distinct*: a duplicate draw would silently
        # spend two of the budgeted priority switches on the same step,
        # demoting one machine fewer than PCT's d-1 guarantee assumes.  Draw
        # until the set fills (identical RNG stream to independent draws when
        # no collision occurs), capped by the number of available steps.
        points: set = set()
        budget = min(self.priority_switches, self.expected_length)
        while len(points) < budget:
            points.add(self._rng.randrange(self.expected_length))
        self._change_points = sorted(points)

    # ------------------------------------------------------------------
    def _priority_of(self, machine: MachineId) -> float:
        if machine not in self._priorities:
            self._priorities[machine] = self._rng.random()
        return self._priorities[machine]

    def _in_fair_suffix(self, step: int) -> bool:
        return self.fair_suffix_start is not None and step >= self.fair_suffix_start

    def next_machine(self, enabled: Sequence[MachineId], step: int) -> MachineId:
        if self._in_fair_suffix(step):
            return enabled[self._rng.randrange(len(enabled))]
        chosen = max(enabled, key=self._priority_of)
        # Steps are a shared counter with boolean/integer choices, so several
        # change points can drift past between two scheduling points.  Drain
        # every stale point now — popping only one per call would smear the
        # remaining demotions onto arbitrary later steps.
        while self._change_points and step >= self._change_points[0]:
            self._change_points.pop(0)
            # Demote the chosen machine below everything seen so far.
            self._low_priority_counter += 1
            self._priorities[chosen] = -float(self._low_priority_counter)
            chosen = max(enabled, key=self._priority_of)
        return chosen

    def next_boolean(self, requester: MachineId, step: int) -> bool:
        return self._rng.random() < 0.5

    def next_integer(self, requester: MachineId, max_value: int, step: int) -> int:
        return self._rng.randrange(max_value)

    def is_fair(self) -> bool:
        return self.fair_suffix_start is not None
