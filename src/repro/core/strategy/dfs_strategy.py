"""Bounded exhaustive depth-first search over the choice tree.

Each nondeterministic decision (scheduling, boolean, integer) is a node in a
choice tree.  The DFS strategy enumerates that tree systematically, one branch
per iteration, so that small harnesses can be explored *exhaustively* rather
than probabilistically.  The search is bounded by the engine's ``max_steps``
and by the iteration budget; :attr:`DFSStrategy.exhausted` reports whether the
full tree was covered.

This strategy is an extension beyond the paper's evaluation (which used the
random and priority-based schedulers) and is used by the ablation benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from ..ids import MachineId
from .base import SchedulingStrategy
from .registry import register_strategy


@dataclass
class _ChoicePoint:
    num_options: int
    index: int


@register_strategy("dfs")
class DFSStrategy(SchedulingStrategy):
    """Systematic enumeration of every bounded schedule."""

    name = "dfs"

    def __init__(self, seed: int = 0) -> None:
        super().__init__(seed)
        self._stack: List[_ChoicePoint] = []
        self._depth = 0
        self.exhausted = False

    def prepare_iteration(self, iteration: int) -> None:
        self._depth = 0
        if iteration == 0:
            return
        # Advance to the next unexplored branch: drop exhausted suffix, then
        # bump the deepest remaining choice.
        while self._stack and self._stack[-1].index + 1 >= self._stack[-1].num_options:
            self._stack.pop()
        if not self._stack:
            self.exhausted = True
            return
        self._stack[-1].index += 1

    def _choose(self, num_options: int) -> int:
        if self._depth < len(self._stack):
            point = self._stack[self._depth]
            if point.num_options != num_options:
                # The prefix diverged (the program is not purely determined by
                # earlier choices); restart the subtree from this point.
                del self._stack[self._depth:]
                self._stack.append(_ChoicePoint(num_options, 0))
        else:
            self._stack.append(_ChoicePoint(num_options, 0))
        index = self._stack[self._depth].index
        self._depth += 1
        return index

    def next_machine(self, enabled: Sequence[MachineId], step: int) -> MachineId:
        ordered = sorted(enabled, key=lambda mid: mid.value)
        return ordered[self._choose(len(ordered))]

    def next_boolean(self, requester: MachineId, step: int) -> bool:
        return bool(self._choose(2))

    def next_integer(self, requester: MachineId, max_value: int, step: int) -> int:
        return self._choose(max_value)

    def is_fair(self) -> bool:
        return False
